//! Collective operations built on point-to-point messaging.
//!
//! The paper replaced socket/file weight synchronization with
//! `MPI_Bcast` specifically "to take advantage of the optimized MPI
//! collectives" (Section V.B). We implement the textbook algorithms
//! MPICH uses at these message sizes:
//!
//! * broadcast — binomial tree, `⌈log2 P⌉` rounds;
//! * reduce — binomial tree (mirrored), deterministic combine order;
//! * allreduce — recursive doubling when `P` is a power of two, else
//!   reduce + broadcast;
//! * barrier — dissemination;
//! * gather / scatter — rooted linear exchange;
//! * allgather — ring.
//!
//! Every collective invocation draws a fresh tag window from the
//! communicator's sequence counter, so back-to-back collectives can
//! never cross-match even with `Src::Any` receives in user code.

use crate::comm::{Comm, CommError, COLLECTIVE_TAG_BASE};
use crate::events::CommEvent;
use crate::message::{Payload, Src};
use pdnn_obs::{Recorder, RecorderExt, SpanKind};
use std::time::Duration;

/// Element type usable in typed collectives.
pub trait CollElem: Copy + Send + 'static {
    /// The payload kind name this element maps to (for diagnostics).
    const KIND: &'static str;
    /// Wrap a vector into a payload.
    fn wrap(v: Vec<Self>) -> Payload;
    /// Checked unwrap: `Err` returns the payload untouched on a kind
    /// mismatch so the caller can report what actually arrived.
    fn unwrap_checked(p: Payload) -> Result<Vec<Self>, Payload>;
    /// Unwrap a payload (panics on type mismatch — protocol bug).
    fn unwrap(p: Payload) -> Vec<Self>;
    /// Borrow the payload's elements when it carries exactly this
    /// type (no wire decode, no copy).
    fn try_slice(p: &Payload) -> Option<&[Self]>;
    /// Combine `b` into `a` under `op`.
    fn combine(op: ReduceOp, a: &mut [Self], b: &[Self]);
    /// Fold `incoming` into `own` in place with `incoming` as the
    /// *left* operand — bitwise identical to combining `own` into a
    /// copy of `incoming` and writing the copy back, without the
    /// allocation. The ring reduce-scatter hot loop runs on this.
    fn fold_into(op: ReduceOp, incoming: &[Self], own: &mut [Self]);
}

/// Reduction operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

macro_rules! impl_coll_elem {
    ($t:ty, $variant:ident) => {
        impl CollElem for $t {
            const KIND: &'static str = stringify!($variant);
            fn wrap(v: Vec<Self>) -> Payload {
                Payload::$variant(v)
            }
            fn unwrap_checked(p: Payload) -> Result<Vec<Self>, Payload> {
                match p {
                    Payload::$variant(v) => Ok(v),
                    other => Err(other),
                }
            }
            fn unwrap(p: Payload) -> Vec<Self> {
                match Self::unwrap_checked(p) {
                    Ok(v) => v,
                    // pdnn-lint: allow(l3-no-unwrap): payload type mismatch inside a collective is a protocol bug, not a recoverable condition
                    Err(other) => panic!(
                        "collective type mismatch: expected {}, got {}",
                        stringify!($variant),
                        other.kind()
                    ),
                }
            }
            fn try_slice(p: &Payload) -> Option<&[Self]> {
                match p {
                    Payload::$variant(v) => Some(v),
                    _ => None,
                }
            }
            fn combine(op: ReduceOp, a: &mut [Self], b: &[Self]) {
                assert_eq!(a.len(), b.len(), "collective length mismatch across ranks");
                match op {
                    ReduceOp::Sum => {
                        for (x, &y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                    }
                    ReduceOp::Max => {
                        for (x, &y) in a.iter_mut().zip(b) {
                            if y > *x {
                                *x = y;
                            }
                        }
                    }
                    ReduceOp::Min => {
                        for (x, &y) in a.iter_mut().zip(b) {
                            if y < *x {
                                *x = y;
                            }
                        }
                    }
                }
            }
            fn fold_into(op: ReduceOp, incoming: &[Self], own: &mut [Self]) {
                assert_eq!(
                    incoming.len(),
                    own.len(),
                    "collective length mismatch across ranks"
                );
                match op {
                    ReduceOp::Sum => {
                        for (y, &x) in own.iter_mut().zip(incoming) {
                            *y += x;
                        }
                    }
                    // `combine` keeps the incoming (left) element
                    // unless `own` compares strictly greater/less;
                    // the `partial_cmp` match reproduces that exactly,
                    // NaN handling included.
                    ReduceOp::Max => {
                        for (y, &x) in own.iter_mut().zip(incoming) {
                            match (*y).partial_cmp(&x) {
                                Some(core::cmp::Ordering::Greater) => {}
                                _ => *y = x,
                            }
                        }
                    }
                    ReduceOp::Min => {
                        for (y, &x) in own.iter_mut().zip(incoming) {
                            match (*y).partial_cmp(&x) {
                                Some(core::cmp::Ordering::Less) => {}
                                _ => *y = x,
                            }
                        }
                    }
                }
            }
        }
    };
}

impl_coll_elem!(f32, F32);
impl_coll_elem!(f64, F64);
impl_coll_elem!(u64, U64);

/// Per-collective wire-byte counter names (recorder counters take
/// `&'static str`, so the mapping is a closed table).
fn wire_counters(name: &'static str) -> (&'static str, &'static str) {
    match name {
        "bcast" => ("wire_sent_bcast", "wire_recv_bcast"),
        "reduce" => ("wire_sent_reduce", "wire_recv_reduce"),
        "barrier" => ("wire_sent_barrier", "wire_recv_barrier"),
        "allreduce" => ("wire_sent_allreduce", "wire_recv_allreduce"),
        "allreduce_rabenseifner" => (
            "wire_sent_allreduce_rabenseifner",
            "wire_recv_allreduce_rabenseifner",
        ),
        "allreduce_ring" => ("wire_sent_allreduce_ring", "wire_recv_allreduce_ring"),
        "allreduce_tree" => ("wire_sent_allreduce_tree", "wire_recv_allreduce_tree"),
        "gather" => ("wire_sent_gather", "wire_recv_gather"),
        "scatter" => ("wire_sent_scatter", "wire_recv_scatter"),
        "allgather" => ("wire_sent_allgather", "wire_recv_allgather"),
        _ => ("wire_sent_other", "wire_recv_other"),
    }
}

/// RAII-ish helper: run `f` with the communicator in collective
/// tracing mode and a fresh tag window, recording the whole
/// invocation as a named `CommCollective` span on the rank's
/// telemetry recorder, and attributing the bytes it moved to
/// per-collective wire-byte counters (`wire_sent_<op>` /
/// `wire_recv_<op>`).
///
/// `codec` arms the wire codec for the invocation: only collectives
/// whose algorithm stays rank-consistent under lossy narrowing
/// (broadcast/reduce shapes and the ring/tree allreduces) pass
/// `true`; the rank-symmetric exchanges in recursive doubling and
/// Rabenseifner would leave partners with different lossy views of
/// each other's data, so they run uncompressed.
fn with_collective<R>(
    comm: &mut Comm,
    name: &'static str,
    codec: bool,
    f: impl FnOnce(&mut Comm, u64) -> R,
) -> R {
    let recorder = comm.recorder().clone();
    let _span = recorder.span(name, SpanKind::CommCollective);
    let tag = COLLECTIVE_TAG_BASE + comm.coll_seq * 8;
    comm.coll_seq += 1;
    let was = comm.in_collective;
    comm.in_collective = true;
    let was_codec = comm.codec_armed;
    comm.codec_armed = codec;
    let sent0 = comm.trace.collective.bytes_sent;
    let recv0 = comm.trace.collective.bytes_received;
    let out = f(comm, tag);
    let sent = comm.trace.collective.bytes_sent - sent0;
    let received = comm.trace.collective.bytes_received - recv0;
    let (sent_ctr, recv_ctr) = wire_counters(name);
    if sent > 0 {
        recorder.counter_add(sent_ctr, sent);
    }
    if received > 0 {
        recorder.counter_add(recv_ctr, received);
    }
    comm.codec_armed = was_codec;
    comm.in_collective = was;
    out
}

/// Decode a forwarded wire image and unwrap it as `T`, reporting a
/// kind mismatch with the on-wire kind (mirrors `Comm::typed`).
fn decoded_vec<T: CollElem>(payload: Payload, src: usize, tag: u64) -> Result<Vec<T>, CommError> {
    let got = payload.kind();
    T::unwrap_checked(crate::wire::decode(payload)).map_err(|_| CommError::TypeMismatch {
        src,
        tag,
        expected: T::KIND,
        got,
    })
}

/// First element of a collective buffer when the element type is
/// `u64` — the command opcode for protocol header broadcasts — else
/// `None`. Rides every collective's [`CommEvent::Coll`] entry so the
/// trace-conformance replay can dispatch on the command a header
/// broadcast carried.
fn first_u64<T: CollElem>(buf: &[T]) -> Option<u64> {
    let first = *buf.first()?;
    match T::wrap(vec![first]) {
        Payload::U64(v) => v.first().copied(),
        _ => None,
    }
}

/// World sizes at or below this always run the chunked ring — the
/// worlds the byte-ratio gates and the protomc ring model are pinned
/// to.
const RING_LATENCY_WORLD: usize = 8;

/// Minimum per-chunk element count for the chunked ring to be worth
/// its `2·(P−1)` sequential hops on larger worlds.
const RING_CHUNK_FLOOR: usize = 128;

/// MPICH-style size-dependent algorithm selection for
/// [`Comm::allreduce_ring`]: the chunked ring is bandwidth-optimal,
/// but its critical path is `2·(P−1)` sequential hops, which
/// dominates wall time once per-chunk payloads get small. Large
/// worlds with sub-floor chunks run the binomial tree shape
/// (`2·⌈log₂ P⌉` hops) inside the same collective instead.
fn use_tree_shape(m: usize, n: usize) -> bool {
    m > RING_LATENCY_WORLD && n < RING_CHUNK_FLOOR * m
}

/// Ring/tree participants: every rank whose death has not been
/// *acknowledged*, in rank order. Freshly-dead-but-unacknowledged
/// ranks stay in the topology — every survivor keys the shape on the
/// same acknowledged set, so re-stitching happens only through the
/// recovery driver's membership-agreement round, never from raced
/// death observations mid-collective.
fn live_parts(comm: &Comm) -> Vec<usize> {
    (0..comm.size()).filter(|&r| !comm.is_acked(r)).collect()
}

/// Decode a received chunk into `dst` without cloning the payload:
/// payloads already carrying `T` are copied straight out of the
/// borrow; wire images are decoded by reference first. Reports a
/// kind mismatch with the on-wire kind (mirrors [`decoded_vec`]).
fn decode_chunk_into<T: CollElem>(
    payload: &Payload,
    dst: &mut [T],
    src: usize,
    tag: u64,
) -> Result<(), CommError> {
    if let Some(slice) = T::try_slice(payload) {
        dst.copy_from_slice(slice);
        return Ok(());
    }
    let mismatch = || CommError::TypeMismatch {
        src,
        tag,
        expected: T::KIND,
        got: payload.kind(),
    };
    let decoded = crate::wire::decode_ref(payload).ok_or_else(mismatch)?;
    let slice = T::try_slice(&decoded).ok_or_else(mismatch)?;
    dst.copy_from_slice(slice);
    Ok(())
}

/// The chunked-ring exchange body shared by the fault-free and timed
/// [`Comm::allreduce_ring`] paths: reduce-scatter then ring
/// allgather, run over `parts` — the participating ranks in rank
/// order (all ranks fault-free; the surviving membership after a
/// re-stitch). Positions in `parts` take the role ranks play in the
/// full-world ring, so a re-stitched ring is exactly the textbook
/// ring over `m = parts.len()` members.
///
/// With `timeout` set, every hop receive is bounded and a miss is
/// mapped through [`Comm::hop_failure`] so the caller sees
/// [`CommError::RankDead`] for the rank the recovery round must
/// evict — not for the innocent upstream neighbour the timeout
/// happened to fire on.
fn ring_exchange<T: CollElem>(
    comm: &mut Comm,
    buf: &mut [T],
    op: ReduceOp,
    tag: u64,
    parts: &[usize],
    timeout: Option<Duration>,
) -> Result<(), CommError> {
    let m = parts.len();
    let Some(p) = parts.iter().position(|&r| r == comm.rank()) else {
        // A rank acknowledged as dead must not re-enter the topology;
        // its own fate check surfaces the eviction.
        return Err(CommError::RankDead { rank: comm.rank() });
    };
    if m == 1 {
        return Ok(());
    }
    let n = buf.len();
    // Chunk b owns range [bounds[b], bounds[b+1]).
    let bounds: Vec<usize> = (0..=m).map(|b| b * n / m).collect();
    let next = parts[(p + 1) % m];
    let prev = parts[(p + m - 1) % m];

    // ---- reduce-scatter ----
    // At step s position p sends its accumulation of chunk
    // (p − s) mod m downstream and folds the incoming accumulation
    // into chunk (p − s − 1) mod m. After m − 1 steps position p owns
    // the fully reduced chunk (p + 1) mod m.
    for step in 0..m - 1 {
        let send_c = (p + m - step) % m;
        let recv_c = (p + 2 * m - step - 1) % m;
        let send_slice = buf[bounds[send_c]..bounds[send_c + 1]].to_vec();
        comm.send(next, tag + 1, T::wrap(send_slice))?;
        let incoming = match timeout {
            None => comm.recv_vec::<T>(Src::Of(prev), tag + 1)?,
            Some(t) => match comm.recv_vec_timeout::<T>(Src::Of(prev), tag + 1, t) {
                Ok(v) => v,
                Err(e) => return Err(comm.hop_failure(prev, e)),
            },
        };
        // Upstream accumulation is the left operand, so the fold
        // stays left-deep in ring order.
        T::fold_into(op, &incoming, &mut buf[bounds[recv_c]..bounds[recv_c + 1]]);
    }

    // ---- ring allgather ----
    // The owner encodes its reduced chunk once and installs the
    // decoded image locally; relays forward the wire image untouched,
    // so every rank installs identical bytes for every chunk.
    let owned = (p + 1) % m;
    let img = comm.codec_encode(T::wrap(buf[bounds[owned]..bounds[owned + 1]].to_vec()));
    let self_rank = comm.rank();
    decode_chunk_into::<T>(
        &img,
        &mut buf[bounds[owned]..bounds[owned + 1]],
        self_rank,
        tag + 2,
    )?;
    let mut fwd = img;
    for step in 0..m - 1 {
        comm.send(next, tag + 2, fwd)?;
        let pkt = match timeout {
            None => comm.recv(Src::Of(prev), tag + 2)?,
            Some(t) => match comm.recv_timeout(Src::Of(prev), tag + 2, t) {
                Ok(pkt) => pkt,
                Err(e) => return Err(comm.hop_failure(prev, e)),
            },
        };
        // At step s the chunk arriving from upstream is (p − s) mod m
        // (its owner is prev at s = 0).
        let recv_c = (p + m - step) % m;
        decode_chunk_into::<T>(
            &pkt.payload,
            &mut buf[bounds[recv_c]..bounds[recv_c + 1]],
            pkt.src,
            tag + 2,
        )?;
        fwd = pkt.payload;
    }
    Ok(())
}

/// The binomial-tree exchange body shared by the fault-free and
/// timed [`Comm::allreduce_tree`] paths (and by the small-vector
/// fallback of [`Comm::allreduce_ring`]): binomial reduce to
/// `parts[0]` then binomial broadcast of the root's wire image, run
/// over `parts` positions exactly like [`ring_exchange`]. With all
/// ranks participating this reproduces the flat reduce-to-0 + bcast
/// bits exactly. Timed receives map misses through
/// [`Comm::hop_failure`].
fn tree_exchange<T: CollElem>(
    comm: &mut Comm,
    buf: &mut [T],
    op: ReduceOp,
    tag: u64,
    parts: &[usize],
    timeout: Option<Duration>,
) -> Result<(), CommError> {
    let m = parts.len();
    let Some(p) = parts.iter().position(|&r| r == comm.rank()) else {
        return Err(CommError::RankDead { rank: comm.rank() });
    };
    if m == 1 {
        return Ok(());
    }

    // ---- binomial reduce to parts[0] (same tree and operand order
    // as `Comm::reduce` with root 0, over positions) ----
    let mut mask = 1usize;
    while mask < m {
        if p & mask == 0 {
            let src_p = p | mask;
            if src_p < m {
                let src = parts[src_p];
                let other = match timeout {
                    None => comm.recv_vec::<T>(Src::Of(src), tag + 1)?,
                    Some(t) => match comm.recv_vec_timeout::<T>(Src::Of(src), tag + 1, t) {
                        Ok(v) => v,
                        Err(e) => return Err(comm.hop_failure(src, e)),
                    },
                };
                T::combine(op, buf, &other);
            }
        } else {
            let dst = parts[p & !mask];
            comm.send(dst, tag + 1, T::wrap(buf.to_vec()))?;
            break;
        }
        mask <<= 1;
    }

    // ---- binomial broadcast from parts[0] (same tree as
    // `Comm::bcast`, forwarding the root's wire image) ----
    let mut mask = 1usize;
    let mut received: Option<(Payload, usize)> = None;
    while mask < m {
        if p & mask != 0 {
            let src = parts[p - mask];
            let pkt = match timeout {
                None => comm.recv(Src::Of(src), tag + 2)?,
                Some(t) => match comm.recv_timeout(Src::Of(src), tag + 2, t) {
                    Ok(pkt) => pkt,
                    Err(e) => return Err(comm.hop_failure(src, e)),
                },
            };
            received = Some((pkt.payload, pkt.src));
            break;
        }
        mask <<= 1;
    }
    let self_rank = comm.rank();
    let (img, origin) = match received {
        Some(image) => image,
        None => (comm.codec_encode(T::wrap(buf.to_vec())), self_rank),
    };
    decode_chunk_into::<T>(&img, buf, origin, tag + 2)?;
    mask >>= 1;
    while mask > 0 {
        if p + mask < m {
            comm.send(parts[p + mask], tag + 2, img.clone())?;
        }
        mask >>= 1;
    }
    Ok(())
}

impl Comm {
    /// Broadcast `buf` from `root` to all ranks (binomial tree).
    ///
    /// On non-root ranks the buffer is replaced by the root's data
    /// (it may change length).
    pub fn bcast<T: CollElem>(&mut self, buf: &mut Vec<T>, root: usize) -> Result<(), CommError> {
        assert!(root < self.size(), "bcast: root out of range");
        if self.ft() {
            let timeout = self.ft_timeout_for_root(root);
            return self.bcast_timed(buf, root, timeout);
        }
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        with_collective(self, "bcast", true, |comm, tag| {
            let rank = comm.rank();
            let vrank = (rank + size - root) % size;
            // The root encodes the buffer once; relays forward the
            // received wire image untouched. Every rank — root
            // included — installs the decoded image, so the buffer
            // ends bit-identical across ranks even under a lossy
            // codec (re-encoding at each relay could wobble the int8
            // scale by one ULP).
            let mut mask = 1usize;
            let mut received: Option<(Payload, usize)> = None;
            while mask < size {
                if vrank & mask != 0 {
                    let src = (vrank - mask + root) % size;
                    let pkt = comm.recv(Src::Of(src), tag)?;
                    received = Some((pkt.payload, pkt.src));
                    break;
                }
                mask <<= 1;
            }
            let (img, origin) = match received {
                Some(image) => image,
                None => (comm.codec_encode(T::wrap(buf.clone())), rank),
            };
            *buf = decoded_vec::<T>(img.clone(), origin, tag)?;
            mask >>= 1;
            while mask > 0 {
                if vrank + mask < size {
                    let dst = (vrank + mask + root) % size;
                    comm.send(dst, tag, img.clone())?;
                }
                mask >>= 1;
            }
            comm.push_event(CommEvent::Coll {
                op: "bcast",
                root,
                kind: T::KIND,
                len: buf.len(),
                first: first_u64(buf),
                ok: true,
            });
            comm.trace_collective_done();
            Ok(())
        })
    }

    /// Reduce `buf` elementwise under `op` to `root` (binomial tree).
    ///
    /// After the call `buf` on the root holds the reduction; on other
    /// ranks it holds intermediate partial sums (treat as garbage).
    /// The combine order is a fixed tree, so results are bitwise
    /// deterministic for a given world size.
    pub fn reduce<T: CollElem>(
        &mut self,
        buf: &mut [T],
        op: ReduceOp,
        root: usize,
    ) -> Result<(), CommError> {
        assert!(root < self.size(), "reduce: root out of range");
        if self.ft() {
            let timeout = self.ft_timeout_for_root(root);
            return self.reduce_timed(buf, op, root, timeout);
        }
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        with_collective(self, "reduce", true, |comm, tag| {
            let rank = comm.rank();
            let vrank = (rank + size - root) % size;
            let mut mask = 1usize;
            while mask < size {
                if vrank & mask == 0 {
                    let vsrc = vrank | mask;
                    if vsrc < size {
                        let src = (vsrc + root) % size;
                        let other = comm.recv_vec::<T>(Src::Of(src), tag)?;
                        T::combine(op, buf, &other);
                    }
                } else {
                    let vdst = vrank & !mask;
                    let dst = (vdst + root) % size;
                    comm.send(dst, tag, T::wrap(buf.to_vec()))?;
                    break;
                }
                mask <<= 1;
            }
            comm.push_event(CommEvent::Coll {
                op: "reduce",
                root,
                kind: T::KIND,
                len: buf.len(),
                first: None,
                ok: true,
            });
            comm.trace_collective_done();
            Ok(())
        })
    }

    /// Fault-tolerant broadcast: flat fan-out from `root` to every
    /// rank not known dead, with a bounded wait on the receive side.
    ///
    /// Instead of the binomial tree (where a dead interior node
    /// severs its whole subtree) the root sends to each live rank
    /// directly, so one death never blocks an unrelated rank.
    /// Non-root ranks give up with [`CommError::Timeout`] after
    /// `timeout`, or [`CommError::RankDead`] as soon as the root is
    /// known dead. [`Comm::bcast`] dispatches here automatically when
    /// fault injection is armed.
    pub fn bcast_timed<T: CollElem>(
        &mut self,
        buf: &mut Vec<T>,
        root: usize,
        timeout: Duration,
    ) -> Result<(), CommError> {
        assert!(root < self.size(), "bcast: root out of range");
        self.fault_gate()?;
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        with_collective(self, "bcast", true, |comm, tag| {
            if comm.rank() == root {
                // Encode once and install the decoded image locally,
                // so the root agrees bitwise with every receiver even
                // under a lossy codec.
                let img = comm.codec_encode(T::wrap(buf.clone()));
                *buf = decoded_vec::<T>(img.clone(), root, tag)?;
                for dst in 0..size {
                    if dst != root && !comm.is_dead(dst) {
                        comm.send(dst, tag, img.clone())?;
                    }
                }
            } else {
                *buf = comm.recv_vec_timeout::<T>(Src::Of(root), tag, timeout)?;
            }
            comm.push_event(CommEvent::Coll {
                op: "bcast",
                root,
                kind: T::KIND,
                len: buf.len(),
                first: first_u64(buf),
                ok: true,
            });
            comm.trace_collective_done();
            Ok(())
        })
    }

    /// Fault-tolerant reduce: flat fan-in to `root` with a bounded
    /// wait per contribution and deterministic recovery semantics.
    ///
    /// The root combines contributions in ascending rank order (so
    /// the result is bitwise deterministic), *drains* every live
    /// contribution even after a failure is observed (so the tag
    /// window closes cleanly and survivors stay in lockstep), and
    /// reports the first failure as [`CommError::RankDead`] — after
    /// evicting a rank whose contribution timed out without a death
    /// notice. [`Comm::reduce`] dispatches here automatically when
    /// fault injection is armed.
    pub fn reduce_timed<T: CollElem>(
        &mut self,
        buf: &mut [T],
        op: ReduceOp,
        root: usize,
        timeout: Duration,
    ) -> Result<(), CommError> {
        assert!(root < self.size(), "reduce: root out of range");
        self.fault_gate()?;
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        with_collective(self, "reduce", true, |comm, tag| {
            if comm.rank() != root {
                comm.send(root, tag, T::wrap(buf.to_vec()))?;
                comm.push_event(CommEvent::Coll {
                    op: "reduce",
                    root,
                    kind: T::KIND,
                    len: buf.len(),
                    first: None,
                    ok: true,
                });
                comm.trace_collective_done();
                return Ok(());
            }
            let mut first_err: Option<CommError> = None;
            for src in 0..size {
                if src == root {
                    continue;
                }
                if comm.is_acked(src) {
                    continue;
                }
                if comm.is_dead(src) {
                    first_err.get_or_insert(CommError::RankDead { rank: src });
                    continue;
                }
                match comm.recv_vec_timeout::<T>(Src::Of(src), tag, timeout) {
                    Ok(other) => T::combine(op, buf, &other),
                    Err(CommError::RankDead { rank }) => {
                        first_err.get_or_insert(CommError::RankDead { rank });
                    }
                    Err(CommError::Timeout) => {
                        comm.evict(src);
                        first_err.get_or_insert(CommError::RankDead { rank: src });
                    }
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
            // The drain above completes the collective structurally
            // even when a contribution failed, so the event is
            // recorded either way — with `ok` carrying the verdict —
            // keeping the root's trace command-aligned under faults.
            comm.push_event(CommEvent::Coll {
                op: "reduce",
                root,
                kind: T::KIND,
                len: buf.len(),
                first: None,
                ok: first_err.is_none(),
            });
            comm.trace_collective_done();
            match first_err {
                None => Ok(()),
                Some(e) => Err(e),
            }
        })
    }

    /// Fault-tolerant barrier: the lowest rank not acknowledged dead
    /// collects an arrival from every live rank (evicting any that
    /// miss the window) and then releases them with an
    /// acknowledgement. In master mode the root is always rank 0; in
    /// a re-stitched masterless world it is the surviving
    /// coordinator. Reports the first failure as
    /// [`CommError::RankDead`]; [`Comm::barrier`] dispatches here
    /// automatically when fault injection is armed.
    fn barrier_timed(&mut self, timeout: Duration) -> Result<(), CommError> {
        self.fault_gate()?;
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        let root = self.barrier_root();
        with_collective(self, "barrier", false, |comm, tag| {
            if comm.rank() == root {
                let mut first_err: Option<CommError> = None;
                for src in 0..size {
                    if src == root || comm.is_acked(src) {
                        continue;
                    }
                    if comm.is_dead(src) {
                        first_err.get_or_insert(CommError::RankDead { rank: src });
                        continue;
                    }
                    match comm.recv_timeout(Src::Of(src), tag, timeout) {
                        Ok(_) => {}
                        Err(CommError::RankDead { rank }) => {
                            first_err.get_or_insert(CommError::RankDead { rank });
                        }
                        Err(CommError::Timeout) => {
                            comm.evict(src);
                            first_err.get_or_insert(CommError::RankDead { rank: src });
                        }
                        Err(e) => {
                            first_err.get_or_insert(e);
                        }
                    }
                }
                for dst in 0..size {
                    if dst != root && !comm.is_dead(dst) {
                        comm.send(dst, tag + 1, Payload::Empty)?;
                    }
                }
                comm.push_event(CommEvent::Coll {
                    op: "barrier",
                    root,
                    kind: "Empty",
                    len: 0,
                    first: None,
                    ok: first_err.is_none(),
                });
                comm.trace_collective_done();
                match first_err {
                    None => Ok(()),
                    Some(e) => Err(e),
                }
            } else {
                comm.send(root, tag, Payload::Empty)?;
                comm.recv_timeout(Src::Of(root), tag + 1, timeout)?;
                comm.push_event(CommEvent::Coll {
                    op: "barrier",
                    root,
                    kind: "Empty",
                    len: 0,
                    first: None,
                    ok: true,
                });
                comm.trace_collective_done();
                Ok(())
            }
        })
    }

    /// Root of the timed barrier: the lowest rank whose death has not
    /// been acknowledged (rank 0 until a recovery round evicts it).
    fn barrier_root(&self) -> usize {
        (0..self.size()).find(|&r| !self.is_acked(r)).unwrap_or(0)
    }

    /// Allreduce: every rank ends with the full reduction.
    ///
    /// Uses recursive doubling for power-of-two world sizes (the BG/Q
    /// partition sizes 1024/2048/4096/8192 all are), otherwise
    /// reduce-to-0 followed by broadcast.
    pub fn allreduce<T: CollElem>(
        &mut self,
        buf: &mut Vec<T>,
        op: ReduceOp,
    ) -> Result<(), CommError> {
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        if size.is_power_of_two() {
            with_collective(self, "allreduce", false, |comm, tag| {
                let rank = comm.rank();
                let mut mask = 1usize;
                while mask < size {
                    let partner = rank ^ mask;
                    // Deterministic exchange: send then receive (the
                    // unbounded channels make this deadlock-free).
                    comm.send(partner, tag + 1, T::wrap(buf.clone()))?;
                    let other = comm.recv_vec::<T>(Src::Of(partner), tag + 1)?;
                    // Combine in a rank-independent order: lower rank's
                    // data is always the left operand, so all ranks
                    // compute bitwise-identical results.
                    if rank < partner {
                        T::combine(op, buf, &other);
                    } else {
                        let mut acc = other;
                        T::combine(op, &mut acc, buf);
                        *buf = acc;
                    }
                    mask <<= 1;
                }
                comm.push_event(CommEvent::Coll {
                    op: "allreduce",
                    root: 0,
                    kind: T::KIND,
                    len: buf.len(),
                    first: None,
                    ok: true,
                });
                comm.trace_collective_done();
                Ok(())
            })
        } else {
            // Non-power-of-two worlds decompose into reduce + bcast,
            // which record their own events.
            self.reduce(buf, op, 0)?;
            self.bcast(buf, 0)
        }
    }

    /// Allreduce via Rabenseifner's algorithm: reduce-scatter by
    /// recursive halving, then allgather by recursive doubling.
    ///
    /// Moves `2·(P−1)/P · n` elements per rank instead of the
    /// `2·log₂(P)·n` of recursive doubling — the bandwidth-optimal
    /// choice for the large parameter-vector reductions this
    /// application is dominated by. Requires a power-of-two world and
    /// identical vector lengths on every rank; other cases fall back
    /// to [`Comm::allreduce`].
    pub fn allreduce_rabenseifner<T: CollElem>(
        &mut self,
        buf: &mut Vec<T>,
        op: ReduceOp,
    ) -> Result<(), CommError> {
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        if !size.is_power_of_two() || buf.len() < size {
            // Tiny vectors gain nothing from scattering; odd worlds
            // complicate the halving. Use the standard path.
            return self.allreduce(buf, op);
        }
        with_collective(self, "allreduce_rabenseifner", false, |comm, tag| {
            let rank = comm.rank();
            let n = buf.len();
            // Block b owns range [bounds[b], bounds[b+1]).
            let bounds: Vec<usize> = (0..=size).map(|b| b * n / size).collect();

            // ---- reduce-scatter by recursive halving ----
            // Invariant: this rank holds partially reduced data for
            // the block range [lo, hi).
            let mut lo = 0usize;
            let mut hi = size;
            let mut mask = size / 2;
            while mask > 0 {
                let partner = rank ^ mask;
                // Split the live range; keep the half containing us.
                let mid = lo + (hi - lo) / 2;
                let (keep, send) = if rank & mask == 0 {
                    ((lo, mid), (mid, hi))
                } else {
                    ((mid, hi), (lo, mid))
                };
                let send_slice = buf[bounds[send.0]..bounds[send.1]].to_vec();
                comm.send(partner, tag + 1, T::wrap(send_slice))?;
                let incoming = comm.recv_vec::<T>(Src::Of(partner), tag + 1)?;
                let own = &mut buf[bounds[keep.0]..bounds[keep.1]];
                // Rank-independent operand order for bitwise
                // reproducibility.
                if rank < partner {
                    T::combine(op, own, &incoming);
                } else {
                    let mut acc = incoming;
                    T::combine(op, &mut acc, own);
                    own.copy_from_slice(&acc);
                }
                lo = keep.0;
                hi = keep.1;
                mask >>= 1;
            }
            debug_assert_eq!(hi - lo, 1);
            debug_assert_eq!(lo, rank, "halving leaves rank r with block r");

            // ---- allgather by recursive doubling ----
            // At each level this rank and its partner hold sibling
            // block ranges of equal span; exchanging them doubles the
            // held range.
            let mut mask = 1usize;
            while mask < size {
                let partner = rank ^ mask;
                let send_slice = buf[bounds[lo]..bounds[hi]].to_vec();
                comm.send(partner, tag + 2, T::wrap(send_slice))?;
                let incoming = comm.recv_vec::<T>(Src::Of(partner), tag + 2)?;
                let span = hi - lo;
                let (nlo, nhi) = if (lo / span).is_multiple_of(2) {
                    (lo, hi + span) // sibling is to the right
                } else {
                    (lo - span, hi) // sibling is to the left
                };
                let (ilo, ihi) = if nlo == lo { (hi, nhi) } else { (nlo, lo) };
                buf[bounds[ilo]..bounds[ihi]].copy_from_slice(&incoming);
                lo = nlo;
                hi = nhi;
                mask <<= 1;
            }
            debug_assert_eq!((lo, hi), (0, size));
            comm.push_event(CommEvent::Coll {
                op: "allreduce_rabenseifner",
                root: 0,
                kind: T::KIND,
                len: buf.len(),
                first: None,
                ok: true,
            });
            comm.trace_collective_done();
            Ok(())
        })
    }

    /// Allreduce via a bandwidth-optimal ring: chunked reduce-scatter
    /// followed by a ring allgather.
    ///
    /// Each rank moves `2·(P−1)/P · n` elements total and — unlike
    /// the rooted reduce + bcast decomposition — no rank ever
    /// rendezvouses at rank 0: every rank talks only to its ring
    /// neighbours `(rank ± 1) mod P`. Works for any world size and
    /// any vector length (short vectors simply leave some chunks
    /// empty).
    ///
    /// Determinism: chunk `c` is folded in ring order starting at
    /// rank `c` — `((x_c ⊕ x_{c+1}) ⊕ x_{c+2}) ⊕ …` — a fixed
    /// left-deep association independent of arrival order, so results
    /// are bitwise identical across ranks and across runs. (The
    /// association differs from the binomial-tree order of
    /// [`Comm::reduce`]; see [`Comm::allreduce_tree`] for the variant
    /// that reproduces the flat reduce + bcast bits exactly.)
    ///
    /// Codec-armed: under a lossy wire codec the fully reduced chunk
    /// is encoded once by its owner and forwarded around the ring as
    /// an opaque wire image, so all ranks still end bit-identical.
    pub fn allreduce_ring<T: CollElem>(
        &mut self,
        buf: &mut [T],
        op: ReduceOp,
    ) -> Result<(), CommError> {
        if self.ft() {
            let timeout = self.ft_timeout_peer();
            return self.allreduce_ring_timed(buf, op, timeout);
        }
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        let parts: Vec<usize> = (0..size).collect();
        let n = buf.len();
        with_collective(self, "allreduce_ring", true, |comm, tag| {
            let r = if use_tree_shape(size, n) {
                tree_exchange(comm, buf, op, tag, &parts, None)
            } else {
                ring_exchange(comm, buf, op, tag, &parts, None)
            };
            comm.push_event(CommEvent::Coll {
                op: "allreduce_ring",
                root: parts[0],
                kind: T::KIND,
                len: n,
                first: None,
                ok: r.is_ok(),
            });
            comm.trace_collective_done();
            r
        })
    }

    /// Fault-tolerant ring allreduce: every hop receive is bounded,
    /// and a dead neighbour surfaces as [`CommError::RankDead`]
    /// naming the lowest unacknowledged dead rank — the rank the
    /// recovery round will evict — rather than wedging the ring.
    ///
    /// The exchange runs over the *acknowledged-live* membership, so
    /// after the recovery driver's membership-agreement round the
    /// same entry point is the re-stitched ring over survivors.
    /// Starvation is structural: when a member dies mid-collective,
    /// its downstream neighbour fails on the missing hop and every
    /// rank further downstream starves in turn within the same
    /// invocation, so all survivors abort the *same* collective
    /// sequence number and re-enter recovery in lockstep.
    /// [`Comm::allreduce_ring`] dispatches here automatically when a
    /// non-empty fault plan is armed.
    pub fn allreduce_ring_timed<T: CollElem>(
        &mut self,
        buf: &mut [T],
        op: ReduceOp,
        timeout: Duration,
    ) -> Result<(), CommError> {
        self.fault_gate()?;
        let parts = live_parts(self);
        let n = buf.len();
        with_collective(self, "allreduce_ring", true, |comm, tag| {
            let r = if use_tree_shape(parts.len(), n) {
                tree_exchange(comm, buf, op, tag, &parts, Some(timeout))
            } else {
                ring_exchange(comm, buf, op, tag, &parts, Some(timeout))
            };
            comm.push_event(CommEvent::Coll {
                op: "allreduce_ring",
                root: parts[0],
                kind: T::KIND,
                len: n,
                first: None,
                ok: r.is_ok(),
            });
            comm.trace_collective_done();
            r
        })
    }

    /// Allreduce via a binomial tree: reduce to rank 0 and broadcast
    /// back, inside one collective invocation.
    ///
    /// Reuses the exact tree shape and combine order of
    /// [`Comm::reduce`] with root 0 followed by [`Comm::bcast`], so
    /// the result is bitwise identical to that flat decomposition —
    /// the hierarchical drop-in for code that previously
    /// rendezvoused at the master. Latency is `2·⌈log₂ P⌉` hops with
    /// the full vector per hop; prefer [`Comm::allreduce_ring`] for
    /// bandwidth-bound sizes.
    ///
    /// Codec-armed: rank 0 encodes the reduced vector once and the
    /// broadcast phase forwards the wire image untouched, so all
    /// ranks end bit-identical even under a lossy codec.
    pub fn allreduce_tree<T: CollElem>(
        &mut self,
        buf: &mut [T],
        op: ReduceOp,
    ) -> Result<(), CommError> {
        if self.ft() {
            let timeout = self.ft_timeout_peer();
            return self.allreduce_tree_timed(buf, op, timeout);
        }
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        let parts: Vec<usize> = (0..size).collect();
        let n = buf.len();
        with_collective(self, "allreduce_tree", true, |comm, tag| {
            let r = tree_exchange(comm, buf, op, tag, &parts, None);
            comm.push_event(CommEvent::Coll {
                op: "allreduce_tree",
                root: parts[0],
                kind: T::KIND,
                len: n,
                first: None,
                ok: r.is_ok(),
            });
            comm.trace_collective_done();
            r
        })
    }

    /// Fault-tolerant tree allreduce: the binomial exchange of
    /// [`Comm::allreduce_tree`] over the acknowledged-live membership
    /// (re-parented over survivors after a re-stitch), with bounded
    /// hop receives mapping a dead relay to [`CommError::RankDead`]
    /// for the lowest unacknowledged dead rank. All survivors abort
    /// the same collective invocation — a dead interior node starves
    /// its parent in the reduce and its subtree in the drain
    /// broadcast, within this invocation's tag window.
    /// [`Comm::allreduce_tree`] dispatches here automatically when a
    /// non-empty fault plan is armed.
    pub fn allreduce_tree_timed<T: CollElem>(
        &mut self,
        buf: &mut [T],
        op: ReduceOp,
        timeout: Duration,
    ) -> Result<(), CommError> {
        self.fault_gate()?;
        let parts = live_parts(self);
        let n = buf.len();
        with_collective(self, "allreduce_tree", true, |comm, tag| {
            let r = tree_exchange(comm, buf, op, tag, &parts, Some(timeout));
            comm.push_event(CommEvent::Coll {
                op: "allreduce_tree",
                root: parts[0],
                kind: T::KIND,
                len: n,
                first: None,
                ok: r.is_ok(),
            });
            comm.trace_collective_done();
            r
        })
    }

    /// Gather each rank's `data` to `root`; returns `Some(vec of
    /// per-rank vectors, rank order)` on the root, `None` elsewhere.
    pub fn gather<T: CollElem>(
        &mut self,
        data: Vec<T>,
        root: usize,
    ) -> Result<Option<Vec<Vec<T>>>, CommError> {
        assert!(root < self.size(), "gather: root out of range");
        let size = self.size();
        let dlen = data.len();
        with_collective(self, "gather", false, |comm, tag| {
            let ev = CommEvent::Coll {
                op: "gather",
                root,
                kind: T::KIND,
                len: dlen,
                first: None,
                ok: true,
            };
            if comm.rank() == root {
                let mut out: Vec<Vec<T>> = Vec::with_capacity(size);
                for r in 0..size {
                    if r == root {
                        out.push(data.clone());
                    } else {
                        out.push(comm.recv_vec::<T>(Src::Of(r), tag)?);
                    }
                }
                comm.push_event(ev);
                comm.trace_collective_done();
                Ok(Some(out))
            } else {
                comm.send(root, tag, T::wrap(data))?;
                comm.push_event(ev);
                comm.trace_collective_done();
                Ok(None)
            }
        })
    }

    /// Scatter per-rank chunks from `root`. The root passes
    /// `Some(chunks)` (one per rank); everyone receives their chunk.
    pub fn scatter<T: CollElem>(
        &mut self,
        chunks: Option<Vec<Vec<T>>>,
        root: usize,
    ) -> Result<Vec<T>, CommError> {
        assert!(root < self.size(), "scatter: root out of range");
        let size = self.size();
        with_collective(self, "scatter", false, |comm, tag| {
            if comm.rank() == root {
                // pdnn-lint: allow(l3-no-unwrap): documented API contract — the root rank must pass Some(chunks)
                let chunks = chunks.expect("scatter root must provide chunks");
                assert_eq!(chunks.len(), size, "scatter needs one chunk per rank");
                let mut own = Vec::new();
                for (r, chunk) in chunks.into_iter().enumerate() {
                    if r == root {
                        own = chunk;
                    } else {
                        comm.send(r, tag, T::wrap(chunk))?;
                    }
                }
                comm.push_event(CommEvent::Coll {
                    op: "scatter",
                    root,
                    kind: T::KIND,
                    len: own.len(),
                    first: None,
                    ok: true,
                });
                comm.trace_collective_done();
                Ok(own)
            } else {
                let chunk = comm.recv_vec::<T>(Src::Of(root), tag)?;
                comm.push_event(CommEvent::Coll {
                    op: "scatter",
                    root,
                    kind: T::KIND,
                    len: chunk.len(),
                    first: None,
                    ok: true,
                });
                comm.trace_collective_done();
                Ok(chunk)
            }
        })
    }

    /// Allgather via ring: returns all ranks' vectors in rank order.
    pub fn allgather<T: CollElem>(&mut self, data: Vec<T>) -> Result<Vec<Vec<T>>, CommError> {
        let size = self.size();
        let dlen = data.len();
        with_collective(self, "allgather", false, |comm, tag| {
            let rank = comm.rank();
            let mut slots: Vec<Option<Vec<T>>> = (0..size).map(|_| None).collect();
            let mut current = data;
            let next = (rank + 1) % size;
            let prev = (rank + size - 1) % size;
            for step in 0..size - 1 {
                comm.send(next, tag, T::wrap(current.clone()))?;
                slots[(rank + size - step) % size] = Some(std::mem::take(&mut current));
                current = comm.recv_vec::<T>(Src::Of(prev), tag)?;
            }
            slots[(rank + 1) % size] = Some(current);
            comm.push_event(CommEvent::Coll {
                op: "allgather",
                root: 0,
                kind: T::KIND,
                len: dlen,
                first: None,
                ok: true,
            });
            comm.trace_collective_done();
            Ok(slots
                .into_iter()
                // pdnn-lint: allow(l3-no-unwrap): the ring walks exactly size steps, filling every slot once
                .map(|s| s.expect("ring allgather filled every slot"))
                .collect())
        })
    }

    /// Dissemination barrier.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        if self.ft() {
            let timeout = self.ft_timeout_for_root(self.barrier_root());
            return self.barrier_timed(timeout);
        }
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        with_collective(self, "barrier", false, |comm, tag| {
            let rank = comm.rank();
            let mut step = 1usize;
            while step < size {
                let dst = (rank + step) % size;
                let src = (rank + size - step) % size;
                comm.send(dst, tag, Payload::Empty)?;
                comm.recv(Src::Of(src), tag)?;
                step <<= 1;
            }
            comm.push_event(CommEvent::Coll {
                op: "barrier",
                root: 0,
                kind: "Empty",
                len: 0,
                first: None,
                ok: true,
            });
            comm.trace_collective_done();
            Ok(())
        })
    }

    fn trace_collective_done(&mut self) {
        self.trace.on_collective_done();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_world;

    #[test]
    fn bcast_from_every_root() {
        for size in [1usize, 2, 3, 4, 5, 8] {
            for root in 0..size {
                let results = run_world(size, move |comm| {
                    let mut buf: Vec<f32> = if comm.rank() == root {
                        vec![1.0, 2.0, 3.0]
                    } else {
                        vec![]
                    };
                    comm.bcast(&mut buf, root).unwrap();
                    buf
                });
                for r in results {
                    assert_eq!(r.result, vec![1.0, 2.0, 3.0], "size={size} root={root}");
                }
            }
        }
    }

    #[test]
    fn reduce_sum_collects_everything() {
        for size in [1usize, 2, 3, 4, 7, 8] {
            let results = run_world(size, move |comm| {
                let mut buf = vec![comm.rank() as f64, 1.0];
                comm.reduce(&mut buf, ReduceOp::Sum, 0).unwrap();
                buf
            });
            let expect0: f64 = (0..size).map(|r| r as f64).sum();
            assert_eq!(results[0].result, vec![expect0, size as f64], "size={size}");
        }
    }

    #[test]
    fn reduce_to_nonzero_root() {
        let results = run_world(5, |comm| {
            let mut buf = vec![1u64 << comm.rank()];
            comm.reduce(&mut buf, ReduceOp::Sum, 3).unwrap();
            buf[0]
        });
        assert_eq!(results[3].result, 0b11111);
    }

    #[test]
    fn allreduce_power_of_two_and_general() {
        for size in [2usize, 3, 4, 6, 8] {
            let results = run_world(size, move |comm| {
                let mut buf = vec![(comm.rank() + 1) as f32];
                comm.allreduce(&mut buf, ReduceOp::Sum).unwrap();
                buf[0]
            });
            let expect: f32 = (1..=size).map(|r| r as f32).sum();
            for r in &results {
                assert_eq!(r.result, expect, "size={size}");
            }
        }
    }

    #[test]
    fn allreduce_is_bitwise_identical_across_ranks() {
        // Floating sums in different orders differ in ULPs; the
        // implementation promises rank-order-independent combining.
        let results = run_world(8, |comm| {
            let mut buf: Vec<f32> = (0..64)
                .map(|i| ((comm.rank() * 64 + i) as f32).sin() * 1e-3 + 1.0)
                .collect();
            comm.allreduce(&mut buf, ReduceOp::Sum).unwrap();
            buf
        });
        for r in &results[1..] {
            assert_eq!(r.result, results[0].result);
        }
    }

    #[test]
    fn allreduce_max_min() {
        let results = run_world(4, |comm| {
            let mut mx = vec![comm.rank() as f64];
            comm.allreduce(&mut mx, ReduceOp::Max).unwrap();
            let mut mn = vec![comm.rank() as f64];
            comm.allreduce(&mut mn, ReduceOp::Min).unwrap();
            (mx[0], mn[0])
        });
        for r in results {
            assert_eq!(r.result, (3.0, 0.0));
        }
    }

    #[test]
    fn rabenseifner_matches_standard_allreduce() {
        for size in [2usize, 4, 8] {
            for len in [size, size + 3, 257] {
                let results = run_world(size, move |comm| {
                    let mut rng = pdnn_util::Prng::new(comm.rank() as u64 + 1);
                    let data: Vec<f64> = (0..len).map(|_| rng.range(-2.0, 2.0)).collect();
                    let mut a = data.clone();
                    let mut b = data;
                    comm.allreduce(&mut a, ReduceOp::Sum).unwrap();
                    comm.allreduce_rabenseifner(&mut b, ReduceOp::Sum).unwrap();
                    (a, b)
                });
                for r in &results {
                    for (x, y) in r.result.0.iter().zip(r.result.1.iter()) {
                        assert!(
                            (x - y).abs() < 1e-12 * (1.0 + x.abs()),
                            "size={size} len={len}: {x} vs {y}"
                        );
                    }
                }
                // All ranks agree bitwise.
                for r in &results[1..] {
                    assert_eq!(r.result.1, results[0].result.1);
                }
            }
        }
    }

    #[test]
    fn rabenseifner_short_vector_falls_back() {
        // len < size triggers the fallback path; results still exact.
        let results = run_world(8, |comm| {
            let mut v = vec![comm.rank() as f64 + 1.0];
            comm.allreduce_rabenseifner(&mut v, ReduceOp::Sum).unwrap();
            v[0]
        });
        for r in results {
            assert_eq!(r.result, 36.0);
        }
    }

    #[test]
    fn rabenseifner_max_operator() {
        let results = run_world(4, |comm| {
            let mut v: Vec<f64> = (0..16).map(|i| ((comm.rank() + i) % 4) as f64).collect();
            comm.allreduce_rabenseifner(&mut v, ReduceOp::Max).unwrap();
            v
        });
        for r in &results {
            assert!(r.result.iter().all(|&x| x == 3.0));
        }
    }

    /// Per-rank test vector: a deterministic function of (rank, i) so
    /// reference reductions can be computed without communication.
    fn gen_f32(rank: usize, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((rank * 131 + i) as f32).sin() * 1e-3 + 1.0)
            .collect()
    }

    fn gen_f64(rank: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((rank * 131 + i) as f64).sin() * 1e-3 + 1.0)
            .collect()
    }

    /// The serial reference for `allreduce_ring`: chunk `c` folded
    /// left-deep in ring order starting at rank `c`.
    fn ring_reference_f32(size: usize, n: usize) -> Vec<f32> {
        let bounds: Vec<usize> = (0..=size).map(|b| b * n / size).collect();
        let mut out = vec![0.0f32; n];
        for c in 0..size {
            let (lo, hi) = (bounds[c], bounds[c + 1]);
            let mut acc = gen_f32(c, n)[lo..hi].to_vec();
            for k in 1..size {
                let contrib = gen_f32((c + k) % size, n);
                for (a, b) in acc.iter_mut().zip(&contrib[lo..hi]) {
                    *a += b;
                }
            }
            out[lo..hi].copy_from_slice(&acc);
        }
        out
    }

    #[test]
    fn tree_allreduce_is_bit_identical_to_reduce_plus_bcast() {
        // The tentpole determinism contract: allreduce_tree reuses the
        // binomial structure of reduce(root 0) + bcast(0), so its
        // result reproduces that flat path's bits exactly.
        for size in [2usize, 3, 5, 8] {
            for n in [1usize, 3, 64, 257] {
                let results = run_world(size, move |comm| {
                    let mut flat = gen_f32(comm.rank(), n);
                    comm.reduce(&mut flat, ReduceOp::Sum, 0).unwrap();
                    comm.bcast(&mut flat, 0).unwrap();
                    let mut tree = gen_f32(comm.rank(), n);
                    comm.allreduce_tree(&mut tree, ReduceOp::Sum).unwrap();
                    let mut flat64 = gen_f64(comm.rank(), n);
                    comm.reduce(&mut flat64, ReduceOp::Sum, 0).unwrap();
                    comm.bcast(&mut flat64, 0).unwrap();
                    let mut tree64 = gen_f64(comm.rank(), n);
                    comm.allreduce_tree(&mut tree64, ReduceOp::Sum).unwrap();
                    (flat, tree, flat64, tree64)
                });
                for r in &results {
                    let (flat, tree, flat64, tree64) = &r.result;
                    let fb: Vec<u32> = flat.iter().map(|x| x.to_bits()).collect();
                    let tb: Vec<u32> = tree.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(fb, tb, "f32 size={size} n={n} rank={}", r.rank);
                    let fb64: Vec<u64> = flat64.iter().map(|x| x.to_bits()).collect();
                    let tb64: Vec<u64> = tree64.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(fb64, tb64, "f64 size={size} n={n} rank={}", r.rank);
                }
            }
        }
    }

    #[test]
    fn ring_allreduce_matches_serial_reference_bitwise() {
        // Ring fold orders are ring rotations per chunk — a different
        // (but equally fixed) association than the binomial tree. The
        // contract is bit-identity with the documented serial
        // reference, bit-identity across ranks, and numerical
        // agreement with the standard path.
        for size in [2usize, 3, 5, 8] {
            for n in [1usize, 3, size, size + 3, 257] {
                let results = run_world(size, move |comm| {
                    let mut ring = gen_f32(comm.rank(), n);
                    comm.allreduce_ring(&mut ring, ReduceOp::Sum).unwrap();
                    let mut std = gen_f32(comm.rank(), n);
                    comm.allreduce(&mut std, ReduceOp::Sum).unwrap();
                    (ring, std)
                });
                let expect: Vec<u32> = ring_reference_f32(size, n)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect();
                for r in &results {
                    let got: Vec<u32> = r.result.0.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(got, expect, "size={size} n={n} rank={}", r.rank);
                    for (x, y) in r.result.0.iter().zip(&r.result.1) {
                        assert!(
                            (x - y).abs() < 1e-4 * (1.0 + x.abs()),
                            "size={size} n={n}: ring {x} vs standard {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ring_allreduce_f64_and_operators() {
        for size in [2usize, 3, 5, 8] {
            let results = run_world(size, move |comm| {
                let mut sum = gen_f64(comm.rank(), 37);
                comm.allreduce_ring(&mut sum, ReduceOp::Sum).unwrap();
                let mut mx = vec![comm.rank() as f64];
                comm.allreduce_ring(&mut mx, ReduceOp::Max).unwrap();
                let mut mn = vec![comm.rank() as u64 + 5];
                comm.allreduce_ring(&mut mn, ReduceOp::Min).unwrap();
                (sum, mx[0], mn[0])
            });
            for r in &results[1..] {
                assert_eq!(r.result.0, results[0].result.0, "size={size}");
            }
            for r in &results {
                assert_eq!(r.result.1, (size - 1) as f64);
                assert_eq!(r.result.2, 5);
            }
        }
    }

    #[test]
    fn ring_and_tree_are_arrival_order_independent() {
        use crate::runner::run_world_perturbed;
        let body = |comm: &mut Comm| {
            let mut ring = gen_f32(comm.rank(), 100);
            comm.allreduce_ring(&mut ring, ReduceOp::Sum).unwrap();
            let mut tree = gen_f32(comm.rank(), 100);
            comm.allreduce_tree(&mut tree, ReduceOp::Sum).unwrap();
            (ring, tree)
        };
        let baseline = run_world(5, body);
        for seed in [1u64, 7, 23] {
            let perturbed = run_world_perturbed(5, seed, body);
            for (b, p) in baseline.iter().zip(&perturbed) {
                assert_eq!(b.result, p.result, "seed={seed} rank={}", b.rank);
                assert!(p.hb.is_empty(), "hb violations under seed {seed}");
            }
        }
    }

    #[test]
    fn ring_never_touches_nonneighbor_ranks() {
        // Masterless contract: every byte a rank moves in
        // allreduce_ring goes to/from its ring neighbours, so rank 0
        // is never a rendezvous point. With 1000 f32 elements over 5
        // ranks each rank sends 2·(P−1) chunks of ~n/P elements.
        let results = run_world(5, |comm| {
            let mut v = gen_f32(comm.rank(), 1000);
            comm.allreduce_ring(&mut v, ReduceOp::Sum).unwrap();
        });
        for r in &results {
            // 2·(P−1)/P·n = 1600 elements = 6400 bytes per rank, the
            // same on every rank — nobody is a hotspot.
            assert_eq!(r.trace.collective.bytes_sent, 6400);
            assert_eq!(r.trace.collective.bytes_received, 6400);
            assert_eq!(r.trace.p2p.bytes_sent, 0);
        }
    }

    #[test]
    fn small_vector_ring_falls_back_to_tree_shape_on_large_worlds() {
        // P=16 with a sub-floor chunk (100/16 ≈ 6 elements): the ring
        // entry point keeps its name and counters but runs the
        // binomial tree shape, so the result is bit-identical to
        // allreduce_tree and the critical path is 2·⌈log₂P⌉ hops
        // instead of 2·(P−1).
        let n = 100usize;
        let results = run_world(16, move |comm| {
            let mut ring = gen_f32(comm.rank(), n);
            comm.allreduce_ring(&mut ring, ReduceOp::Sum).unwrap();
            let mut tree = gen_f32(comm.rank(), n);
            comm.allreduce_tree(&mut tree, ReduceOp::Sum).unwrap();
            (ring, tree, comm.take_telemetry())
        });
        for r in &results {
            let (ring, tree, t) = &r.result;
            let rb: Vec<u32> = ring.iter().map(|x| x.to_bits()).collect();
            let tb: Vec<u32> = tree.iter().map(|x| x.to_bits()).collect();
            assert_eq!(rb, tb, "rank={}", r.rank);
            // The fallback is still attributed to the collective the
            // caller asked for.
            assert!(t.counter("wire_sent_allreduce_ring") > 0, "rank={}", r.rank);
        }
    }

    #[test]
    fn large_vector_ring_stays_chunked_on_large_worlds() {
        // At the chunk floor (128 elements per rank at P=16) the ring
        // keeps its bandwidth-optimal chunked shape: bits match the
        // serial ring reference and every rank moves exactly
        // 2·(P−1)·(n/P) elements, symmetric across ranks.
        let n = 16 * RING_CHUNK_FLOOR;
        let results = run_world(16, move |comm| {
            let mut v = gen_f32(comm.rank(), n);
            comm.allreduce_ring(&mut v, ReduceOp::Sum).unwrap();
            v
        });
        let expect: Vec<u32> = ring_reference_f32(16, n)
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let per_rank = (2 * 15 * RING_CHUNK_FLOOR * 4) as u64;
        for r in &results {
            let got: Vec<u32> = r.result.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, expect, "rank={}", r.rank);
            assert_eq!(r.trace.collective.bytes_sent, per_rank);
            assert_eq!(r.trace.collective.bytes_received, per_rank);
        }
    }

    #[test]
    fn killed_ring_surfaces_rank_dead_and_restitches_over_survivors() {
        use crate::fault::FaultPlan;
        use crate::runner::run_world_faulted;
        let plan = FaultPlan::new(7)
            .kill(2, 0)
            .with_timeouts(Duration::from_millis(200), Duration::from_secs(30));
        let results = run_world_faulted(5, &plan, |comm| {
            let mut v = gen_f32(comm.rank(), 40);
            let first = comm.allreduce_ring(&mut v, ReduceOp::Sum);
            if matches!(first, Err(CommError::Killed)) {
                return None;
            }
            // Every survivor aborts the same invocation naming the
            // same dead rank — the victim's successor sees the death
            // notice directly, everyone further downstream starves on
            // a timed hop that `hop_failure` attributes to the dead
            // rank rather than the innocent upstream neighbour.
            assert!(
                matches!(first, Err(CommError::RankDead { rank: 2 })),
                "rank={}: {first:?}",
                comm.rank()
            );
            comm.ack_dead(2);
            // Once acknowledged, the same exchanges run re-stitched
            // over the four survivors. Survivors abort the failed
            // collective up to one detect-timeout apart (the victim's
            // successor fails instantly, the furthest downstream rank
            // waits out its whole window), so the first re-stitched
            // hop uses the generous post-agreement window the recovery
            // driver grants — the driver's membership round plays this
            // role in training runs.
            let wide = Duration::from_secs(30);
            let mut w = gen_f32(comm.rank(), 40);
            comm.allreduce_ring_timed(&mut w, ReduceOp::Sum, wide)
                .unwrap();
            let mut t = gen_f32(comm.rank(), 40);
            comm.allreduce_tree_timed(&mut t, ReduceOp::Sum, wide)
                .unwrap();
            Some((w, t))
        });
        let survivors: Vec<_> = results.iter().filter_map(|r| r.result.clone()).collect();
        assert_eq!(survivors.len(), 4, "exactly the victim is missing");
        for s in &survivors[1..] {
            let (a0, b0) = &survivors[0];
            let (a, b) = s;
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                a0.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b0.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn wire_byte_counters_attribute_per_collective() {
        let results = run_world(4, |comm| {
            let mut v = vec![1.0f32; 100];
            comm.allreduce_ring(&mut v, ReduceOp::Sum).unwrap();
            let mut w = vec![1.0f32; 100];
            comm.allreduce_tree(&mut w, ReduceOp::Sum).unwrap();
            comm.take_telemetry()
        });
        for r in &results {
            let t = &r.result;
            assert!(t.counter("wire_sent_allreduce_ring") > 0);
            assert!(t.counter("wire_recv_allreduce_ring") > 0);
            assert!(t.counter("wire_sent_allreduce_tree") > 0);
            assert_eq!(t.counter("wire_sent_bcast"), 0);
        }
    }

    #[test]
    fn codec_halves_ring_bytes_and_keeps_ranks_identical() {
        use crate::wire::WireCodec;
        for codec in [WireCodec::F16, WireCodec::Int8] {
            let plain = run_world(5, |comm| {
                let mut v = gen_f32(comm.rank(), 1000);
                comm.allreduce_ring(&mut v, ReduceOp::Sum).unwrap();
                v
            });
            let coded = run_world(5, move |comm| {
                comm.set_wire_codec(codec);
                let mut v = gen_f32(comm.rank(), 1000);
                comm.allreduce_ring(&mut v, ReduceOp::Sum).unwrap();
                v
            });
            // All ranks bit-identical under the lossy codec (the
            // encode-once/forward pattern), and close to the exact sum.
            for r in &coded[1..] {
                let a: Vec<u32> = r.result.iter().map(|x| x.to_bits()).collect();
                let b: Vec<u32> = coded[0].result.iter().map(|x| x.to_bits()).collect();
                assert_eq!(a, b, "codec={codec:?} rank={}", r.rank);
            }
            for (x, y) in coded[0].result.iter().zip(&plain[0].result) {
                assert!((x - y).abs() < 0.35 * (1.0 + y.abs()), "codec={codec:?}");
            }
            // Compressed wire bytes: ≤ ~55% (f16) / ~30% (int8) of
            // the uncompressed volume.
            let frac = match codec {
                WireCodec::F16 => 0.55,
                _ => 0.30,
            };
            for (p, c) in plain.iter().zip(&coded) {
                let full = p.trace.collective.bytes_sent as f64;
                let small = c.trace.collective.bytes_sent as f64;
                assert!(small < full * frac, "codec={codec:?}: {small} vs {full}");
            }
        }
    }

    #[test]
    fn codec_keeps_bcast_and_tree_consistent_across_ranks() {
        use crate::wire::WireCodec;
        let results = run_world(4, |comm| {
            comm.set_wire_codec(WireCodec::Int8);
            let mut b = if comm.rank() == 2 {
                gen_f32(9, 101)
            } else {
                vec![]
            };
            comm.bcast(&mut b, 2).unwrap();
            let mut t = gen_f32(comm.rank(), 101);
            comm.allreduce_tree(&mut t, ReduceOp::Sum).unwrap();
            (b, t)
        });
        for r in &results[1..] {
            // Root and relays agree bitwise with every receiver —
            // including the roundtripped origin copies.
            assert_eq!(
                r.result.0.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                results[0]
                    .result
                    .0
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>()
            );
            assert_eq!(
                r.result.1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                results[0]
                    .result
                    .1
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn gather_orders_by_rank() {
        let results = run_world(5, |comm| {
            comm.gather(vec![comm.rank() as u64 * 10], 2).unwrap()
        });
        let gathered = results[2].result.as_ref().unwrap();
        assert_eq!(
            gathered,
            &vec![vec![0], vec![10], vec![20], vec![30], vec![40]]
        );
        assert!(results[0].result.is_none());
    }

    #[test]
    fn scatter_delivers_chunks() {
        let results = run_world(4, |comm| {
            let chunks = if comm.rank() == 0 {
                Some((0..4).map(|r| vec![r as f32; r + 1]).collect())
            } else {
                None
            };
            comm.scatter(chunks, 0).unwrap()
        });
        for (r, res) in results.iter().enumerate() {
            assert_eq!(res.result, vec![r as f32; r + 1]);
        }
    }

    #[test]
    fn allgather_ring() {
        for size in [1usize, 2, 3, 5, 8] {
            let results = run_world(size, move |comm| {
                comm.allgather(vec![comm.rank() as u64]).unwrap()
            });
            let expect: Vec<Vec<u64>> = (0..size as u64).map(|r| vec![r]).collect();
            for r in &results {
                assert_eq!(r.result, expect, "size={size}");
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let before = Arc::new(AtomicUsize::new(0));
        let b2 = before.clone();
        let results = run_world(6, move |comm| {
            b2.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // After the barrier every rank must observe all 6 arrivals.
            b2.load(Ordering::SeqCst)
        });
        for r in results {
            assert_eq!(r.result, 6);
        }
    }

    #[test]
    fn collective_traffic_is_classified_collective() {
        let results = run_world(4, |comm| {
            let mut buf = vec![0.0f32; 1000];
            comm.bcast(&mut buf, 0).unwrap();
        });
        // Root sends to its binomial children: collective bytes > 0,
        // p2p bytes == 0.
        assert!(results[0].trace.collective.bytes_sent > 0);
        assert_eq!(results[0].trace.p2p.bytes_sent, 0);
        assert_eq!(results[0].trace.collectives_completed, 1);
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_match() {
        let results = run_world(4, |comm| {
            let mut a = vec![comm.rank() as f64];
            let mut b = vec![(comm.rank() * 100) as f64];
            comm.allreduce(&mut a, ReduceOp::Sum).unwrap();
            comm.allreduce(&mut b, ReduceOp::Sum).unwrap();
            (a[0], b[0])
        });
        for r in results {
            assert_eq!(r.result, (6.0, 600.0));
        }
    }

    #[test]
    fn mixed_p2p_and_collectives() {
        let results = run_world(3, |comm| {
            if comm.rank() == 1 {
                comm.send(0, 9, Payload::U64(vec![77])).unwrap();
            }
            let mut v = vec![1.0f32];
            comm.allreduce(&mut v, ReduceOp::Sum).unwrap();
            if comm.rank() == 0 {
                let pkt = comm.recv(Src::Of(1), 9).unwrap();
                pkt.payload.into_u64()[0] + v[0] as u64
            } else {
                v[0] as u64
            }
        });
        assert_eq!(results[0].result, 80);
        assert_eq!(results[1].result, 3);
    }
}
