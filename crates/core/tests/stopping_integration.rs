//! End-to-end behavior of the convergence rules inside the optimizer.

use pdnn_core::stopping::{StopReason, StopRule};
use pdnn_core::{HeldoutEval, HfConfig, HfOptimizer, HfProblem};

/// Quadratic that converges in a couple of iterations, then stalls.
struct Quad {
    theta: Vec<f32>,
}

impl HfProblem for Quad {
    fn num_params(&self) -> usize {
        self.theta.len()
    }
    fn theta(&self) -> Vec<f32> {
        self.theta.clone()
    }
    fn set_theta(&mut self, theta: &[f32]) {
        self.theta = theta.to_vec();
    }
    fn gradient(&mut self) -> (f64, Vec<f32>) {
        let g: Vec<f32> = self.theta.iter().map(|&t| t - 1.0).collect();
        let loss = g.iter().map(|&v| 0.5 * (v as f64).powi(2)).sum();
        (loss, g)
    }
    fn sample_curvature(&mut self, _s: u64, _f: f64) {}
    fn gn_product(&mut self, v: &[f32]) -> Vec<f32> {
        v.to_vec()
    }
    fn heldout_eval(&mut self, theta: &[f32]) -> HeldoutEval {
        HeldoutEval {
            loss: theta
                .iter()
                .map(|&t| 0.5 * ((t - 1.0) as f64).powi(2))
                .sum(),
            accuracy: 0.0,
            frames: 1,
        }
    }
    fn train_frames(&self) -> u64 {
        1
    }
}

#[test]
fn patience_stops_a_converged_run_early() {
    let mut problem = Quad {
        theta: vec![0.0; 6],
    };
    let mut cfg = HfConfig::small_task();
    cfg.max_iters = 50;
    cfg.stop = StopRule {
        patience: Some(2),
        min_rel_improvement: 1e-4,
        target_loss: None,
    };
    let (stats, reason) = HfOptimizer::new(cfg).train_with_reason(&mut problem);
    assert_eq!(reason, StopReason::Stalled);
    assert!(
        stats.len() < 50,
        "patience never fired: ran {} iterations",
        stats.len()
    );
    // It converged before stalling.
    assert!(stats.last().unwrap().heldout_after < 1e-6);
}

#[test]
fn target_loss_reports_the_right_reason() {
    let mut problem = Quad {
        theta: vec![0.0; 4],
    };
    let mut cfg = HfConfig::small_task();
    cfg.max_iters = 50;
    cfg.stop = StopRule {
        target_loss: Some(1e-3),
        ..Default::default()
    };
    let (_, reason) = HfOptimizer::new(cfg).train_with_reason(&mut problem);
    assert_eq!(reason, StopReason::TargetReached);
}

#[test]
fn default_rule_runs_to_the_cap() {
    let mut problem = Quad {
        theta: vec![0.0; 4],
    };
    let mut cfg = HfConfig::small_task();
    cfg.max_iters = 4;
    let (stats, reason) = HfOptimizer::new(cfg).train_with_reason(&mut problem);
    assert_eq!(reason, StopReason::MaxIters);
    assert_eq!(stats.len(), 4);
}

#[test]
fn legacy_target_heldout_loss_still_works() {
    let mut problem = Quad {
        theta: vec![0.0; 4],
    };
    let mut cfg = HfConfig::small_task();
    cfg.max_iters = 50;
    cfg.target_heldout_loss = Some(1e-3);
    let (_, reason) = HfOptimizer::new(cfg).train_with_reason(&mut problem);
    assert_eq!(reason, StopReason::TargetReached);
}
