//! L2 weight decay in the Hessian-free optimizer.

use pdnn_core::{DnnProblem, HeldoutEval, HfConfig, HfOptimizer, HfProblem, Objective};
use pdnn_dnn::{Activation, Network};
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_tensor::blas1;
use pdnn_tensor::gemm::GemmContext;
use pdnn_util::Prng;

/// Quadratic with identity curvature: with penalty l2 the training
/// optimum moves from `t` to `t / (1 + l2)`.
struct Quadratic {
    theta: Vec<f32>,
    target: Vec<f32>,
}

impl Quadratic {
    fn loss_of(&self, theta: &[f32]) -> f64 {
        theta
            .iter()
            .zip(self.target.iter())
            .map(|(&a, &b)| 0.5 * ((a - b) as f64).powi(2))
            .sum()
    }
}

impl HfProblem for Quadratic {
    fn num_params(&self) -> usize {
        self.theta.len()
    }
    fn theta(&self) -> Vec<f32> {
        self.theta.clone()
    }
    fn set_theta(&mut self, theta: &[f32]) {
        self.theta = theta.to_vec();
    }
    fn gradient(&mut self) -> (f64, Vec<f32>) {
        let g = self
            .theta
            .iter()
            .zip(self.target.iter())
            .map(|(&a, &b)| a - b)
            .collect();
        (self.loss_of(&self.theta.clone()), g)
    }
    fn sample_curvature(&mut self, _s: u64, _f: f64) {}
    fn gn_product(&mut self, v: &[f32]) -> Vec<f32> {
        v.to_vec()
    }
    fn heldout_eval(&mut self, theta: &[f32]) -> HeldoutEval {
        HeldoutEval {
            loss: self.loss_of(theta),
            accuracy: 0.0,
            frames: 1,
        }
    }
    fn train_frames(&self) -> u64 {
        1
    }
}

#[test]
fn l2_shifts_the_optimum_to_the_shrunken_target() {
    let l2 = 0.5f64;
    let target: Vec<f32> = (0..8).map(|i| 1.0 + i as f32 * 0.2).collect();
    let mut problem = Quadratic {
        theta: vec![0.0; 8],
        target: target.clone(),
    };
    let mut cfg = HfConfig::small_task();
    cfg.max_iters = 15;
    cfg.l2 = l2;
    cfg.lambda0 = 0.01;
    cfg.momentum = 0.0;
    HfOptimizer::new(cfg).train(&mut problem);
    // Penalized optimum: t / (1 + l2). Backtracking uses the
    // unpenalized held-out loss, which still improves monotonically on
    // the way from 0 to t/(1+l2), so HF can reach it.
    for (got, &t) in problem.theta.iter().zip(target.iter()) {
        let want = t / (1.0 + l2 as f32);
        assert!(
            (got - want).abs() < 0.05,
            "coordinate {got} vs shrunken target {want}"
        );
    }
}

#[test]
fn weight_decay_shrinks_dnn_parameters() {
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 64,
        ..CorpusSpec::tiny(55)
    });
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let mut rng = Prng::new(8);
    let net0: Network<f32> = Network::new(
        &[corpus.spec().feature_dim, 16, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );

    let norm_after = |l2: f64| -> (f64, f64) {
        let mut problem = DnnProblem::new(
            net0.clone(),
            GemmContext::sequential(),
            corpus.shard(&train_ids),
            corpus.shard(&held_ids),
            Objective::CrossEntropy,
        );
        let mut cfg = HfConfig::small_task();
        cfg.max_iters = 8;
        cfg.l2 = l2;
        let stats = HfOptimizer::new(cfg).train(&mut problem);
        let acc = stats
            .iter()
            .rev()
            .find(|s| s.accepted)
            .map(|s| s.heldout_accuracy)
            .unwrap_or(0.0);
        (blas1::nrm2(&problem.theta()), acc)
    };

    let (norm_plain, acc_plain) = norm_after(0.0);
    let (norm_decayed, acc_decayed) = norm_after(0.02);
    assert!(
        norm_decayed < norm_plain,
        "decay did not shrink weights: {norm_decayed} vs {norm_plain}"
    );
    // Mild decay must not destroy the model.
    assert!(
        acc_plain > 0.8 && acc_decayed > 0.7,
        "{acc_plain} {acc_decayed}"
    );
}

#[test]
fn zero_l2_is_the_identity_configuration() {
    let mut p1 = Quadratic {
        theta: vec![0.5; 4],
        target: vec![1.0; 4],
    };
    let mut p2 = Quadratic {
        theta: vec![0.5; 4],
        target: vec![1.0; 4],
    };
    let mut cfg = HfConfig::small_task();
    cfg.max_iters = 3;
    let base = HfOptimizer::new(cfg).train(&mut p1);
    cfg.l2 = 0.0;
    let explicit = HfOptimizer::new(cfg).train(&mut p2);
    assert_eq!(p1.theta, p2.theta);
    assert_eq!(base.len(), explicit.len());
}

#[test]
#[should_panic(expected = "l2 must be non-negative")]
fn negative_l2_rejected() {
    let mut cfg = HfConfig::small_task();
    cfg.l2 = -0.1;
    cfg.validate();
}
