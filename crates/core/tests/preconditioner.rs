//! Tests for the CG preconditioner extension (the paper's cited
//! future work): correctness of the plumbing, benefit on
//! ill-conditioned problems, and serial/distributed agreement of the
//! empirical-Fisher diagonal.

use pdnn_core::config::Preconditioner;
use pdnn_core::{DnnProblem, HeldoutEval, HfConfig, HfOptimizer, HfProblem, Objective};
use pdnn_dnn::{Activation, Network};
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_tensor::gemm::GemmContext;
use pdnn_util::Prng;

/// Quadratic with a badly conditioned diagonal curvature and an exact
/// Fisher diagonal — preconditioned HF should spend far fewer CG
/// iterations.
struct IllConditioned {
    theta: Vec<f32>,
    diag: Vec<f64>,
}

impl IllConditioned {
    fn new(n: usize) -> Self {
        IllConditioned {
            theta: vec![1.0; n],
            diag: (0..n)
                .map(|i| 10f64.powf(4.0 * i as f64 / n as f64))
                .collect(),
        }
    }
    fn loss_of(&self, theta: &[f32]) -> f64 {
        theta
            .iter()
            .zip(self.diag.iter())
            .map(|(&t, &d)| 0.5 * d * (t as f64) * (t as f64))
            .sum()
    }
}

impl HfProblem for IllConditioned {
    fn num_params(&self) -> usize {
        self.theta.len()
    }
    fn theta(&self) -> Vec<f32> {
        self.theta.clone()
    }
    fn set_theta(&mut self, theta: &[f32]) {
        self.theta = theta.to_vec();
    }
    fn gradient(&mut self) -> (f64, Vec<f32>) {
        let g = self
            .theta
            .iter()
            .zip(self.diag.iter())
            .map(|(&t, &d)| (d * t as f64) as f32)
            .collect();
        (self.loss_of(&self.theta.clone()), g)
    }
    fn sample_curvature(&mut self, _seed: u64, _fraction: f64) {}
    fn gn_product(&mut self, v: &[f32]) -> Vec<f32> {
        v.iter()
            .zip(self.diag.iter())
            .map(|(&x, &d)| (d * x as f64) as f32)
            .collect()
    }
    fn fisher_diagonal(&mut self) -> Option<Vec<f32>> {
        Some(self.diag.iter().map(|&d| d as f32).collect())
    }
    fn heldout_eval(&mut self, theta: &[f32]) -> HeldoutEval {
        HeldoutEval {
            loss: self.loss_of(theta),
            accuracy: 0.0,
            frames: 1,
        }
    }
    fn train_frames(&self) -> u64 {
        1
    }
}

fn total_cg_iters(precond: Preconditioner) -> (usize, f64) {
    let mut problem = IllConditioned::new(48);
    let mut cfg = HfConfig::small_task();
    cfg.max_iters = 4;
    cfg.cg.max_iters = 150;
    cfg.cg.epsilon = 1e-8;
    cfg.preconditioner = precond;
    let stats = HfOptimizer::new(cfg).train(&mut problem);
    (
        stats.iter().map(|s| s.cg_iters).sum(),
        stats.last().unwrap().heldout_after,
    )
}

#[test]
fn preconditioning_reduces_cg_work_on_ill_conditioned_curvature() {
    let (plain_iters, plain_loss) = total_cg_iters(Preconditioner::None);
    let (pre_iters, pre_loss) = total_cg_iters(Preconditioner::EmpiricalFisher { exponent: 1.0 });
    assert!(
        pre_iters * 2 < plain_iters,
        "precond {pre_iters} vs plain {plain_iters} CG iterations"
    );
    // Both reach a good solution.
    assert!(plain_loss < 1e-3, "plain loss {plain_loss}");
    assert!(pre_loss < 1e-3, "precond loss {pre_loss}");
}

#[test]
fn preconditioned_dnn_training_converges() {
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 64,
        ..CorpusSpec::tiny(77)
    });
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let mut rng = Prng::new(4);
    let net = Network::new(
        &[corpus.spec().feature_dim, 16, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let mut problem = DnnProblem::new(
        net,
        GemmContext::sequential(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        Objective::CrossEntropy,
    );
    let mut cfg = HfConfig::small_task();
    cfg.max_iters = 8;
    cfg.preconditioner = Preconditioner::EmpiricalFisher { exponent: 0.75 };
    let stats = HfOptimizer::new(cfg).train(&mut problem);
    let last = stats.iter().rev().find(|s| s.accepted).expect("no step");
    assert!(
        last.heldout_accuracy > 0.8,
        "preconditioned run stalled at accuracy {}",
        last.heldout_accuracy
    );
}

#[test]
fn serial_and_distributed_fisher_diagonals_agree() {
    use pdnn_core::distributed::{train_distributed, DistributedConfig};
    // Indirect but end-to-end: a preconditioned distributed run must
    // reach the same quality as the preconditioned serial run.
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 64,
        ..CorpusSpec::tiny(88)
    });
    let mut rng = Prng::new(5);
    let net = Network::new(
        &[corpus.spec().feature_dim, 12, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let mut hf = HfConfig::small_task();
    hf.max_iters = 5;
    hf.preconditioner = Preconditioner::EmpiricalFisher { exponent: 0.75 };

    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let mut serial = DnnProblem::new(
        net.clone(),
        GemmContext::sequential(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        Objective::CrossEntropy,
    );
    let serial_stats = HfOptimizer::new(hf).train(&mut serial);
    let serial_last = serial_stats.iter().rev().find(|s| s.accepted).unwrap();

    let config = DistributedConfig {
        workers: 3,
        hf,
        heldout_frac: 0.2,
        ..Default::default()
    };
    let out = train_distributed(&net, &corpus, &Objective::CrossEntropy, &config)
        .expect("training failed");
    let dist_last = out.stats.iter().rev().find(|s| s.accepted).unwrap();

    assert!(
        (dist_last.heldout_after - serial_last.heldout_after).abs()
            < 0.05 * (1.0 + serial_last.heldout_after),
        "distributed {} vs serial {}",
        dist_last.heldout_after,
        serial_last.heldout_after
    );
}

#[test]
#[should_panic(expected = "exponent must be in")]
fn invalid_exponent_rejected() {
    let mut cfg = HfConfig::small_task();
    cfg.preconditioner = Preconditioner::EmpiricalFisher { exponent: 0.0 };
    cfg.validate();
}
