//! Telemetry determinism: the same 4-rank distributed training run,
//! executed twice, must emit byte-identical `*_telemetry.jsonl`.
//!
//! This is the end-to-end guarantee the `pdnn-lint` rules exist to
//! protect: `l1-sim-wall-clock` keeps nondeterministic wall-clock
//! reads out of the simulation crates (the deterministic runner
//! freezes one shared `ManualClock` across all ranks), and
//! `l2-iteration-order` keeps hash-order iteration out of the
//! emission paths. If either regresses, the byte comparison below is
//! the test that goes red.

use pdnn_core::{
    train_distributed_deterministic, DistributedConfig, DnnProblem, HfConfig, HfOptimizer,
    HfProblem, Objective, TrainOutput,
};
use pdnn_dnn::{Activation, Network};
use pdnn_mpisim::{events_from_jsonl, events_to_jsonl};
use pdnn_obs::jsonl::to_jsonl_string;
use pdnn_obs::Telemetry;
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_tensor::gemm::{scalar_backend, GemmContext};
use pdnn_util::Prng;
use std::sync::Arc;

fn run_once(corpus: &Corpus) -> TrainOutput {
    let mut rng = Prng::new(11);
    let net0 = Network::new(
        &[corpus.spec().feature_dim, 10, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let mut config = DistributedConfig {
        workers: 3, // 4 ranks: master + 3 workers
        ..DistributedConfig::default()
    };
    config.hf.max_iters = 3;
    train_distributed_deterministic(&net0, corpus, &Objective::CrossEntropy, &config)
        .expect("training failed")
}

/// Serialize a run's per-rank telemetry exactly as the figure
/// pipelines write `*_telemetry.jsonl` (rank 0 = master).
fn telemetry_jsonl(out: &TrainOutput) -> String {
    let mut ranks: Vec<&Telemetry> = vec![&out.master_telemetry];
    ranks.extend(out.worker_telemetries.iter());
    let mut jsonl = String::new();
    for (rank, telemetry) in ranks.into_iter().enumerate() {
        jsonl.push_str(&to_jsonl_string(rank as u64, telemetry));
    }
    jsonl
}

#[test]
fn identical_runs_emit_byte_identical_telemetry() {
    let corpus = Corpus::generate(CorpusSpec::tiny(23));
    let first = run_once(&corpus);
    let second = run_once(&corpus);

    // Training itself must agree before telemetry can.
    assert_eq!(first.stats.len(), second.stats.len());
    for (a, b) in first.stats.iter().zip(&second.stats) {
        assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
        assert_eq!(a.grad_norm.to_bits(), b.grad_norm.to_bits());
    }

    let jsonl_a = telemetry_jsonl(&first);
    let jsonl_b = telemetry_jsonl(&second);
    assert!(
        !jsonl_a.is_empty(),
        "deterministic run produced no telemetry"
    );
    if jsonl_a != jsonl_b {
        // Point at the first differing line rather than dumping both
        // multi-thousand-line files.
        for (i, (la, lb)) in jsonl_a.lines().zip(jsonl_b.lines()).enumerate() {
            assert_eq!(la, lb, "telemetry diverges at line {}", i + 1);
        }
        panic!(
            "telemetry line counts diverge: {} vs {}",
            jsonl_a.lines().count(),
            jsonl_b.lines().count()
        );
    }
}

/// The prepacked-weight / workspace-arena hot path must be a pure
/// optimization: multiple HF iterations (CG solve → line-search
/// weight update → repack → next solve) with packing on and off must
/// agree on every parameter, bit for bit.
#[test]
fn packed_hot_path_is_bit_identical_to_unpacked() {
    let corpus = Corpus::generate(CorpusSpec::tiny(17));
    let (train_ids, held_ids) = corpus.split_heldout(0.25);

    let run = |packing: bool| -> (Vec<f32>, Vec<u64>) {
        let mut rng = Prng::new(5);
        let net = Network::new(
            &[corpus.spec().feature_dim, 12, corpus.spec().states],
            Activation::Sigmoid,
            &mut rng,
        );
        let recorder = Arc::new(pdnn_obs::InMemoryRecorder::new());
        let mut problem = DnnProblem::new(
            net,
            GemmContext::sequential(),
            corpus.shard(&train_ids),
            corpus.shard(&held_ids),
            Objective::CrossEntropy,
        )
        .with_packing(packing)
        .with_recorder(recorder.clone());
        let mut config = HfConfig::small_task();
        config.max_iters = 3; // 3 solves → 2 line-search updates in between
        let mut opt = HfOptimizer::new(config);
        let stats = opt.train(&mut problem);
        assert_eq!(stats.len(), 3);
        let loss_bits = stats.iter().map(|s| s.train_loss.to_bits()).collect();
        let data = recorder.take();
        if packing {
            assert!(
                data.counter("pack_cache_miss") >= 1,
                "packing run never built a pack"
            );
            assert!(
                data.counter("pack_cache_hit") > data.counter("pack_cache_miss"),
                "weights are constant across each CG solve, so hits must dominate"
            );
        } else {
            assert_eq!(data.counter("pack_cache_miss"), 0);
            assert_eq!(data.counter("pack_cache_hit"), 0);
        }
        (problem.theta(), loss_bits)
    };

    let (theta_packed, loss_packed) = run(true);
    let (theta_plain, loss_plain) = run(false);
    assert_eq!(loss_packed, loss_plain, "per-iteration losses diverge");
    assert_eq!(theta_packed.len(), theta_plain.len());
    for (i, (a, b)) in theta_packed.iter().zip(&theta_plain).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "theta[{i}] diverges: packed {a} vs unpacked {b}"
        );
    }
}

/// The compute backend must be invisible to training: the forced-
/// scalar reference and the runtime-dispatched SIMD backend (whatever
/// `default_backend()` resolves to on this host) must produce
/// bit-identical trained weights, per-iteration losses, AND
/// byte-identical serialized telemetry. This is the end-to-end check
/// on the microkernels' bit-exactness contract (`gemm::backend`);
/// `backend_parity` in pdnn-tensor covers the kernel level.
///
/// Backends are forced through explicit [`GemmContext::with_backend`]
/// contexts, not `PDNN_BACKEND`: the env override is resolved once
/// per process, so in-process comparisons must bypass it (the
/// env-driven equivalent runs as separate processes in verify.sh).
#[test]
fn forced_scalar_and_auto_backends_train_identically() {
    let corpus = Corpus::generate(CorpusSpec::tiny(31));
    let (train_ids, held_ids) = corpus.split_heldout(0.25);

    let run = |ctx: GemmContext| -> (Vec<f32>, Vec<u64>, String) {
        let mut rng = Prng::new(7);
        let net = Network::new(
            &[corpus.spec().feature_dim, 12, corpus.spec().states],
            Activation::Sigmoid,
            &mut rng,
        );
        let recorder = Arc::new(pdnn_obs::InMemoryRecorder::new());
        let mut problem = DnnProblem::new(
            net,
            ctx,
            corpus.shard(&train_ids),
            corpus.shard(&held_ids),
            Objective::CrossEntropy,
        )
        .with_recorder(recorder.clone());
        let mut config = HfConfig::small_task();
        config.max_iters = 3;
        let mut opt = HfOptimizer::new(config);
        let stats = opt.train(&mut problem);
        let loss_bits = stats.iter().map(|s| s.train_loss.to_bits()).collect();
        let jsonl = to_jsonl_string(0, &recorder.take());
        (problem.theta(), loss_bits, jsonl)
    };

    let (theta_scalar, loss_scalar, jsonl_scalar) =
        run(GemmContext::sequential().with_backend(scalar_backend()));
    let (theta_auto, loss_auto, jsonl_auto) = run(GemmContext::sequential());

    assert_eq!(loss_scalar, loss_auto, "per-iteration losses diverge");
    for (i, (a, b)) in theta_scalar.iter().zip(&theta_auto).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "theta[{i}] diverges: scalar {a} vs auto-backend {b}"
        );
    }
    assert!(!jsonl_scalar.is_empty(), "run produced no telemetry");
    assert_eq!(
        jsonl_scalar, jsonl_auto,
        "telemetry bytes diverge across backends"
    );
}

/// Serialize a run's per-rank comm-event traces exactly as
/// `pdnn-protomc` consumes them for trace conformance (rank 0 =
/// master; each rank's events are one JSONL block, ranks separated by
/// a `# rank N` header line so byte comparison covers rank order too).
fn events_jsonl(out: &TrainOutput) -> String {
    let mut blocks = vec![events_to_jsonl(&out.master_events)];
    blocks.extend(out.worker_events.iter().map(|e| events_to_jsonl(e)));
    let mut jsonl = String::new();
    for (rank, block) in blocks.iter().enumerate() {
        jsonl.push_str(&format!("# rank {rank}\n"));
        jsonl.push_str(block);
    }
    jsonl
}

/// The comm-event trace hook is part of the determinism contract:
/// two identically-seeded runs must record byte-identical serialized
/// event streams on every rank, and the hand-rolled JSONL codec must
/// round-trip each stream exactly (pdnn-protomc replays traces
/// through this codec, so a lossy serialization would silently
/// weaken trace conformance).
#[test]
fn identical_runs_emit_byte_identical_comm_events() {
    let corpus = Corpus::generate(CorpusSpec::tiny(23));
    let first = run_once(&corpus);
    let second = run_once(&corpus);

    assert!(
        !first.master_events.is_empty(),
        "master recorded no comm events"
    );
    assert_eq!(first.worker_events.len(), 3);
    for (w, events) in first.worker_events.iter().enumerate() {
        assert!(!events.is_empty(), "worker {w} recorded no comm events");
    }

    let jsonl_a = events_jsonl(&first);
    let jsonl_b = events_jsonl(&second);
    if jsonl_a != jsonl_b {
        for (i, (la, lb)) in jsonl_a.lines().zip(jsonl_b.lines()).enumerate() {
            assert_eq!(la, lb, "comm events diverge at line {}", i + 1);
        }
        panic!(
            "comm event line counts diverge: {} vs {}",
            jsonl_a.lines().count(),
            jsonl_b.lines().count()
        );
    }

    // Round trip every rank's stream through the codec.
    let mut ranks = vec![&first.master_events];
    ranks.extend(first.worker_events.iter());
    for (rank, events) in ranks.into_iter().enumerate() {
        let encoded = events_to_jsonl(events);
        let decoded = events_from_jsonl(&encoded)
            .unwrap_or_else(|e| panic!("rank {rank} stream failed to parse: {e}"));
        assert_eq!(&decoded, events, "rank {rank} events do not round-trip");
    }
}

#[test]
fn deterministic_telemetry_has_frozen_timestamps() {
    let corpus = Corpus::generate(CorpusSpec::tiny(29));
    let out = run_once(&corpus);
    // All wall-clock span endpoints read the one frozen ManualClock,
    // so every span is zero-length at t = 0. (Virtual-time spans from
    // the link model are exempt; this run records none.)
    for span in &out.master_telemetry.spans {
        assert_eq!(span.start.to_bits(), 0.0f64.to_bits(), "{}", span.name());
        assert_eq!(span.end.to_bits(), 0.0f64.to_bits(), "{}", span.name());
    }
    assert!(
        !out.master_telemetry.spans.is_empty(),
        "master recorded no spans"
    );
}
