//! Telemetry determinism: the same 4-rank distributed training run,
//! executed twice, must emit byte-identical `*_telemetry.jsonl`.
//!
//! This is the end-to-end guarantee the `pdnn-lint` rules exist to
//! protect: `l1-sim-wall-clock` keeps nondeterministic wall-clock
//! reads out of the simulation crates (the deterministic runner
//! freezes one shared `ManualClock` across all ranks), and
//! `l2-iteration-order` keeps hash-order iteration out of the
//! emission paths. If either regresses, the byte comparison below is
//! the test that goes red.

use pdnn_core::{train_distributed_deterministic, DistributedConfig, Objective, TrainOutput};
use pdnn_dnn::{Activation, Network};
use pdnn_obs::jsonl::to_jsonl_string;
use pdnn_obs::Telemetry;
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_util::Prng;

fn run_once(corpus: &Corpus) -> TrainOutput {
    let mut rng = Prng::new(11);
    let net0 = Network::new(
        &[corpus.spec().feature_dim, 10, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let mut config = DistributedConfig {
        workers: 3, // 4 ranks: master + 3 workers
        ..DistributedConfig::default()
    };
    config.hf.max_iters = 3;
    train_distributed_deterministic(&net0, corpus, &Objective::CrossEntropy, &config)
}

/// Serialize a run's per-rank telemetry exactly as the figure
/// pipelines write `*_telemetry.jsonl` (rank 0 = master).
fn telemetry_jsonl(out: &TrainOutput) -> String {
    let mut ranks: Vec<&Telemetry> = vec![&out.master_telemetry];
    ranks.extend(out.worker_telemetries.iter());
    let mut jsonl = String::new();
    for (rank, telemetry) in ranks.into_iter().enumerate() {
        jsonl.push_str(&to_jsonl_string(rank as u64, telemetry));
    }
    jsonl
}

#[test]
fn identical_runs_emit_byte_identical_telemetry() {
    let corpus = Corpus::generate(CorpusSpec::tiny(23));
    let first = run_once(&corpus);
    let second = run_once(&corpus);

    // Training itself must agree before telemetry can.
    assert_eq!(first.stats.len(), second.stats.len());
    for (a, b) in first.stats.iter().zip(&second.stats) {
        assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
        assert_eq!(a.grad_norm.to_bits(), b.grad_norm.to_bits());
    }

    let jsonl_a = telemetry_jsonl(&first);
    let jsonl_b = telemetry_jsonl(&second);
    assert!(
        !jsonl_a.is_empty(),
        "deterministic run produced no telemetry"
    );
    if jsonl_a != jsonl_b {
        // Point at the first differing line rather than dumping both
        // multi-thousand-line files.
        for (i, (la, lb)) in jsonl_a.lines().zip(jsonl_b.lines()).enumerate() {
            assert_eq!(la, lb, "telemetry diverges at line {}", i + 1);
        }
        panic!(
            "telemetry line counts diverge: {} vs {}",
            jsonl_a.lines().count(),
            jsonl_b.lines().count()
        );
    }
}

#[test]
fn deterministic_telemetry_has_frozen_timestamps() {
    let corpus = Corpus::generate(CorpusSpec::tiny(29));
    let out = run_once(&corpus);
    // All wall-clock span endpoints read the one frozen ManualClock,
    // so every span is zero-length at t = 0. (Virtual-time spans from
    // the link model are exempt; this run records none.)
    for span in &out.master_telemetry.spans {
        assert_eq!(span.start.to_bits(), 0.0f64.to_bits(), "{}", span.name());
        assert_eq!(span.end.to_bits(), 0.0f64.to_bits(), "{}", span.name());
    }
    assert!(
        !out.master_telemetry.spans.is_empty(),
        "master recorded no spans"
    );
}
