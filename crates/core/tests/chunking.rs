//! Chunked (memory-bounded) evaluation must be numerically equivalent
//! to single-batch evaluation — the property that lets the library
//! scale to corpora whose activations do not fit in memory.

use pdnn_core::problem::chunk_ranges;
use pdnn_core::{DnnProblem, HfProblem, Objective};
use pdnn_dnn::{Activation, Network};
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_tensor::gemm::GemmContext;
use pdnn_util::Prng;
use proptest::prelude::*;

fn problems(chunk: Option<usize>, seq: bool) -> DnnProblem {
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 48,
        ..CorpusSpec::tiny(606)
    });
    let (train_ids, held_ids) = corpus.split_heldout(0.25);
    let mut rng = Prng::new(1);
    let net = Network::new(
        &[corpus.spec().feature_dim, 14, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let objective = if seq {
        Objective::Sequence(corpus.denominator_graph())
    } else {
        Objective::CrossEntropy
    };
    let p = DnnProblem::new(
        net,
        GemmContext::sequential(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        objective,
    );
    match chunk {
        Some(c) => p.with_max_batch_frames(c),
        None => p,
    }
}

#[test]
fn chunked_gradient_matches_single_batch() {
    for seq in [false, true] {
        let (loss_full, grad_full) = problems(None, seq).gradient();
        for chunk in [64usize, 200, 1_000_000] {
            let (loss_c, grad_c) = problems(Some(chunk), seq).gradient();
            assert!(
                (loss_full - loss_c).abs() < 1e-6 * (1.0 + loss_full.abs()),
                "seq={seq} chunk={chunk}: loss {loss_full} vs {loss_c}"
            );
            let max_diff = grad_full
                .iter()
                .zip(grad_c.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_diff < 1e-5,
                "seq={seq} chunk={chunk}: grad diff {max_diff}"
            );
        }
    }
}

#[test]
fn chunked_heldout_matches_single_batch() {
    for seq in [false, true] {
        let mut full = problems(None, seq);
        let theta = full.theta();
        let e_full = full.heldout_eval(&theta);
        for chunk in [50usize, 333] {
            let mut c = problems(Some(chunk), seq);
            let e_c = c.heldout_eval(&theta);
            assert!(
                (e_full.loss - e_c.loss).abs() < 1e-6 * (1.0 + e_full.loss.abs()),
                "seq={seq} chunk={chunk}: {} vs {}",
                e_full.loss,
                e_c.loss
            );
            assert_eq!(e_full.frames, e_c.frames);
            assert!((e_full.accuracy - e_c.accuracy).abs() < 1e-9);
        }
    }
}

#[test]
fn chunk_ranges_basics() {
    // Three utterances of 5, 10, 3 frames with an 8-frame budget:
    // [5], [10] (oversized alone), [3].
    let r = chunk_ranges(&[5, 10, 3], 8);
    assert_eq!(r.len(), 3);
    assert_eq!(r[0], (0..1, 0..5));
    assert_eq!(r[1], (1..2, 5..15));
    assert_eq!(r[2], (2..3, 15..18));

    // Large budget: everything in one chunk.
    let r = chunk_ranges(&[5, 10, 3], 1000);
    assert_eq!(r, vec![(0..3, 0..18)]);

    // Empty shard: no chunks.
    assert!(chunk_ranges(&[], 8).is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunk_ranges_partition_exactly(
        lens in proptest::collection::vec(1usize..40, 0..30),
        max_frames in 1usize..100,
    ) {
        let chunks = chunk_ranges(&lens, max_frames);
        // Utterance ranges tile [0, n).
        let mut u_expect = 0usize;
        let mut f_expect = 0usize;
        for (ur, fr) in &chunks {
            prop_assert_eq!(ur.start, u_expect);
            prop_assert_eq!(fr.start, f_expect);
            prop_assert!(ur.end > ur.start, "empty chunk");
            let frames: usize = lens[ur.clone()].iter().sum();
            prop_assert_eq!(fr.end - fr.start, frames);
            // Budget respected unless the chunk is a single utterance.
            if ur.end - ur.start > 1 {
                prop_assert!(frames <= max_frames);
            }
            u_expect = ur.end;
            f_expect = fr.end;
        }
        prop_assert_eq!(u_expect, lens.len());
        prop_assert_eq!(f_expect, lens.iter().sum::<usize>());
    }
}
