//! Masterless synchronization: the ring / tree allreduce sync modes
//! and the wire codec, end to end through the distributed trainer.
//!
//! The contract under test (ISSUE 9 acceptance criteria):
//! * same seed + mode → bit-identical θ and byte-identical telemetry;
//! * schedule perturbation changes nothing (arrival-order freedom);
//! * ring mode removes the rank-0 rendezvous: ≥4x fewer bytes through
//!   rank 0 than master-centric sync at 8 ranks, zero p2p;
//! * wire compression (f16) reaches held-out accuracy parity with the
//!   uncompressed run under the same seed;
//! * fault plans work in every mode: the masterless modes recover via
//!   the peer-coordinated membership round (ISSUE 10), exercised in
//!   depth by `tests/fault_tolerance.rs` — here we just check the
//!   entry point accepts a plan and survives a kill.

use pdnn_core::{
    train_distributed, train_distributed_deterministic, train_distributed_faulted,
    train_distributed_perturbed, DistributedConfig, Objective, SyncStrategy, TrainOutput,
};
use pdnn_dnn::{Activation, Network};
use pdnn_mpisim::{FaultPlan, WireCodec};
use pdnn_obs::jsonl::to_jsonl_string;
use pdnn_obs::Telemetry;
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_util::Prng;

fn small_net(corpus: &Corpus, seed: u64) -> Network<f32> {
    let mut rng = Prng::new(seed);
    Network::new(
        &[corpus.spec().feature_dim, 12, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    )
}

fn config_for(sync: SyncStrategy, workers: usize, iters: usize) -> DistributedConfig {
    let mut config = DistributedConfig {
        workers,
        sync,
        ..DistributedConfig::default()
    };
    config.hf.max_iters = iters;
    config
}

fn telemetry_jsonl(out: &TrainOutput) -> String {
    let mut ranks: Vec<&Telemetry> = vec![&out.master_telemetry];
    ranks.extend(out.worker_telemetries.iter());
    let mut jsonl = String::new();
    for (rank, telemetry) in ranks.into_iter().enumerate() {
        jsonl.push_str(&to_jsonl_string(rank as u64, telemetry));
    }
    jsonl
}

/// All bytes rank 0 moved, in either direction, either class.
fn rank0_bytes(out: &TrainOutput) -> u64 {
    let t = &out.master_trace;
    t.p2p.bytes_sent + t.p2p.bytes_received + t.collective.bytes_sent + t.collective.bytes_received
}

#[test]
fn masterless_modes_train_and_agree_with_master() {
    let corpus = Corpus::generate(CorpusSpec::tiny(3));
    let net0 = small_net(&corpus, 1);
    let master = train_distributed(
        &net0,
        &corpus,
        &Objective::CrossEntropy,
        &config_for(SyncStrategy::Master, 3, 4),
    )
    .unwrap();
    for sync in [SyncStrategy::Ring, SyncStrategy::Tree] {
        let out = train_distributed(
            &net0,
            &corpus,
            &Objective::CrossEntropy,
            &config_for(sync, 3, 4),
        )
        .unwrap();
        assert_eq!(out.stats.len(), 4, "{sync:?}");
        assert_eq!(out.dead_ranks, Vec::<usize>::new());
        assert_eq!(out.recoveries, 0);
        // Same data, same shards, different reduction order: the first
        // gradient step sees the same sums up to f32 reassociation.
        assert!(
            (out.stats[0].train_loss - master.stats[0].train_loss).abs() < 1e-3,
            "{sync:?}: first loss {} vs master {}",
            out.stats[0].train_loss,
            master.stats[0].train_loss
        );
        // And training makes progress under the replicated optimizer.
        let first = out.stats.first().unwrap();
        let last = out.stats.iter().rev().find(|s| s.accepted).unwrap();
        assert!(
            last.heldout_after <= first.heldout_before,
            "{sync:?}: held-out loss did not improve: {} -> {}",
            first.heldout_before,
            last.heldout_after
        );
        // Masterless: world is `workers` ranks, so rank 0 plus
        // workers-1 peers report telemetry.
        assert_eq!(out.worker_telemetries.len(), 2);
    }
}

#[test]
fn ring_mode_is_bit_deterministic_with_byte_identical_telemetry() {
    let corpus = Corpus::generate(CorpusSpec::tiny(23));
    let net0 = small_net(&corpus, 11);
    for sync in [SyncStrategy::Ring, SyncStrategy::Tree] {
        let config = config_for(sync, 3, 3);
        let run = || {
            train_distributed_deterministic(&net0, &corpus, &Objective::CrossEntropy, &config)
                .unwrap()
        };
        let first = run();
        let second = run();
        assert_eq!(
            first
                .network
                .to_flat()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            second
                .network
                .to_flat()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            "{sync:?}: θ not bit-identical across identical runs"
        );
        let jsonl_a = telemetry_jsonl(&first);
        let jsonl_b = telemetry_jsonl(&second);
        assert!(!jsonl_a.is_empty());
        if jsonl_a != jsonl_b {
            for (i, (la, lb)) in jsonl_a.lines().zip(jsonl_b.lines()).enumerate() {
                assert_eq!(la, lb, "{sync:?}: telemetry diverges at line {}", i + 1);
            }
            panic!("{sync:?}: telemetry line counts diverge");
        }
        // The per-collective wire counters landed on every rank.
        let op = match sync {
            SyncStrategy::Ring => "wire_sent_allreduce_ring",
            _ => "wire_sent_allreduce_tree",
        };
        assert!(
            first.master_telemetry.counter(op) > 0,
            "{sync:?}: rank 0 recorded no {op}"
        );
    }
}

#[test]
fn masterless_modes_are_schedule_independent() {
    let corpus = Corpus::generate(CorpusSpec::tiny(13));
    let net0 = small_net(&corpus, 6);
    for sync in [SyncStrategy::Ring, SyncStrategy::Tree] {
        let config = config_for(sync, 3, 2);
        let baseline =
            train_distributed_deterministic(&net0, &corpus, &Objective::CrossEntropy, &config)
                .unwrap();
        for seed in [1u64, 99] {
            let out = train_distributed_perturbed(
                &net0,
                &corpus,
                &Objective::CrossEntropy,
                &config,
                seed,
            )
            .unwrap();
            assert_eq!(out.hb_violations, vec![], "{sync:?} seed {seed}");
            assert_eq!(
                out.network.to_flat(),
                baseline.network.to_flat(),
                "{sync:?} seed {seed}: weights diverged under perturbation"
            );
        }
    }
}

#[test]
fn ring_mode_slashes_rank0_bytes_at_8_ranks() {
    let corpus = Corpus::generate(CorpusSpec::tiny(7));
    let net0 = small_net(&corpus, 2);
    // Same 8-rank footprint: master-centric = 1 master + 7 workers,
    // masterless = 8 peers.
    let master = train_distributed(
        &net0,
        &corpus,
        &Objective::CrossEntropy,
        &config_for(SyncStrategy::Master, 7, 2),
    )
    .unwrap();
    let ring = train_distributed(
        &net0,
        &corpus,
        &Objective::CrossEntropy,
        &config_for(SyncStrategy::Ring, 8, 2),
    )
    .unwrap();
    let mut compressed = config_for(SyncStrategy::Ring, 8, 2);
    compressed.wire_codec = WireCodec::Int8;
    let ring_i8 = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &compressed).unwrap();
    let master_bytes = rank0_bytes(&master);
    let ring_bytes = rank0_bytes(&ring);
    let ring_i8_bytes = rank0_bytes(&ring_i8);
    eprintln!("rank0 bytes: master={master_bytes} ring={ring_bytes} ring+int8={ring_i8_bytes}");
    // Plain ring flattens the rank-0 hotspot: both rooted trees (3n at
    // rank 0 per collective at P=8) and the θ-shipping phases
    // (SET_THETA, heldout trial broadcasts, load_data) disappear, but
    // a symmetric allreduce still moves 2n out + 2n in through every
    // rank, so the honest plain-ring reduction at 8 ranks is ~2x.
    assert!(
        ring_bytes * 2 <= master_bytes,
        "ring rank-0 bytes {ring_bytes} not ≥2x below master {master_bytes}"
    );
    // The ≥4x reduction is the ring + wire-compression combination.
    assert!(
        ring_i8_bytes * 4 <= master_bytes,
        "compressed-ring rank-0 bytes {ring_i8_bytes} not ≥4x below master {master_bytes}"
    );
    // Masterless start-up computes shards locally: zero p2p anywhere.
    assert_eq!(ring.master_trace.p2p.bytes_sent, 0);
    assert_eq!(ring.master_trace.p2p.bytes_received, 0);
    for t in &ring.worker_traces {
        assert_eq!(t.p2p.bytes_sent + t.p2p.bytes_received, 0);
    }
}

#[test]
fn wire_codec_reaches_heldout_parity() {
    let corpus = Corpus::generate(CorpusSpec::tiny(5));
    let net0 = small_net(&corpus, 4);
    let run = |codec: WireCodec| {
        let mut config = config_for(SyncStrategy::Ring, 3, 4);
        config.wire_codec = codec;
        train_distributed_deterministic(&net0, &corpus, &Objective::CrossEntropy, &config).unwrap()
    };
    let plain = run(WireCodec::None);
    let f16 = run(WireCodec::F16);
    let final_loss = |out: &TrainOutput| {
        out.stats
            .iter()
            .rev()
            .find(|s| s.accepted)
            .map(|s| s.heldout_after)
            .unwrap_or(f64::INFINITY)
    };
    let lp = final_loss(&plain);
    let lf = final_loss(&f16);
    assert!(
        (lf - lp).abs() <= 0.05 * lp.abs(),
        "f16 held-out loss {lf} not within 5% of uncompressed {lp}"
    );
    // And it actually compressed: under f16 the f32 allreduce traffic
    // through rank 0 is roughly halved.
    let bp = rank0_bytes(&plain);
    let bf = rank0_bytes(&f16);
    assert!(
        (bf as f64) < 0.75 * bp as f64,
        "f16 bytes {bf} vs uncompressed {bp}"
    );
    // Int8 degrades the gradient more; require training to survive and
    // still improve, not strict parity.
    let i8run = run(WireCodec::Int8);
    let first = i8run.stats.first().unwrap();
    assert!(first.train_loss.is_finite());
    let li = final_loss(&i8run);
    assert!(
        li.is_finite() && li <= first.heldout_before,
        "int8 run did not improve held-out loss: {li}"
    );
}

#[test]
fn fault_plans_are_accepted_and_recovered_in_masterless_modes() {
    let corpus = Corpus::generate(CorpusSpec::tiny(9));
    let net0 = small_net(&corpus, 8);
    let plan = FaultPlan::new(41).kill(1, 5).with_timeouts(
        std::time::Duration::from_millis(500),
        std::time::Duration::from_secs(30),
    );
    for sync in [SyncStrategy::Ring, SyncStrategy::Tree] {
        let out = train_distributed_faulted(
            &net0,
            &corpus,
            &Objective::CrossEntropy,
            &config_for(sync, 3, 2),
            &plan,
        )
        .unwrap_or_else(|e| panic!("{sync:?}: masterless fault plan failed: {e}"));
        assert_eq!(out.dead_ranks, vec![1], "{sync:?}");
        assert!(out.recoveries >= 1, "{sync:?}: no recovery recorded");
        assert_eq!(out.stats.len(), 2, "{sync:?}: run did not complete");
    }
}
