//! Fault-tolerant distributed training: a worker killed mid-protocol
//! must be detected, its shard re-partitioned onto the survivors, and
//! training must resume from the last checkpoint and complete — with
//! bit-identical results across two runs under the same fault plan.
//!
//! The worker's collective index counts every collective it joins:
//! the initial `SET_THETA` is 0–1, the first `HELDOUT` 2–4, the first
//! `GRADIENT` 5–7, `SAMPLE` is 8, and the first CG `GN_PRODUCT`
//! occupies 9–12 — so the kill points below land before the gradient,
//! inside the CG solve, and inside the held-out evaluation.
//!
//! The masterless suite (ISSUE 10) exercises the peer-coordinated
//! recovery protocol: kills before the first gradient allreduce, mid
//! ring hop, and during the binomial-tree drain at 4 and 8 ranks;
//! same-plan bit-determinism; empty-plan byte-identity against the
//! fault-free deterministic ring run; and the wire-codec interaction
//! (a chunk whose owner dies mid-reduce-scatter must not leave a
//! half-decoded image in any survivor's buffer).

use pdnn_core::{
    train_distributed_deterministic, train_distributed_faulted, DistributedConfig, Objective,
    SyncStrategy, TrainOutput,
};
use pdnn_dnn::network::Network;
use pdnn_mpisim::FaultPlan;
use pdnn_obs::Telemetry;
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_util::Prng;
use std::time::Duration;

fn corpus_and_net(seed: u64) -> (Corpus, Network<f32>) {
    let corpus = Corpus::generate(CorpusSpec::tiny(seed));
    let mut rng = Prng::new(seed + 100);
    let net = Network::new(
        &[corpus.spec().feature_dim, 12, corpus.spec().states],
        pdnn_dnn::Activation::Sigmoid,
        &mut rng,
    );
    (corpus, net)
}

fn config(workers: usize, max_iters: usize) -> DistributedConfig {
    let mut config = DistributedConfig {
        workers,
        ..DistributedConfig::default()
    };
    config.hf.max_iters = max_iters;
    config
}

fn kill_plan(victim: usize, at_collective: u64) -> FaultPlan {
    FaultPlan::new(41)
        .kill(victim, at_collective)
        .with_timeouts(Duration::from_millis(500), Duration::from_secs(30))
}

/// Shared assertions for a run that lost exactly one worker.
fn assert_recovered(out: &TrainOutput, victim: usize, max_iters: usize) {
    assert_eq!(out.dead_ranks, vec![victim]);
    assert_eq!(out.recoveries, 1, "expected exactly one recovery");
    assert_eq!(out.stats.len(), max_iters, "training did not complete");
    for s in &out.stats {
        assert!(
            s.train_loss.is_finite() && s.heldout_after.is_finite(),
            "non-finite stats after recovery: {s:?}"
        );
    }
    // The master narrated the failure and the recovery.
    let names: Vec<&str> = out
        .master_telemetry
        .events
        .iter()
        .map(|e| e.name.as_ref())
        .collect();
    assert!(names.contains(&"worker_failure"), "no worker_failure event");
    assert!(
        names.contains(&"recovery_complete"),
        "no recovery_complete event"
    );
    assert_eq!(out.master_telemetry.counter("recoveries"), 1);
    // The victim recorded its own demise; every survivor absorbed a
    // share of the orphaned shard.
    let victim_tel = &out.worker_telemetries[victim - 1];
    assert!(
        victim_tel
            .events
            .iter()
            .any(|e| e.name == "worker_comm_abort"),
        "killed worker did not record its abort"
    );
    for (w, tel) in out.worker_telemetries.iter().enumerate() {
        let expected = if w + 1 == victim { 0 } else { 1 };
        assert_eq!(
            tel.counter("shard_reassignments"),
            expected,
            "worker rank {} reassignment count",
            w + 1
        );
    }
}

#[test]
fn worker_death_before_gradient_recovers_on_survivors() {
    let (corpus, net0) = corpus_and_net(3);
    let cfg = config(3, 3);
    let plan = kill_plan(2, 5); // rank 2 dies entering the first GRADIENT
    let out = train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &cfg, &plan)
        .expect("training must survive one worker death");
    assert_recovered(&out, 2, 3);
}

#[test]
fn worker_death_mid_cg_recovers_on_survivors() {
    let (corpus, net0) = corpus_and_net(5);
    let cfg = config(3, 3);
    let plan = kill_plan(1, 10); // rank 1 dies inside the first GN_PRODUCT
    let out = train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &cfg, &plan)
        .expect("training must survive one worker death");
    assert_recovered(&out, 1, 3);
}

#[test]
fn worker_death_during_heldout_recovers_on_survivors() {
    let (corpus, net0) = corpus_and_net(7);
    let cfg = config(3, 3);
    let plan = kill_plan(3, 3); // rank 3 dies inside the first HELDOUT
    let out = train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &cfg, &plan)
        .expect("training must survive one worker death");
    assert_recovered(&out, 3, 3);
}

/// All-rank telemetry rendered exactly as the figure pipelines write
/// `*_telemetry.jsonl` (rank 0 = master), for byte comparison.
fn telemetry_jsonl(out: &TrainOutput) -> String {
    let mut ranks: Vec<&Telemetry> = vec![&out.master_telemetry];
    ranks.extend(out.worker_telemetries.iter());
    let mut dump = String::new();
    for (rank, tel) in ranks.into_iter().enumerate() {
        dump.push_str(&pdnn_obs::jsonl::to_jsonl_string(rank as u64, tel));
    }
    dump
}

#[test]
fn same_fault_plan_is_bit_deterministic() {
    // The acceptance bar for plan-driven injection: a 4-rank run that
    // loses one worker mid-CG must produce bit-identical weights and
    // byte-identical telemetry when re-run under the same plan.
    let (corpus, net0) = corpus_and_net(9);
    let cfg = config(3, 2);
    let plan = kill_plan(1, 10);
    let run = || {
        train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &cfg, &plan)
            .expect("training must survive one worker death")
    };
    let a = run();
    let b = run();
    let bits =
        |o: &TrainOutput| -> Vec<u32> { o.network.to_flat().iter().map(|w| w.to_bits()).collect() };
    assert_eq!(bits(&a), bits(&b), "weights diverged across same-plan runs");
    assert_eq!(
        telemetry_jsonl(&a),
        telemetry_jsonl(&b),
        "telemetry diverged across same-plan runs"
    );
    assert_eq!(a.dead_ranks, b.dead_ranks);
    assert_eq!(a.recoveries, b.recoveries);
}

#[test]
fn checkpointed_recovery_restores_theta_from_disk() {
    // With a checkpoint path configured, recovery round-trips θ
    // through the atomic on-disk checkpoint rather than memory.
    let (corpus, net0) = corpus_and_net(11);
    let mut cfg = config(3, 3);
    cfg.checkpoint_every = 1;
    cfg.checkpoint_path =
        Some(std::env::temp_dir().join(format!("pdnn-ft-restore-{}.ckpt", std::process::id())));
    let plan = kill_plan(2, 25); // dies deep in the first outer iteration
    let out = train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &cfg, &plan)
        .expect("training must survive one worker death");
    assert_recovered(&out, 2, 3);
    // The checkpoint file holds the final periodic snapshot and is
    // loadable (the atomic writer never leaves a torn file).
    let path = cfg.checkpoint_path.as_ref().unwrap();
    let ckpt = pdnn_dnn::checkpoint::load_network(path).expect("checkpoint must be loadable");
    assert_eq!(ckpt.dims(), net0.dims());
    std::fs::remove_file(path).ok();
}

#[test]
fn faultless_plan_changes_nothing_observable() {
    // An empty fault plan must still complete training with no dead
    // ranks and no recoveries (the timed-collective path is exercised,
    // but nothing fails).
    let (corpus, net0) = corpus_and_net(13);
    let cfg = config(2, 2);
    let plan = FaultPlan::new(1);
    let out = train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &cfg, &plan)
        .expect("fault-free faulted run");
    assert_eq!(out.dead_ranks, Vec::<usize>::new());
    assert_eq!(out.recoveries, 0);
    assert_eq!(out.stats.len(), 2);
}

// ---------------------------------------------------------------------
// Masterless (ring/tree) recovery suite.
// ---------------------------------------------------------------------

fn masterless_config(sync: SyncStrategy, workers: usize, max_iters: usize) -> DistributedConfig {
    let mut config = DistributedConfig {
        workers,
        sync,
        ..DistributedConfig::default()
    };
    config.hf.max_iters = max_iters;
    config
}

fn theta_bits(out: &TrainOutput) -> Vec<u32> {
    out.network.to_flat().iter().map(|w| w.to_bits()).collect()
}

/// Shared assertions for a masterless run that lost exactly one rank.
/// The victim may be any rank (including rank 0 — the collection layer
/// then reports the lowest surviving replica), so events are searched
/// across every rank's telemetry.
fn assert_masterless_recovered(out: &TrainOutput, victim: usize, max_iters: usize) {
    assert_eq!(out.dead_ranks, vec![victim]);
    assert_eq!(out.recoveries, 1, "expected exactly one recovery");
    assert_eq!(out.stats.len(), max_iters, "training did not complete");
    for s in &out.stats {
        assert!(
            s.train_loss.is_finite() && s.heldout_after.is_finite(),
            "non-finite stats after recovery: {s:?}"
        );
    }
    let all: Vec<&Telemetry> = std::iter::once(&out.master_telemetry)
        .chain(out.worker_telemetries.iter())
        .collect();
    let any_event = |name: &str| all.iter().any(|t| t.events.iter().any(|e| e.name == name));
    assert!(any_event("worker_failure"), "no worker_failure event");
    assert!(any_event("recovery_complete"), "no recovery_complete event");
    assert!(
        any_event("worker_comm_abort"),
        "killed rank did not record its abort"
    );
    // Every survivor replays the re-partition locally: world-1 ranks
    // each record one shard reassignment, the victim none.
    let world = out.worker_telemetries.len() + 1;
    let reassignments: u64 = all.iter().map(|t| t.counter("shard_reassignments")).sum();
    assert_eq!(
        reassignments,
        (world - 1) as u64,
        "every survivor must absorb a share of the orphaned shard"
    );
}

fn run_masterless_kill(
    seed: u64,
    sync: SyncStrategy,
    workers: usize,
    max_iters: usize,
    victim: usize,
    at_collective: u64,
) -> TrainOutput {
    let (corpus, net0) = corpus_and_net(seed);
    let cfg = masterless_config(sync, workers, max_iters);
    let plan = kill_plan(victim, at_collective);
    train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &cfg, &plan)
        .expect("masterless training must survive one rank death")
}

#[test]
fn ring_kill_before_gradient_recovers_at_4_ranks() {
    // Rank 2 dies entering its very first collective: the survivors
    // abort the first gradient allreduce, agree on membership, and
    // replay from iteration 0.
    let out = run_masterless_kill(21, SyncStrategy::Ring, 4, 3, 2, 0);
    assert_masterless_recovered(&out, 2, 3);
}

#[test]
fn ring_kill_mid_hop_recovers_at_8_ranks() {
    // A kill a few collectives in lands while the survivors are mid
    // ring hop (reduce-scatter/allgather in flight on every rank).
    let out = run_masterless_kill(23, SyncStrategy::Ring, 8, 2, 5, 7);
    assert_masterless_recovered(&out, 5, 2);
}

#[test]
fn tree_kill_during_drain_recovers_at_4_ranks() {
    // The binomial tree is draining toward its root when the victim
    // disappears; the re-parented tree must route around it.
    let out = run_masterless_kill(25, SyncStrategy::Tree, 4, 2, 1, 4);
    assert_masterless_recovered(&out, 1, 2);
}

#[test]
fn tree_kill_recovers_at_8_ranks() {
    let out = run_masterless_kill(27, SyncStrategy::Tree, 8, 2, 3, 2);
    assert_masterless_recovered(&out, 3, 2);
}

#[test]
fn masterless_kill_of_rank0_elects_next_coordinator() {
    // Rank 0 is the default membership coordinator; killing it forces
    // the survivors to elect rank 1 and the collection layer to report
    // from the lowest surviving replica.
    let out = run_masterless_kill(29, SyncStrategy::Ring, 4, 2, 0, 5);
    assert_masterless_recovered(&out, 0, 2);
}

#[test]
fn masterless_same_plan_is_bit_deterministic() {
    let (corpus, net0) = corpus_and_net(31);
    let cfg = masterless_config(SyncStrategy::Ring, 4, 2);
    let plan = kill_plan(1, 6);
    let run = || {
        train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &cfg, &plan)
            .expect("masterless training must survive one rank death")
    };
    let a = run();
    let b = run();
    assert_eq!(
        theta_bits(&a),
        theta_bits(&b),
        "weights diverged across same-plan masterless runs"
    );
    assert_eq!(
        telemetry_jsonl(&a),
        telemetry_jsonl(&b),
        "telemetry diverged across same-plan masterless runs"
    );
    assert_eq!(a.dead_ranks, b.dead_ranks);
    assert_eq!(a.recoveries, b.recoveries);
}

#[test]
fn masterless_empty_plan_is_byte_identical_to_fault_free_ring() {
    // Arming the fault machinery without any scheduled fault must not
    // perturb anything observable: same θ bits, same telemetry bytes
    // as the fault-free deterministic ring run.
    let (corpus, net0) = corpus_and_net(33);
    let cfg = masterless_config(SyncStrategy::Ring, 3, 2);
    let plan = FaultPlan::new(1);
    let faulted = train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &cfg, &plan)
        .expect("empty-plan masterless run");
    let clean = train_distributed_deterministic(&net0, &corpus, &Objective::CrossEntropy, &cfg)
        .expect("fault-free masterless run");
    assert_eq!(faulted.dead_ranks, Vec::<usize>::new());
    assert_eq!(faulted.recoveries, 0);
    assert_eq!(theta_bits(&faulted), theta_bits(&clean), "θ diverged");
    assert_eq!(
        telemetry_jsonl(&faulted),
        telemetry_jsonl(&clean),
        "telemetry diverged between empty-plan and fault-free ring runs"
    );
}

#[test]
fn codec_armed_kill_matches_uncompressed_faulted_ring() {
    use pdnn_mpisim::{CommError, ReduceOp, WireCodec};
    // Integer-valued f32 inputs are exact in binary16, so the F16
    // codec is lossless here — any half-decoded wire image left in a
    // survivor's buffer by the aborted reduce-scatter would surface as
    // a bitwise mismatch against the uncompressed faulted run.
    let survivors = |codec: WireCodec| -> Vec<Vec<u32>> {
        let plan = FaultPlan::new(7)
            .kill(2, 0)
            .with_timeouts(Duration::from_millis(200), Duration::from_secs(30));
        let n = 640usize;
        let outs = pdnn_mpisim::run_world_faulted(5, &plan, move |comm| {
            comm.set_wire_codec(codec);
            let seed_buf = |rank: usize| -> Vec<f32> {
                (0..n).map(|i| ((rank * 97 + i) % 50) as f32).collect()
            };
            let mut buf = seed_buf(comm.rank());
            match comm.allreduce_ring(&mut buf, ReduceOp::Sum) {
                Err(CommError::Killed) => return None,
                Err(CommError::RankDead { rank }) => comm.ack_dead(rank),
                other => panic!("unexpected first allreduce outcome: {other:?}"),
            }
            // Survivors re-seed and rerun over the re-stitched ring.
            let mut buf = seed_buf(comm.rank());
            comm.allreduce_ring_timed(&mut buf, ReduceOp::Sum, Duration::from_secs(30))
                .expect("re-stitched ring must complete");
            Some(buf.iter().map(|x| x.to_bits()).collect::<Vec<u32>>())
        });
        outs.into_iter().filter_map(|o| o.result).collect()
    };
    let plain = survivors(WireCodec::None);
    let coded = survivors(WireCodec::F16);
    assert_eq!(plain.len(), 4, "expected 4 survivors");
    assert_eq!(
        plain, coded,
        "codec-armed re-stitched ring differs from the uncompressed faulted run"
    );
}
