//! Convergence detection.
//!
//! The paper reports that "each of these networks converge to their
//! optimal weights after 20 to 40 iterations through the entire data
//! set" — production runs stop on held-out behavior, not a fixed
//! count. [`StopRule`] implements the standard criteria:
//!
//! * a hard iteration cap (the paper's 20–40 band),
//! * a target held-out loss,
//! * relative-improvement patience: stop after `patience` consecutive
//!   iterations that improve held-out loss by less than
//!   `min_rel_improvement` (rejected iterations count as
//!   zero-improvement).

/// Configurable stopping criteria, evaluated after each HF iteration.
#[derive(Clone, Copy, Debug)]
pub struct StopRule {
    /// Stop when held-out loss reaches this value.
    pub target_loss: Option<f64>,
    /// Stop after this many consecutive low-improvement iterations.
    pub patience: Option<usize>,
    /// Relative held-out improvement below which an iteration counts
    /// as "no progress" for the patience counter.
    pub min_rel_improvement: f64,
}

impl Default for StopRule {
    fn default() -> Self {
        StopRule {
            target_loss: None,
            patience: None,
            min_rel_improvement: 1e-3,
        }
    }
}

/// Why training stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The iteration cap was reached.
    MaxIters,
    /// Held-out loss hit the target.
    TargetReached,
    /// `patience` consecutive iterations made no meaningful progress.
    Stalled,
}

/// Stateful evaluator for a [`StopRule`].
#[derive(Clone, Debug)]
pub struct StopState {
    rule: StopRule,
    stall_count: usize,
}

impl StopState {
    /// Fresh evaluator.
    pub fn new(rule: StopRule) -> Self {
        assert!(
            rule.min_rel_improvement >= 0.0,
            "min_rel_improvement must be non-negative"
        );
        StopState {
            rule,
            stall_count: 0,
        }
    }

    /// Record one iteration's held-out transition; returns a stop
    /// reason when a criterion fires.
    pub fn observe(&mut self, loss_before: f64, loss_after: f64) -> Option<StopReason> {
        if let Some(target) = self.rule.target_loss {
            if loss_after <= target {
                return Some(StopReason::TargetReached);
            }
        }
        let rel = if loss_before.abs() > f64::MIN_POSITIVE {
            (loss_before - loss_after) / loss_before.abs()
        } else {
            0.0
        };
        if rel < self.rule.min_rel_improvement {
            self.stall_count += 1;
        } else {
            self.stall_count = 0;
        }
        if let Some(patience) = self.rule.patience {
            if self.stall_count >= patience {
                return Some(StopReason::Stalled);
            }
        }
        None
    }

    /// Consecutive low-improvement iterations so far.
    pub fn stall_count(&self) -> usize {
        self.stall_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_fires_immediately() {
        let mut s = StopState::new(StopRule {
            target_loss: Some(0.1),
            ..Default::default()
        });
        assert_eq!(s.observe(1.0, 0.5), None);
        assert_eq!(s.observe(0.5, 0.09), Some(StopReason::TargetReached));
    }

    #[test]
    fn patience_counts_consecutive_stalls() {
        let mut s = StopState::new(StopRule {
            patience: Some(3),
            min_rel_improvement: 0.01,
            ..Default::default()
        });
        // Two stalls, then progress resets the counter.
        assert_eq!(s.observe(1.0, 0.9995), None);
        assert_eq!(s.observe(0.9995, 0.999), None);
        assert_eq!(s.stall_count(), 2);
        assert_eq!(s.observe(0.999, 0.5), None);
        assert_eq!(s.stall_count(), 0);
        // Three consecutive stalls fire.
        assert_eq!(s.observe(0.5, 0.4999), None);
        assert_eq!(s.observe(0.4999, 0.4999), None);
        assert_eq!(s.observe(0.4999, 0.4999), Some(StopReason::Stalled));
    }

    #[test]
    fn rejected_iterations_count_as_stalls() {
        // loss_before == loss_after (rejection): zero improvement.
        let mut s = StopState::new(StopRule {
            patience: Some(2),
            min_rel_improvement: 1e-6,
            ..Default::default()
        });
        assert_eq!(s.observe(1.0, 1.0), None);
        assert_eq!(s.observe(1.0, 1.0), Some(StopReason::Stalled));
    }

    #[test]
    fn no_rules_never_stops() {
        let mut s = StopState::new(StopRule {
            target_loss: None,
            patience: None,
            min_rel_improvement: 0.5,
        });
        for _ in 0..100 {
            assert_eq!(s.observe(1.0, 1.0), None);
        }
    }

    #[test]
    fn worsening_loss_is_a_stall() {
        let mut s = StopState::new(StopRule {
            patience: Some(1),
            min_rel_improvement: 0.0,
            ..Default::default()
        });
        assert_eq!(s.observe(1.0, 1.2), Some(StopReason::Stalled));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_rejected() {
        StopState::new(StopRule {
            min_rel_improvement: -0.1,
            ..Default::default()
        });
    }
}
