//! Armijo backtracking line search.
//!
//! Algorithm 1 finishes each iteration with `θ ← θ + α d_i` where α is
//! found by "an Armijo rule backtracking line search": accept the
//! largest `α ∈ {1, ζ, ζ², …}` satisfying
//!
//! ```text
//! L(θ + α d) ≤ L(θ) + c · α · (g·d)
//! ```
//!
//! with `c = 1e-4` and shrink factor `ζ = 0.5` by default. If the
//! directional derivative is non-negative (not a descent direction) or
//! no step satisfies the condition within the budget, the search
//! reports failure and the optimizer rejects the iteration.

/// Line-search configuration.
#[derive(Clone, Copy, Debug)]
pub struct ArmijoConfig {
    /// Sufficient-decrease constant `c`.
    pub c: f64,
    /// Multiplicative shrink factor per backtrack.
    pub shrink: f64,
    /// Maximum number of trial steps.
    pub max_steps: usize,
}

impl Default for ArmijoConfig {
    fn default() -> Self {
        ArmijoConfig {
            c: 1e-4,
            shrink: 0.5,
            max_steps: 20,
        }
    }
}

/// Outcome of a successful search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArmijoResult {
    /// Accepted step length.
    pub alpha: f64,
    /// Loss at the accepted point.
    pub loss: f64,
    /// Function evaluations consumed.
    pub evals: usize,
}

/// Run the search. `eval(alpha)` must return `L(θ + α d)`;
/// `loss0 = L(θ)`; `slope = g·d` (must be negative for descent).
///
/// Returns `None` when `slope >= 0` or the budget is exhausted without
/// satisfying the Armijo condition.
pub fn armijo_search(
    loss0: f64,
    slope: f64,
    mut eval: impl FnMut(f64) -> f64,
    config: &ArmijoConfig,
) -> Option<ArmijoResult> {
    assert!(
        config.shrink > 0.0 && config.shrink < 1.0,
        "shrink in (0,1)"
    );
    assert!(config.max_steps >= 1, "need at least one trial");
    if slope >= 0.0 {
        return None;
    }
    let mut alpha = 1.0f64;
    for step in 1..=config.max_steps {
        let loss = eval(alpha);
        if loss.is_finite() && loss <= loss0 + config.c * alpha * slope {
            return Some(ArmijoResult {
                alpha,
                loss,
                evals: step,
            });
        }
        alpha *= config.shrink;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_step_accepted_on_quadratic() {
        // f(α) = (1 - α)²; loss0 = f(0) = 1, slope = -2.
        let res = armijo_search(
            1.0,
            -2.0,
            |a| (1.0 - a) * (1.0 - a),
            &ArmijoConfig::default(),
        )
        .expect("should succeed");
        assert_eq!(res.alpha, 1.0);
        assert_eq!(res.evals, 1);
        assert!(res.loss < 1.0);
    }

    #[test]
    fn backtracks_when_full_step_overshoots() {
        // Steep valley: f(α) = (1 - 4α)². slope at 0 is -8.
        let res = armijo_search(
            1.0,
            -8.0,
            |a| (1.0 - 4.0 * a) * (1.0 - 4.0 * a),
            &ArmijoConfig::default(),
        )
        .expect("should succeed after backtracking");
        assert!(res.alpha < 1.0);
        assert!(res.evals > 1);
        assert!(res.loss <= 1.0 + 1e-4 * res.alpha * -8.0);
    }

    #[test]
    fn non_descent_direction_rejected() {
        assert!(armijo_search(1.0, 0.5, |_| 0.0, &ArmijoConfig::default()).is_none());
        assert!(armijo_search(1.0, 0.0, |_| 0.0, &ArmijoConfig::default()).is_none());
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // Adversarial loss that never improves.
        let res = armijo_search(1.0, -1.0, |_| 2.0, &ArmijoConfig::default());
        assert!(res.is_none());
    }

    #[test]
    fn nan_losses_are_skipped_not_accepted() {
        // First trial produces NaN (e.g. diverged forward pass); the
        // search must keep shrinking rather than accept.
        let mut calls = 0;
        let res = armijo_search(
            1.0,
            -1.0,
            |a| {
                calls += 1;
                if a > 0.9 {
                    f64::NAN
                } else {
                    1.0 - 0.5 * a
                }
            },
            &ArmijoConfig::default(),
        )
        .expect("finite smaller loss exists");
        assert!(res.alpha < 1.0);
        assert!(calls >= 2);
    }

    #[test]
    fn evals_counted() {
        let cfg = ArmijoConfig {
            c: 1e-4,
            shrink: 0.5,
            max_steps: 30,
        };
        let res = armijo_search(1.0, -1.0, |a| if a > 0.2 { 2.0 } else { 0.9 }, &cfg).unwrap();
        // alpha halves: 1, .5, .25, .125 — 4th eval succeeds.
        assert_eq!(res.evals, 4);
        assert!((res.alpha - 0.125).abs() < 1e-12);
    }
}
