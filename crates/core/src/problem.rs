//! The [`HfProblem`] abstraction and its serial DNN implementation.
//!
//! The optimizer (Algorithm 1) is written against a small trait with
//! exactly the operations the paper's master performs: evaluate the
//! gradient over all training data, redraw a curvature minibatch,
//! compute damped Gauss–Newton products on it, and evaluate trial
//! parameters on held-out data. [`DnnProblem`] executes those
//! operations in-process; `crate::distributed` provides the
//! master/worker implementation of the same trait over message
//! passing — the optimizer cannot tell the difference, which is what
//! makes the serial-vs-distributed parity tests meaningful.

use pdnn_dnn::backprop::backprop_ws;
use pdnn_dnn::gauss_newton::{gn_product_ws, Curvature};
use pdnn_dnn::loss::{cross_entropy, cross_entropy_loss_only, softmax_rows};
use pdnn_dnn::network::{ForwardCache, Network};
use pdnn_dnn::packed::{PackedActivations, PackedWeights};
use pdnn_dnn::sequence::{mmi_batch, DenominatorGraph};
use pdnn_obs::{NullRecorder, Recorder};
use pdnn_speech::Shard;
use pdnn_tensor::gemm::GemmContext;
use pdnn_tensor::{Matrix, Workspace};
use pdnn_util::Prng;
use std::sync::Arc;

/// Training objective (the two criteria of the paper's Table I).
#[derive(Clone, Debug)]
pub enum Objective {
    /// Frame-level softmax cross-entropy.
    CrossEntropy,
    /// Utterance-level MMI with the given denominator graph.
    Sequence(DenominatorGraph),
}

/// Held-out evaluation result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeldoutEval {
    /// Mean per-frame loss.
    pub loss: f64,
    /// Frame classification accuracy (argmax vs target).
    pub accuracy: f64,
    /// Frames evaluated.
    pub frames: u64,
}

/// The operations Algorithm 1 needs from a training problem.
pub trait HfProblem {
    /// Dimension of θ.
    fn num_params(&self) -> usize;
    /// Current parameters.
    fn theta(&self) -> Vec<f32>;
    /// Overwrite parameters (invalidates any cached curvature state).
    fn set_theta(&mut self, theta: &[f32]);
    /// Mean-per-frame training loss and gradient at the current θ.
    fn gradient(&mut self) -> (f64, Vec<f32>);
    /// Redraw the curvature minibatch (a `fraction` of utterances,
    /// deterministic in `seed`) and cache the forward state at the
    /// current θ.
    fn sample_curvature(&mut self, seed: u64, fraction: f64);
    /// Undamped Gauss–Newton product, mean per sampled frame.
    fn gn_product(&mut self, v: &[f32]) -> Vec<f32>;
    /// Mean-per-frame empirical-Fisher diagonal over the curvature
    /// sample (`diag(Σ ∇L_f²)/frames`), used by the optional CG
    /// preconditioner. `None` when the problem does not support it.
    fn fisher_diagonal(&mut self) -> Option<Vec<f32>> {
        None
    }
    /// Held-out loss/accuracy at arbitrary trial parameters.
    fn heldout_eval(&mut self, theta: &[f32]) -> HeldoutEval;
    /// Total training frames (for reporting).
    fn train_frames(&self) -> u64;
}

/// Cached curvature-minibatch state.
struct SampleState {
    x: Matrix<f32>,
    labels: Vec<u32>,
    utt_lens: Vec<usize>,
    cache: ForwardCache<f32>,
    /// Model distribution rows for the Fisher curvature (softmax for
    /// CE, denominator occupancies for MMI).
    dist: Matrix<f32>,
    /// Prepacked activation operands for the repeated `gn_product`
    /// calls of one CG solve (`None` when packing is disabled).
    packed_acts: Option<PackedActivations<f32>>,
}

/// Serial in-process implementation of [`HfProblem`].
pub struct DnnProblem {
    net: Network<f32>,
    ctx: GemmContext,
    train: Shard,
    heldout: Shard,
    objective: Objective,
    sample: Option<SampleState>,
    scratch_net: Network<f32>,
    /// Upper bound on frames materialized per forward pass (chunked
    /// evaluation); `usize::MAX` = single batch.
    max_batch_frames: usize,
    /// Recycled scratch buffers for the training hot path.
    ws: Workspace<f32>,
    /// Prepacked weight panels, rebuilt lazily when `net.version()`
    /// moves (i.e. exactly once per accepted weight update).
    packs: Option<PackedWeights<f32>>,
    /// Whether to use the prepacked/arena hot path (on by default;
    /// the unpacked path exists for parity testing).
    packing: bool,
    recorder: Arc<dyn Recorder>,
}

impl DnnProblem {
    /// Build a problem around a network and data shards.
    ///
    /// # Panics
    /// If shard feature widths do not match the network input, or a
    /// label is out of the network's class range.
    pub fn new(
        net: Network<f32>,
        ctx: GemmContext,
        train: Shard,
        heldout: Shard,
        objective: Objective,
    ) -> Self {
        assert_eq!(train.x.cols(), net.input_dim(), "train feature width");
        assert_eq!(heldout.x.cols(), net.input_dim(), "heldout feature width");
        let classes = net.output_dim() as u32;
        assert!(
            train.labels.iter().all(|&l| l < classes),
            "train label out of range"
        );
        assert!(
            heldout.labels.iter().all(|&l| l < classes),
            "heldout label out of range"
        );
        if let Objective::Sequence(g) = &objective {
            assert_eq!(
                g.states(),
                net.output_dim(),
                "denominator graph states != network outputs"
            );
        }
        let scratch_net = net.clone();
        DnnProblem {
            net,
            ctx,
            train,
            heldout,
            objective,
            sample: None,
            scratch_net,
            max_batch_frames: usize::MAX,
            ws: Workspace::new(),
            packs: None,
            packing: true,
            recorder: Arc::new(NullRecorder),
        }
    }

    /// Enable or disable the prepacked-weight / workspace-arena hot
    /// path. Both settings produce bit-identical results; disabling
    /// exists for parity tests and A/B benchmarks.
    pub fn with_packing(mut self, enabled: bool) -> Self {
        self.packing = enabled;
        self.packs = None;
        self
    }

    /// Attach a recorder for pack-cache and arena telemetry.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Bound the number of frames materialized per forward pass.
    ///
    /// Training activations cost `frames x Σ layer widths` floats; a
    /// 144 M-frame corpus cannot be forwarded in one batch. Chunks
    /// respect utterance boundaries (required by the sequence
    /// criterion), so a single utterance longer than the bound still
    /// forms one chunk.
    pub fn with_max_batch_frames(mut self, frames: usize) -> Self {
        assert!(frames > 0, "max_batch_frames must be positive");
        self.max_batch_frames = frames;
        self
    }

    /// The network being trained.
    pub fn network(&self) -> &Network<f32> {
        &self.net
    }

    /// Consume, returning the trained network.
    pub fn into_network(self) -> Network<f32> {
        self.net
    }

    /// Arena statistics (allocations avoided, bytes recycled).
    pub fn workspace_stats(&self) -> pdnn_tensor::WorkspaceStats {
        self.ws.stats()
    }

    /// Rebuild the weight packs iff the network's version moved since
    /// they were last built. Counters are pure functions of the call
    /// sequence, so telemetry stays byte-identical across runs.
    fn ensure_packs(&mut self) {
        if !self.packing {
            return;
        }
        match &self.packs {
            Some(p) if p.matches(&self.net) => {
                self.recorder.counter_add("pack_cache_hit", 1);
            }
            _ => {
                self.packs = Some(PackedWeights::new(&self.net, &self.ctx));
                self.recorder.counter_add("pack_cache_miss", 1);
            }
        }
    }

    /// Drop the cached curvature sample, recycling its buffers.
    fn retire_sample(&mut self) {
        if let Some(s) = self.sample.take() {
            s.cache.give_back(&mut self.ws);
            self.ws.give_matrix(s.x);
            self.ws.give_matrix(s.dist);
        }
    }

    /// Evaluate loss + dlogits + distribution on a batch under the
    /// objective. Returns (loss_sum, dlogits, dist).
    fn eval_batch(
        net: &Network<f32>,
        ctx: &GemmContext,
        objective: &Objective,
        cache: &ForwardCache<f32>,
        labels: &[u32],
        utt_lens: &[usize],
    ) -> (f64, Matrix<f32>, Matrix<f32>) {
        match objective {
            Objective::CrossEntropy => {
                let out = cross_entropy(cache.logits(), labels);
                let dist = softmax_rows(cache.logits());
                let _ = (net, ctx);
                (out.loss, out.dlogits, dist)
            }
            Objective::Sequence(graph) => {
                let out = mmi_batch(cache.logits(), labels, utt_lens, graph);
                (out.loss, out.dlogits, out.den_posteriors)
            }
        }
    }
}

impl HfProblem for DnnProblem {
    fn num_params(&self) -> usize {
        self.net.num_params()
    }

    fn theta(&self) -> Vec<f32> {
        self.net.to_flat()
    }

    fn set_theta(&mut self, theta: &[f32]) {
        // This is the pack-invalidation point: `set_flat` bumps the
        // network version, so the next `ensure_packs` repacks.
        self.net.set_flat(theta);
        self.retire_sample();
    }

    fn gradient(&mut self) -> (f64, Vec<f32>) {
        self.ensure_packs();
        let frames = self.train.frames().max(1) as f64;
        let mut loss_sum = 0.0f64;
        let mut grad = vec![0.0f32; self.net.num_params()];
        for (utt_range, frame_range) in chunk_ranges(&self.train.utt_lens, self.max_batch_frames) {
            let x = self.train.x.rows_copy(frame_range.start, frame_range.end);
            let labels = &self.train.labels[frame_range.clone()];
            let utt_lens = &self.train.utt_lens[utt_range];
            let cache = self
                .net
                .forward_ws(&self.ctx, &x, self.packs.as_ref(), &mut self.ws);
            let (chunk_loss, dlogits, dist) = Self::eval_batch(
                &self.net,
                &self.ctx,
                &self.objective,
                &cache,
                labels,
                utt_lens,
            );
            loss_sum += chunk_loss;
            let chunk_grad = backprop_ws(
                &self.net,
                &self.ctx,
                &cache,
                &dlogits,
                self.packs.as_ref(),
                &mut self.ws,
            );
            pdnn_tensor::blas1::add(&chunk_grad, &mut grad);
            self.ws.give_vec(chunk_grad);
            self.ws.give_matrix(dlogits);
            self.ws.give_matrix(dist);
            cache.give_back(&mut self.ws);
            self.ws.give_matrix(x);
        }
        let inv = (1.0 / frames) as f32;
        pdnn_tensor::blas1::scal(inv, &mut grad);
        (loss_sum / frames, grad)
    }

    fn sample_curvature(&mut self, seed: u64, fraction: f64) {
        self.retire_sample();
        let ids = sample_utterances(&self.train.utt_lens, fraction, seed);
        let (x, labels, utt_lens) = extract_utterances(&self.train, &ids);
        // The cache outlives this call (it backs every `gn_product`
        // of the solve), so it is forwarded outside the arena.
        let cache = self.net.forward(&self.ctx, &x);
        let (_, _, dist) = Self::eval_batch(
            &self.net,
            &self.ctx,
            &self.objective,
            &cache,
            &labels,
            &utt_lens,
        );
        let packed_acts = if self.packing {
            Some(PackedActivations::new(&cache, &self.ctx))
        } else {
            None
        };
        self.sample = Some(SampleState {
            x,
            labels,
            utt_lens,
            cache,
            dist,
            packed_acts,
        });
    }

    fn gn_product(&mut self, v: &[f32]) -> Vec<f32> {
        self.ensure_packs();
        let sample = self
            .sample
            .as_ref()
            // pdnn-lint: allow(l3-no-unwrap): HfProblem contract — the optimizer always samples curvature first
            .expect("gn_product called before sample_curvature");
        let frames = sample.x.rows().max(1) as f64;
        let _ = &sample.utt_lens;
        let mut gv = gn_product_ws(
            &self.net,
            &self.ctx,
            &sample.cache,
            Curvature::Fisher(&sample.dist),
            v,
            self.packs.as_ref(),
            sample.packed_acts.as_ref(),
            &mut self.ws,
        );
        let inv = (1.0 / frames) as f32;
        pdnn_tensor::blas1::scal(inv, &mut gv);
        let stats = self.ws.stats();
        self.recorder
            .gauge_set("arena_bytes_reused", stats.bytes_reused as f64);
        self.recorder
            .gauge_set("arena_high_water_bytes", stats.high_water_bytes as f64);
        gv
    }

    fn fisher_diagonal(&mut self) -> Option<Vec<f32>> {
        let sample = self
            .sample
            .as_ref()
            // pdnn-lint: allow(l3-no-unwrap): HfProblem contract — the optimizer always samples curvature first
            .expect("fisher_diagonal called before sample_curvature");
        let frames = sample.x.rows().max(1) as f64;
        let (_, dlogits, _) = Self::eval_batch(
            &self.net,
            &self.ctx,
            &self.objective,
            &sample.cache,
            &sample.labels,
            &sample.utt_lens,
        );
        let mut diag = pdnn_dnn::fisher::empirical_fisher_diagonal(
            &self.net,
            &self.ctx,
            &sample.cache,
            &dlogits,
        );
        pdnn_tensor::blas1::scal((1.0 / frames) as f32, &mut diag);
        Some(diag)
    }

    fn heldout_eval(&mut self, theta: &[f32]) -> HeldoutEval {
        self.scratch_net.set_flat(theta);
        let frames = self.heldout.frames().max(1) as f64;
        let mut loss_sum = 0.0f64;
        let mut correct = 0usize;
        for (utt_range, frame_range) in chunk_ranges(&self.heldout.utt_lens, self.max_batch_frames)
        {
            let x = self.heldout.x.rows_copy(frame_range.start, frame_range.end);
            let labels = &self.heldout.labels[frame_range.clone()];
            let utt_lens = &self.heldout.utt_lens[utt_range];
            // Trial parameters change every call, so no weight packs;
            // the arena still recycles the activation scratch.
            let logits = self
                .scratch_net
                .logits_ws(&self.ctx, &x, None, &mut self.ws);
            match &self.objective {
                Objective::CrossEntropy => {
                    let (l, c) = cross_entropy_loss_only(&logits, labels);
                    loss_sum += l;
                    correct += c;
                }
                Objective::Sequence(graph) => {
                    let out = mmi_batch(&logits, labels, utt_lens, graph);
                    loss_sum += out.loss;
                    // Frame accuracy is still argmax-vs-alignment.
                    let preds = logits.row_argmax();
                    correct += preds
                        .iter()
                        .zip(labels.iter())
                        .filter(|(&p, &l)| p as u32 == l)
                        .count();
                }
            }
            self.ws.give_matrix(logits);
            self.ws.give_matrix(x);
        }
        HeldoutEval {
            loss: loss_sum / frames,
            accuracy: correct as f64 / frames,
            frames: self.heldout.frames() as u64,
        }
    }

    fn train_frames(&self) -> u64 {
        self.train.frames() as u64
    }
}

/// Split a shard's utterances into chunks of at most `max_frames`
/// frames (a single over-long utterance forms its own chunk).
/// Returns `(utterance index range, frame row range)` pairs covering
/// the shard exactly.
pub fn chunk_ranges(
    utt_lens: &[usize],
    max_frames: usize,
) -> Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> {
    assert!(max_frames > 0, "max_frames must be positive");
    let mut out = Vec::new();
    let mut u_start = 0usize;
    let mut f_start = 0usize;
    let mut f_cursor = 0usize;
    for (u, &len) in utt_lens.iter().enumerate() {
        // Close the current chunk if adding this utterance overflows
        // a non-empty chunk.
        if f_cursor > f_start && f_cursor - f_start + len > max_frames {
            out.push((u_start..u, f_start..f_cursor));
            u_start = u;
            f_start = f_cursor;
        }
        f_cursor += len;
    }
    if (f_cursor > f_start || utt_lens.is_empty()) && !utt_lens.is_empty() {
        out.push((u_start..utt_lens.len(), f_start..f_cursor));
    }
    out
}

/// Deterministically sample a fraction of utterances (at least one).
pub fn sample_utterances(utt_lens: &[usize], fraction: f64, seed: u64) -> Vec<usize> {
    assert!(!utt_lens.is_empty(), "cannot sample from an empty shard");
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0,1], got {fraction}"
    );
    let n = utt_lens.len();
    let k = ((n as f64 * fraction).round() as usize).clamp(1, n);
    let mut rng = Prng::new(seed);
    let mut ids = rng.sample_indices(n, k);
    ids.sort_unstable();
    ids
}

/// Copy the given utterances out of a shard into a contiguous batch.
pub fn extract_utterances(shard: &Shard, ids: &[usize]) -> (Matrix<f32>, Vec<u32>, Vec<usize>) {
    // Row offsets of each utterance in the shard.
    let mut offsets = Vec::with_capacity(shard.utt_lens.len() + 1);
    let mut acc = 0usize;
    for &len in &shard.utt_lens {
        offsets.push(acc);
        acc += len;
    }
    offsets.push(acc);

    let dim = shard.x.cols();
    let total: usize = ids.iter().map(|&i| shard.utt_lens[i]).sum();
    let mut x = Matrix::zeros(total, dim);
    let mut labels = Vec::with_capacity(total);
    let mut utt_lens = Vec::with_capacity(ids.len());
    let mut row = 0usize;
    for &i in ids {
        assert!(i < shard.utt_lens.len(), "utterance id {i} out of range");
        let (lo, hi) = (offsets[i], offsets[i + 1]);
        let len = hi - lo;
        x.as_mut_slice()[row * dim..(row + len) * dim].copy_from_slice(shard.x.rows_slice(lo, hi));
        labels.extend_from_slice(&shard.labels[lo..hi]);
        utt_lens.push(len);
        row += len;
    }
    (x, labels, utt_lens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdnn_dnn::Activation;
    use pdnn_speech::{Corpus, CorpusSpec};

    fn tiny_problem(objective_seq: bool) -> DnnProblem {
        let corpus = Corpus::generate(CorpusSpec::tiny(5));
        let (train_ids, held_ids) = corpus.split_heldout(0.25);
        let train = corpus.shard(&train_ids);
        let heldout = corpus.shard(&held_ids);
        let mut rng = Prng::new(1);
        let net = Network::new(
            &[corpus.spec().feature_dim, 16, corpus.spec().states],
            Activation::Sigmoid,
            &mut rng,
        );
        let objective = if objective_seq {
            Objective::Sequence(corpus.denominator_graph())
        } else {
            Objective::CrossEntropy
        };
        DnnProblem::new(net, GemmContext::sequential(), train, heldout, objective)
    }

    #[test]
    fn gradient_is_mean_normalized() {
        let mut p = tiny_problem(false);
        let (loss, grad) = p.gradient();
        // Mean CE of a random net on a 6-class task ≈ ln 6.
        assert!(loss > 1.0 && loss < 3.0, "loss={loss}");
        assert_eq!(grad.len(), p.num_params());
        let norm = pdnn_tensor::blas1::nrm2(&grad);
        assert!(norm > 1e-4 && norm < 10.0, "grad norm {norm}");
    }

    #[test]
    fn set_theta_roundtrips_and_invalidates_sample() {
        let mut p = tiny_problem(false);
        p.sample_curvature(1, 0.5);
        let theta = p.theta();
        p.set_theta(&theta);
        // Sample must be gone: gn_product now panics.
        let v = vec![0.0f32; p.num_params()];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.gn_product(&v);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn gn_product_is_psd_and_symmetric_on_sample() {
        let mut p = tiny_problem(false);
        p.sample_curvature(7, 0.5);
        let n = p.num_params();
        let mut rng = Prng::new(2);
        let v1: Vec<f32> = (0..n).map(|_| rng.normal() as f32 * 0.1).collect();
        let v2: Vec<f32> = (0..n).map(|_| rng.normal() as f32 * 0.1).collect();
        let g1 = p.gn_product(&v1);
        let g2 = p.gn_product(&v2);
        let quad = pdnn_tensor::blas1::dot(&v1, &g1);
        assert!(quad >= -1e-6, "v'Gv = {quad}");
        let a = pdnn_tensor::blas1::dot(&v2, &g1);
        let b = pdnn_tensor::blas1::dot(&v1, &g2);
        assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{a} vs {b}");
    }

    #[test]
    fn heldout_eval_of_random_net_is_chance_level() {
        let mut p = tiny_problem(false);
        let theta = p.theta();
        let eval = p.heldout_eval(&theta);
        assert!(eval.frames > 0);
        // 6 classes: chance ≈ 1/6; random init should be within a
        // loose band around it.
        assert!(eval.accuracy < 0.6, "accuracy {}", eval.accuracy);
        assert!(eval.loss > 1.0, "loss {}", eval.loss);
    }

    #[test]
    fn sequence_objective_evaluates() {
        let mut p = tiny_problem(true);
        let (loss, grad) = p.gradient();
        assert!(loss.is_finite() && loss >= 0.0, "loss={loss}");
        assert!(grad.iter().all(|g| g.is_finite()));
        p.sample_curvature(3, 0.5);
        let v = vec![0.01f32; p.num_params()];
        let gv = p.gn_product(&v);
        assert!(gv.iter().all(|g| g.is_finite()));
        let quad = pdnn_tensor::blas1::dot(&v, &gv);
        assert!(quad >= -1e-6);
    }

    #[test]
    fn sample_utterances_respects_fraction_and_determinism() {
        let lens = vec![10usize; 100];
        let a = sample_utterances(&lens, 0.03, 9);
        assert_eq!(a.len(), 3);
        let b = sample_utterances(&lens, 0.03, 9);
        assert_eq!(a, b);
        let c = sample_utterances(&lens, 0.03, 10);
        assert_ne!(a, c);
        // Minimum one utterance.
        assert_eq!(sample_utterances(&lens, 0.001, 1).len(), 1);
        // Full fraction = everything.
        assert_eq!(sample_utterances(&lens, 1.0, 1).len(), 100);
    }

    #[test]
    fn extract_utterances_matches_shard_layout() {
        let corpus = Corpus::generate(CorpusSpec::tiny(8));
        let all: Vec<usize> = (0..corpus.utterances().len()).collect();
        let shard = corpus.shard(&all);
        let (x, labels, lens) = extract_utterances(&shard, &[1, 3]);
        assert_eq!(lens, vec![shard.utt_lens[1], shard.utt_lens[3]]);
        assert_eq!(labels.len(), lens.iter().sum::<usize>());
        // First row of the extraction equals the first row of utt 1.
        let utt1_start: usize = shard.utt_lens[..1].iter().sum();
        assert_eq!(x.row(0), shard.x.row(utt1_start));
    }

    #[test]
    #[should_panic(expected = "train feature width")]
    fn shape_mismatch_rejected() {
        let corpus = Corpus::generate(CorpusSpec::tiny(5));
        let all: Vec<usize> = (0..corpus.utterances().len()).collect();
        let shard = corpus.shard(&all);
        let mut rng = Prng::new(1);
        let net: Network<f32> = Network::new(&[3, 4, 6], Activation::Sigmoid, &mut rng);
        DnnProblem::new(
            net,
            GemmContext::sequential(),
            shard.clone(),
            shard,
            Objective::CrossEntropy,
        );
    }
}
