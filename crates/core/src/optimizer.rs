//! Algorithm 1: the Hessian-free outer loop.
//!
//! One iteration (paper Section IV):
//!
//! 1. `g ← ∇L(θ)` over **all** training data (data-parallel when the
//!    problem is distributed).
//! 2. `{d_1 … d_N} ← CG-Minimize(q_θ, d_0)` with
//!    `q_θ(d) = g·d + ½ d·(G + λI)d`, Gauss–Newton products over a
//!    fresh curvature minibatch.
//! 3. **Backtracking** over the CG iterate series on *held-out* loss:
//!    CG can overfit the minibatch quadratic, so later iterates may be
//!    worse on held-out data than earlier ones.
//! 4. Step rejection (`λ ← 3/2 λ, d_0 ← 0, continue`) when no iterate
//!    beats the current parameters.
//! 5. Levenberg–Marquardt λ adaptation from
//!    `ρ = (L_best − L_prev)/q(d_N)` (Martens orientation: actual over
//!    predicted reduction, both negative on success — see
//!    `crate::damping` for the paper-literal discrepancy).
//! 6. Armijo backtracking line search on the chosen iterate, then
//!    `θ ← θ + α d_i`, momentum `d_0 ← β d_N`.

use crate::cg::{cg_minimize_recorded, CgStop};
use crate::config::{HfConfig, Preconditioner};
use crate::damping::Damping;
use crate::line_search::armijo_search;
use crate::problem::HfProblem;
use crate::stopping::{StopReason, StopState};
use pdnn_obs::{NullRecorder, Recorder, RecorderExt, SpanKind};
use pdnn_tensor::blas1;
use pdnn_util::float::exactly_zero;
use std::sync::Arc;

/// Statistics from one outer HF iteration.
#[derive(Clone, Debug)]
pub struct IterStats {
    /// Iteration index (0-based).
    pub iter: usize,
    /// Mean training loss at the start of the iteration.
    pub train_loss: f64,
    /// L2 norm of the (mean) gradient.
    pub grad_norm: f64,
    /// Held-out loss before the update (`L_prev`).
    pub heldout_before: f64,
    /// Held-out loss after the update (equals `heldout_before` on
    /// rejection).
    pub heldout_after: f64,
    /// Held-out frame accuracy after the update.
    pub heldout_accuracy: f64,
    /// λ in effect during CG (before post-step adaptation).
    pub lambda: f64,
    /// Reduction ratio ρ (NaN on rejection).
    pub rho: f64,
    /// CG iterations executed.
    pub cg_iters: usize,
    /// Why CG stopped.
    pub cg_stop: CgStop,
    /// CG iteration index of the chosen direction (0 on rejection).
    pub chosen_iter: usize,
    /// Line-search step length (0 on rejection).
    pub alpha: f64,
    /// Whether the update was applied.
    pub accepted: bool,
    /// Held-out evaluations consumed this iteration.
    pub heldout_evals: usize,
}

/// The Hessian-free optimizer (stateful across iterations: damping
/// level, momentum direction, last held-out loss).
pub struct HfOptimizer {
    config: HfConfig,
    damping: Damping,
    d_prev: Option<Vec<f32>>,
    loss_prev: Option<f64>,
    recorder: Arc<dyn Recorder>,
}

impl HfOptimizer {
    /// Create an optimizer with the given configuration (telemetry
    /// discarded; see [`HfOptimizer::with_recorder`]).
    pub fn new(config: HfConfig) -> Self {
        Self::with_recorder(config, Arc::new(NullRecorder))
    }

    /// Create an optimizer that records per-iteration telemetry —
    /// `hf_iteration`/`gradient`/`backtracking`/`line_search` spans, a
    /// `cg_iters` counter, a `lambda` gauge, and one `hf_iteration`
    /// event per step — to the given recorder.
    // pdnn-lint: allow(l5-phase-span): constructor, not a phase — spans open in step()/run(), which this merely wires up
    pub fn with_recorder(config: HfConfig, recorder: Arc<dyn Recorder>) -> Self {
        config.validate();
        HfOptimizer {
            damping: Damping::new(config.lambda0, config.lambda_rule),
            config,
            d_prev: None,
            loss_prev: None,
            recorder,
        }
    }

    /// Rebuild an optimizer mid-run for checkpoint-restart: same
    /// validated config and recorder, but the damping level restored
    /// to `lambda` (the value captured alongside the checkpoint).
    /// Momentum and the cached held-out loss restart cold — both are
    /// warm-start accelerations, and resetting them is deterministic,
    /// so two recoveries from the same snapshot replay identically.
    // pdnn-lint: allow(l5-phase-span): constructor, not a phase — spans open in step()/train(), which this merely wires up
    pub fn resume_with_recorder(
        config: HfConfig,
        lambda: f64,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        config.validate();
        HfOptimizer {
            damping: Damping::new(lambda, config.lambda_rule),
            config,
            d_prev: None,
            loss_prev: None,
            recorder,
        }
    }

    /// Current damping λ.
    pub fn lambda(&self) -> f64 {
        self.damping.lambda()
    }

    /// Run up to `config.max_iters` iterations, stopping early per
    /// the configured [`crate::stopping::StopRule`] (or
    /// `target_heldout_loss`).
    pub fn train<P: HfProblem>(&mut self, problem: &mut P) -> Vec<IterStats> {
        self.train_with_reason(problem).0
    }

    /// Like [`HfOptimizer::train`], also reporting why training
    /// stopped.
    pub fn train_with_reason<P: HfProblem>(
        &mut self,
        problem: &mut P,
    ) -> (Vec<IterStats>, StopReason) {
        let mut rule = self.config.stop;
        if rule.target_loss.is_none() {
            rule.target_loss = self.config.target_heldout_loss;
        }
        let mut stop = StopState::new(rule);
        let mut stats = Vec::with_capacity(self.config.max_iters);
        for iter in 0..self.config.max_iters {
            let s = self.step(problem, iter);
            let reason = stop.observe(s.heldout_before, s.heldout_after);
            stats.push(s);
            if let Some(reason) = reason {
                return (stats, reason);
            }
        }
        (stats, StopReason::MaxIters)
    }

    /// Execute one outer iteration.
    pub fn step<P: HfProblem>(&mut self, problem: &mut P, iter: usize) -> IterStats {
        let rec = self.recorder.clone();
        let _iter_span = rec.span("hf_iteration", SpanKind::Scalar);
        rec.counter_add("hf_iterations", 1);
        let n = problem.num_params();
        let theta0 = problem.theta();
        assert_eq!(theta0.len(), n);
        let mut heldout_evals = 0usize;

        let loss_prev = match self.loss_prev {
            Some(l) => l,
            None => {
                heldout_evals += 1;
                let e = problem.heldout_eval(&theta0);
                self.loss_prev = Some(e.loss);
                e.loss
            }
        };

        // 1. Gradient over all training data (+ L2 penalty terms).
        let grad_span = rec.span("gradient", SpanKind::DenseCompute);
        let (mut train_loss, mut g) = problem.gradient();
        let l2 = self.config.l2;
        if l2 > 0.0 {
            blas1::axpy(l2 as f32, &theta0, &mut g);
            train_loss += 0.5 * l2 * blas1::dot(&theta0, &theta0);
        }
        let g = g;
        let train_loss = train_loss;
        let grad_norm = blas1::nrm2(&g);
        drop(grad_span);

        // 2. Curvature minibatch + truncated CG.
        let sample_seed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(iter as u64);
        problem.sample_curvature(sample_seed, self.config.curvature_fraction);

        let lambda = self.damping.lambda();
        rec.gauge_set("lambda", lambda);
        let d0: Vec<f32> = match &self.d_prev {
            Some(d) => d.clone(),
            None => vec![0.0; n],
        };
        // Optional Martens preconditioner: M = (diag(Fisher) + λ)^ξ.
        let precond: Option<Vec<f32>> = match self.config.preconditioner {
            Preconditioner::None => None,
            Preconditioner::EmpiricalFisher { exponent } => problem.fisher_diagonal().map(|diag| {
                diag.into_iter()
                    .map(|d| ((d.max(0.0) as f64 + lambda).powf(exponent)) as f32)
                    .collect()
            }),
        };
        let cg = cg_minimize_recorded(
            &g,
            &d0,
            |v| {
                let mut gv = problem.gn_product(v);
                // Damping plus the exact curvature of the L2 penalty.
                blas1::axpy((lambda + l2) as f32, v, &mut gv);
                gv
            },
            precond.as_deref(),
            &self.config.cg,
            rec.as_ref(),
        );

        // Momentum for the *next* iteration uses the final direction
        // regardless of which iterate the backtracking picks.
        let d_final = cg.final_d().to_vec();
        let q_final = cg.final_q();

        // 3. Backtracking over the iterate series on held-out loss.
        let mut eval_at = |d: &[f32], evals: &mut usize| {
            let mut trial = theta0.clone();
            blas1::add(d, &mut trial);
            *evals += 1;
            problem.heldout_eval(&trial).loss
        };
        let bt_span = rec.span("backtracking", SpanKind::DenseCompute);
        let n_stored = cg.iterates.len();
        let mut best_pos = n_stored - 1;
        let mut l_best = eval_at(&cg.iterates[best_pos].d, &mut heldout_evals);
        for pos in (0..n_stored.saturating_sub(1)).rev() {
            let l_curr = eval_at(&cg.iterates[pos].d, &mut heldout_evals);
            if loss_prev >= l_best && l_curr >= l_best {
                break;
            }
            l_best = l_curr;
            best_pos = pos;
        }
        drop(bt_span);

        // 4. Rejection: no iterate improves held-out loss.
        if loss_prev < l_best || !l_best.is_finite() {
            self.damping.on_reject();
            self.d_prev = None; // d_0 ← 0
            rec.event(
                "hf_iteration",
                vec![
                    ("iter".into(), (iter as u64).into()),
                    ("train_loss".into(), train_loss.into()),
                    ("lambda".into(), lambda.into()),
                    ("cg_iters".into(), (cg.iters as u64).into()),
                    ("rho".into(), f64::NAN.into()),
                    ("accepted".into(), 0u64.into()),
                ],
            );
            return IterStats {
                iter,
                train_loss,
                grad_norm,
                heldout_before: loss_prev,
                heldout_after: loss_prev,
                heldout_accuracy: f64::NAN,
                lambda,
                rho: f64::NAN,
                cg_iters: cg.iters,
                cg_stop: cg.stop,
                chosen_iter: 0,
                alpha: 0.0,
                accepted: false,
                heldout_evals,
            };
        }

        // 5. λ adaptation from the reduction ratio.
        let rho = if !exactly_zero(q_final) {
            (l_best - loss_prev) / q_final
        } else {
            f64::NAN
        };
        if rho.is_finite() {
            self.damping.adjust(rho);
        }

        // 6. Armijo line search along the chosen iterate.
        let ls_span = rec.span("line_search", SpanKind::DenseCompute);
        let chosen = &cg.iterates[best_pos];
        let slope = blas1::dot(&g, &chosen.d);
        let search = armijo_search(
            loss_prev,
            slope,
            |alpha| {
                let mut trial = theta0.clone();
                blas1::axpy(alpha as f32, &chosen.d, &mut trial);
                heldout_evals += 1;
                problem.heldout_eval(&trial).loss
            },
            &self.config.armijo,
        );
        // The backtracking already certified d_i improves held-out
        // loss at α = 1, so a failed search falls back to the full
        // step rather than rejecting.
        let alpha = search.map(|r| r.alpha).unwrap_or(1.0);
        drop(ls_span);

        let mut theta_new = theta0;
        blas1::axpy(alpha as f32, &chosen.d, &mut theta_new);
        // The sole weight update of the iteration — prepacked weight
        // caches downstream (DnnProblem, workers) invalidate exactly
        // here, and stay valid across every CG product in between.
        problem.set_theta(&theta_new);

        // Momentum warm start: d_0 ← β d_N.
        let beta = self.config.momentum as f32;
        self.d_prev = if beta > 0.0 {
            let mut d = d_final;
            blas1::scal(beta, &mut d);
            Some(d)
        } else {
            None
        };

        heldout_evals += 1;
        let after = problem.heldout_eval(&theta_new);
        self.loss_prev = Some(after.loss);

        rec.event(
            "hf_iteration",
            vec![
                ("iter".into(), (iter as u64).into()),
                ("train_loss".into(), train_loss.into()),
                ("lambda".into(), lambda.into()),
                ("cg_iters".into(), (cg.iters as u64).into()),
                ("rho".into(), rho.into()),
                ("accepted".into(), 1u64.into()),
            ],
        );

        IterStats {
            iter,
            train_loss,
            grad_norm,
            heldout_before: loss_prev,
            heldout_after: after.loss,
            heldout_accuracy: after.accuracy,
            lambda,
            rho,
            cg_iters: cg.iters,
            cg_stop: cg.stop,
            chosen_iter: chosen.iter,
            alpha,
            accepted: true,
            heldout_evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::HeldoutEval;

    /// Exactly solvable problem: L(θ) = ½‖θ − t‖², G = I.
    /// HF must land on t almost immediately.
    struct Quadratic {
        theta: Vec<f32>,
        target: Vec<f32>,
    }

    impl Quadratic {
        fn loss_of(&self, theta: &[f32]) -> f64 {
            theta
                .iter()
                .zip(self.target.iter())
                .map(|(&a, &b)| {
                    let d = (a - b) as f64;
                    0.5 * d * d
                })
                .sum()
        }
    }

    impl HfProblem for Quadratic {
        fn num_params(&self) -> usize {
            self.theta.len()
        }
        fn theta(&self) -> Vec<f32> {
            self.theta.clone()
        }
        fn set_theta(&mut self, theta: &[f32]) {
            self.theta = theta.to_vec();
        }
        fn gradient(&mut self) -> (f64, Vec<f32>) {
            let g: Vec<f32> = self
                .theta
                .iter()
                .zip(self.target.iter())
                .map(|(&a, &b)| a - b)
                .collect();
            (self.loss_of(&self.theta.clone()), g)
        }
        fn sample_curvature(&mut self, _seed: u64, _fraction: f64) {}
        fn gn_product(&mut self, v: &[f32]) -> Vec<f32> {
            v.to_vec()
        }
        fn heldout_eval(&mut self, theta: &[f32]) -> HeldoutEval {
            HeldoutEval {
                loss: self.loss_of(theta),
                accuracy: 0.0,
                frames: 1,
            }
        }
        fn train_frames(&self) -> u64 {
            1
        }
    }

    #[test]
    fn solves_quadratic_in_few_iterations() {
        let mut problem = Quadratic {
            theta: vec![0.0; 10],
            target: (0..10).map(|i| i as f32 * 0.3 - 1.0).collect(),
        };
        let mut cfg = HfConfig::small_task();
        cfg.max_iters = 6;
        cfg.lambda0 = 0.01;
        let mut opt = HfOptimizer::new(cfg);
        let stats = opt.train(&mut problem);
        let last = stats.last().unwrap();
        assert!(
            last.heldout_after < 1e-6,
            "final loss {}",
            last.heldout_after
        );
        for (got, want) in problem.theta.iter().zip(problem.target.iter()) {
            assert!((got - want).abs() < 1e-3);
        }
        // First iteration already accepted a near-Newton step.
        assert!(stats[0].accepted);
        assert!(stats[0].alpha > 0.0);
    }

    #[test]
    fn heldout_loss_never_increases_on_accepted_steps() {
        let mut problem = Quadratic {
            theta: vec![2.0; 8],
            target: vec![-1.0; 8],
        };
        let mut opt = HfOptimizer::new(HfConfig::small_task());
        let stats = opt.train(&mut problem);
        for s in &stats {
            if s.accepted {
                assert!(
                    s.heldout_after <= s.heldout_before + 1e-9,
                    "iter {}: {} -> {}",
                    s.iter,
                    s.heldout_before,
                    s.heldout_after
                );
            }
        }
    }

    /// A problem whose held-out loss is adversarially constant: every
    /// step must be rejected and λ must grow.
    struct NoImprovement {
        theta: Vec<f32>,
    }

    impl HfProblem for NoImprovement {
        fn num_params(&self) -> usize {
            self.theta.len()
        }
        fn theta(&self) -> Vec<f32> {
            self.theta.clone()
        }
        fn set_theta(&mut self, theta: &[f32]) {
            self.theta = theta.to_vec();
        }
        fn gradient(&mut self) -> (f64, Vec<f32>) {
            (1.0, vec![1.0; self.theta.len()])
        }
        fn sample_curvature(&mut self, _seed: u64, _fraction: f64) {}
        fn gn_product(&mut self, v: &[f32]) -> Vec<f32> {
            v.to_vec()
        }
        fn heldout_eval(&mut self, theta: &[f32]) -> HeldoutEval {
            // Strictly worse for any nonzero step.
            let step: f64 = theta.iter().map(|&t| (t as f64).abs()).sum();
            HeldoutEval {
                loss: 1.0 + step,
                accuracy: 0.0,
                frames: 1,
            }
        }
        fn train_frames(&self) -> u64 {
            1
        }
    }

    #[test]
    fn rejection_boosts_lambda_and_keeps_theta() {
        let mut problem = NoImprovement {
            theta: vec![0.0; 5],
        };
        let mut cfg = HfConfig::small_task();
        cfg.max_iters = 4;
        let mut opt = HfOptimizer::new(cfg);
        let lambda0 = opt.lambda();
        let stats = opt.train(&mut problem);
        assert!(stats.iter().all(|s| !s.accepted));
        assert!(stats.iter().all(|s| s.alpha == 0.0));
        assert!(opt.lambda() > lambda0 * 2.0, "λ grew to {}", opt.lambda());
        assert!(problem.theta.iter().all(|&t| t == 0.0), "θ moved");
        // heldout_after equals heldout_before on rejection.
        for s in &stats {
            assert_eq!(s.heldout_after, s.heldout_before);
        }
    }

    #[test]
    fn early_stop_on_target() {
        let mut problem = Quadratic {
            theta: vec![1.0; 4],
            target: vec![0.0; 4],
        };
        let mut cfg = HfConfig::small_task();
        cfg.max_iters = 50;
        cfg.target_heldout_loss = Some(1e-4);
        let mut opt = HfOptimizer::new(cfg);
        let stats = opt.train(&mut problem);
        assert!(stats.len() < 50, "ran {} iterations", stats.len());
        assert!(stats.last().unwrap().heldout_after <= 1e-4);
    }

    #[test]
    fn recorder_captures_iteration_telemetry() {
        use pdnn_obs::InMemoryRecorder;
        let mut problem = Quadratic {
            theta: vec![0.5; 6],
            target: vec![0.0; 6],
        };
        let recorder = Arc::new(InMemoryRecorder::new());
        let mut cfg = HfConfig::small_task();
        cfg.max_iters = 2;
        let mut opt = HfOptimizer::with_recorder(cfg, recorder.clone());
        let stats = opt.train(&mut problem);
        let t = recorder.take();
        assert_eq!(t.counter("hf_iterations"), stats.len() as u64);
        let total_cg: usize = stats.iter().map(|s| s.cg_iters).sum();
        assert_eq!(t.counter("cg_iters"), total_cg as u64);
        assert!(t.gauge("lambda").is_some());
        let names: Vec<&str> = t.spans.iter().map(|s| s.name()).collect();
        for expected in ["hf_iteration", "gradient", "cg_minimize", "backtracking"] {
            assert!(names.contains(&expected), "{names:?}");
        }
        let events: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.name == "hf_iteration")
            .collect();
        assert_eq!(events.len(), stats.len());
        assert_eq!(
            events[0].get("iter").and_then(pdnn_obs::Value::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let mut problem = Quadratic {
            theta: vec![0.5; 6],
            target: vec![0.0; 6],
        };
        let mut opt = HfOptimizer::new(HfConfig::small_task());
        let s = opt.step(&mut problem, 0);
        assert_eq!(s.iter, 0);
        assert!(s.grad_norm > 0.0);
        assert!(s.cg_iters >= 1);
        assert!(s.heldout_evals >= 2);
        if s.accepted {
            assert!(s.chosen_iter >= 1);
            assert!(s.rho.is_finite());
        }
    }
}
