//! Optimizer configuration.

use crate::cg::CgConfig;
use crate::damping::LambdaRule;
use crate::line_search::ArmijoConfig;
use crate::stopping::StopRule;
use pdnn_util::Error;

/// CG preconditioning policy.
///
/// The paper's implementation "currently does not use a
/// preconditioner"; [`Preconditioner::EmpiricalFisher`] implements the
/// Martens-style diagonal it cites as future work:
/// `M = (diag(Σ ∇L_f²) + λ)^ξ`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Preconditioner {
    /// Plain CG (the paper's configuration).
    None,
    /// Martens empirical-Fisher diagonal with the given exponent ξ
    /// (0.75 in Martens 2010).
    EmpiricalFisher {
        /// Exponent ξ applied to the damped diagonal.
        exponent: f64,
    },
}

/// Hessian-free training configuration (Algorithm 1 knobs).
#[derive(Clone, Copy, Debug)]
pub struct HfConfig {
    /// Outer HF iterations ("20 to 40 iterations through the entire
    /// data set" in the paper's experience).
    pub max_iters: usize,
    /// Inner CG solve configuration.
    pub cg: CgConfig,
    /// Initial damping λ0.
    pub lambda0: f64,
    /// Which λ adaptation rule to use (Martens vs paper-literal).
    pub lambda_rule: LambdaRule,
    /// Momentum β on the CG warm start `d_0 ← β d_N` (paper: β < 1).
    pub momentum: f64,
    /// Armijo line-search parameters.
    pub armijo: ArmijoConfig,
    /// Fraction of training utterances resampled for each CG call's
    /// curvature products ("about 1% to 3%" in the paper; small tasks
    /// should use much larger fractions).
    pub curvature_fraction: f64,
    /// Base seed for curvature resampling (per-iteration seeds derive
    /// from it, so runs are reproducible).
    pub seed: u64,
    /// Stop early when held-out loss falls below this value.
    pub target_heldout_loss: Option<f64>,
    /// CG preconditioning policy.
    pub preconditioner: Preconditioner,
    /// Convergence criteria beyond the iteration cap (patience,
    /// relative-improvement threshold). `target_heldout_loss` above is
    /// folded in for backward compatibility.
    pub stop: StopRule,
    /// L2 weight decay coefficient applied to the training objective
    /// (`loss += l2/2·‖θ‖²`); the exact `l2·I` term is added to the
    /// curvature, so CG sees the true Hessian of the penalty. Held-out
    /// evaluations report the unpenalized loss.
    pub l2: f64,
}

impl Default for HfConfig {
    fn default() -> Self {
        HfConfig {
            max_iters: 30,
            cg: CgConfig::default(),
            lambda0: 1.0,
            lambda_rule: LambdaRule::Martens,
            momentum: 0.95,
            armijo: ArmijoConfig::default(),
            curvature_fraction: 0.02,
            seed: 0xD1CE,
            target_heldout_loss: None,
            stop: StopRule::default(),
            preconditioner: Preconditioner::None,
            l2: 0.0,
        }
    }
}

impl HfConfig {
    /// A configuration suited to the small synthetic tasks used in
    /// tests and examples: generous curvature fraction, short CG.
    pub fn small_task() -> Self {
        HfConfig {
            max_iters: 15,
            cg: CgConfig {
                max_iters: 60,
                min_iters: 5,
                epsilon: 5e-4,
                store_gamma: 1.3,
            },
            lambda0: 0.1,
            curvature_fraction: 0.5,
            ..Default::default()
        }
    }

    /// Start building a configuration from the defaults.
    pub fn builder() -> HfConfigBuilder {
        HfConfigBuilder::new(HfConfig::default())
    }

    /// Turn an existing configuration (e.g. [`HfConfig::small_task`])
    /// into a builder for further adjustment.
    pub fn into_builder(self) -> HfConfigBuilder {
        HfConfigBuilder::new(self)
    }

    /// Validate invariants, returning a composable error.
    pub fn try_validate(&self) -> Result<(), Error> {
        let fail = |m: &str| Err(Error::Config(m.to_string()));
        if let Preconditioner::EmpiricalFisher { exponent } = self.preconditioner {
            if !(exponent > 0.0 && exponent <= 1.0) {
                return fail("preconditioner exponent must be in (0, 1]");
            }
        }
        if self.max_iters < 1 {
            return fail("max_iters must be >= 1");
        }
        if !(self.curvature_fraction > 0.0 && self.curvature_fraction <= 1.0) {
            return fail("curvature_fraction must be in (0, 1]");
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return fail("momentum must be in [0, 1)");
        }
        if self.lambda0 <= 0.0 {
            return fail("lambda0 must be positive");
        }
        if self.l2 < 0.0 {
            return fail("l2 must be non-negative");
        }
        Ok(())
    }

    /// Validate invariants; called by the optimizer at start.
    ///
    /// # Panics
    /// Panics with the violated invariant's message; use
    /// [`HfConfig::try_validate`] (or the builder) for a `Result`.
    pub fn validate(&self) {
        if let Err(Error::Config(m)) = self.try_validate() {
            // pdnn-lint: allow(l3-no-unwrap): validate() is the documented panicking variant of try_validate()
            panic!("{m}");
        }
    }
}

/// Builder for [`HfConfig`] with validation at [`build`](Self::build).
///
/// ```
/// use pdnn_core::config::HfConfig;
///
/// let config = HfConfig::builder()
///     .cg_iters(40)
///     .sample_fraction(0.1)
///     .max_iters(10)
///     .build()
///     .unwrap();
/// assert_eq!(config.cg.max_iters, 40);
/// assert!(HfConfig::builder().momentum(1.5).build().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct HfConfigBuilder {
    config: HfConfig,
}

impl HfConfigBuilder {
    fn new(config: HfConfig) -> Self {
        HfConfigBuilder { config }
    }

    /// Cap on inner CG iterations (`cg.max_iters`).
    pub fn cg_iters(mut self, iters: usize) -> Self {
        self.config.cg.max_iters = iters;
        self
    }

    /// Full inner CG configuration.
    pub fn cg(mut self, cg: CgConfig) -> Self {
        self.config.cg = cg;
        self
    }

    /// Fraction of training data resampled for curvature products
    /// (`curvature_fraction`).
    pub fn sample_fraction(mut self, fraction: f64) -> Self {
        self.config.curvature_fraction = fraction;
        self
    }

    /// Outer HF iteration cap.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.config.max_iters = iters;
        self
    }

    /// Initial damping λ0.
    pub fn lambda0(mut self, lambda0: f64) -> Self {
        self.config.lambda0 = lambda0;
        self
    }

    /// λ adaptation rule.
    pub fn lambda_rule(mut self, rule: LambdaRule) -> Self {
        self.config.lambda_rule = rule;
        self
    }

    /// Momentum β on the CG warm start.
    pub fn momentum(mut self, momentum: f64) -> Self {
        self.config.momentum = momentum;
        self
    }

    /// Armijo line-search parameters.
    pub fn armijo(mut self, armijo: ArmijoConfig) -> Self {
        self.config.armijo = armijo;
        self
    }

    /// Base seed for curvature resampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Early-stop target on held-out loss.
    pub fn target_heldout_loss(mut self, target: Option<f64>) -> Self {
        self.config.target_heldout_loss = target;
        self
    }

    /// CG preconditioning policy.
    pub fn preconditioner(mut self, preconditioner: Preconditioner) -> Self {
        self.config.preconditioner = preconditioner;
        self
    }

    /// Convergence criteria beyond the iteration cap.
    pub fn stop(mut self, stop: StopRule) -> Self {
        self.config.stop = stop;
        self
    }

    /// L2 weight decay coefficient.
    pub fn l2(mut self, l2: f64) -> Self {
        self.config.l2 = l2;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<HfConfig, Error> {
        self.config.try_validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        HfConfig::default().validate();
        HfConfig::small_task().validate();
    }

    #[test]
    #[should_panic(expected = "curvature_fraction")]
    fn bad_fraction_rejected() {
        let mut c = HfConfig::default();
        c.curvature_fraction = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn bad_momentum_rejected() {
        let mut c = HfConfig::default();
        c.momentum = 1.0;
        c.validate();
    }

    #[test]
    fn builder_sets_fields_and_validates() {
        let c = HfConfig::builder()
            .cg_iters(40)
            .sample_fraction(0.1)
            .max_iters(7)
            .lambda0(0.5)
            .momentum(0.9)
            .seed(42)
            .l2(1e-4)
            .build()
            .unwrap();
        assert_eq!(c.cg.max_iters, 40);
        assert!((c.curvature_fraction - 0.1).abs() < 1e-12);
        assert_eq!(c.max_iters, 7);
        assert_eq!(c.seed, 42);
        let err = HfConfig::builder()
            .sample_fraction(0.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("curvature_fraction"), "{err}");
        let err = HfConfig::builder().momentum(1.0).build().unwrap_err();
        assert!(err.to_string().contains("momentum"), "{err}");
    }

    #[test]
    fn into_builder_starts_from_existing_config() {
        let c = HfConfig::small_task()
            .into_builder()
            .max_iters(5)
            .build()
            .unwrap();
        assert_eq!(c.max_iters, 5);
        // small_task's other knobs survive the round trip.
        assert_eq!(c.cg.max_iters, 60);
        assert!((c.curvature_fraction - 0.5).abs() < 1e-12);
    }
}
