//! Optimizer configuration.

use crate::cg::CgConfig;
use crate::damping::LambdaRule;
use crate::line_search::ArmijoConfig;
use crate::stopping::StopRule;

/// CG preconditioning policy.
///
/// The paper's implementation "currently does not use a
/// preconditioner"; [`Preconditioner::EmpiricalFisher`] implements the
/// Martens-style diagonal it cites as future work:
/// `M = (diag(Σ ∇L_f²) + λ)^ξ`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Preconditioner {
    /// Plain CG (the paper's configuration).
    None,
    /// Martens empirical-Fisher diagonal with the given exponent ξ
    /// (0.75 in Martens 2010).
    EmpiricalFisher {
        /// Exponent ξ applied to the damped diagonal.
        exponent: f64,
    },
}

/// Hessian-free training configuration (Algorithm 1 knobs).
#[derive(Clone, Copy, Debug)]
pub struct HfConfig {
    /// Outer HF iterations ("20 to 40 iterations through the entire
    /// data set" in the paper's experience).
    pub max_iters: usize,
    /// Inner CG solve configuration.
    pub cg: CgConfig,
    /// Initial damping λ0.
    pub lambda0: f64,
    /// Which λ adaptation rule to use (Martens vs paper-literal).
    pub lambda_rule: LambdaRule,
    /// Momentum β on the CG warm start `d_0 ← β d_N` (paper: β < 1).
    pub momentum: f64,
    /// Armijo line-search parameters.
    pub armijo: ArmijoConfig,
    /// Fraction of training utterances resampled for each CG call's
    /// curvature products ("about 1% to 3%" in the paper; small tasks
    /// should use much larger fractions).
    pub curvature_fraction: f64,
    /// Base seed for curvature resampling (per-iteration seeds derive
    /// from it, so runs are reproducible).
    pub seed: u64,
    /// Stop early when held-out loss falls below this value.
    pub target_heldout_loss: Option<f64>,
    /// CG preconditioning policy.
    pub preconditioner: Preconditioner,
    /// Convergence criteria beyond the iteration cap (patience,
    /// relative-improvement threshold). `target_heldout_loss` above is
    /// folded in for backward compatibility.
    pub stop: StopRule,
    /// L2 weight decay coefficient applied to the training objective
    /// (`loss += l2/2·‖θ‖²`); the exact `l2·I` term is added to the
    /// curvature, so CG sees the true Hessian of the penalty. Held-out
    /// evaluations report the unpenalized loss.
    pub l2: f64,
}

impl Default for HfConfig {
    fn default() -> Self {
        HfConfig {
            max_iters: 30,
            cg: CgConfig::default(),
            lambda0: 1.0,
            lambda_rule: LambdaRule::Martens,
            momentum: 0.95,
            armijo: ArmijoConfig::default(),
            curvature_fraction: 0.02,
            seed: 0xD1CE,
            target_heldout_loss: None,
            stop: StopRule::default(),
            preconditioner: Preconditioner::None,
            l2: 0.0,
        }
    }
}

impl HfConfig {
    /// A configuration suited to the small synthetic tasks used in
    /// tests and examples: generous curvature fraction, short CG.
    pub fn small_task() -> Self {
        HfConfig {
            max_iters: 15,
            cg: CgConfig {
                max_iters: 60,
                min_iters: 5,
                epsilon: 5e-4,
                store_gamma: 1.3,
            },
            lambda0: 0.1,
            curvature_fraction: 0.5,
            ..Default::default()
        }
    }

    /// Validate invariants; called by the optimizer at start.
    pub fn validate(&self) {
        if let Preconditioner::EmpiricalFisher { exponent } = self.preconditioner {
            assert!(
                exponent > 0.0 && exponent <= 1.0,
                "preconditioner exponent must be in (0, 1]"
            );
        }
        assert!(self.max_iters >= 1, "max_iters must be >= 1");
        assert!(
            self.curvature_fraction > 0.0 && self.curvature_fraction <= 1.0,
            "curvature_fraction must be in (0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&self.momentum),
            "momentum must be in [0, 1)"
        );
        assert!(self.lambda0 > 0.0, "lambda0 must be positive");
        assert!(self.l2 >= 0.0, "l2 must be non-negative");
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        HfConfig::default().validate();
        HfConfig::small_task().validate();
    }

    #[test]
    #[should_panic(expected = "curvature_fraction")]
    fn bad_fraction_rejected() {
        let mut c = HfConfig::default();
        c.curvature_fraction = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn bad_momentum_rejected() {
        let mut c = HfConfig::default();
        c.momentum = 1.0;
        c.validate();
    }
}
