//! Truncated conjugate gradient for the damped quadratic model.
//!
//! `CG-Minimize(q_θ(d), d_0)` from the paper's Algorithm 1: minimize
//!
//! ```text
//! q(d) = g·d + ½ d·(G + λI)d
//! ```
//!
//! accessing the curvature only through matrix–vector products. Two
//! Martens (2010) specifics are implemented faithfully:
//!
//! * **Relative-progress truncation** — stop at iteration `i` once
//!   `i > k` and `(q_i − q_{i−k}) / q_i < k·ε` with
//!   `k = max(10, 0.1·i)`: CG is cut off when per-iteration progress
//!   on the quadratic stalls, not at a fixed count.
//! * **Iterate series** — CG visits a sequence of partial solutions
//!   `{d_1, d_2, …, d_N}`; a geometrically thinned subset (indices
//!   `⌈γ^j⌉`) is returned for the caller's backtracking pass, which
//!   re-evaluates them on held-out data and may *reject* later
//!   iterates (CG over-fits the quadratic model on a curvature
//!   minibatch).
//!
//! The quadratic value is tracked with the cheap identity
//! `q(d) = ½ d·(r + g)` where `r = (G+λI)d + g` is the residual.

use pdnn_obs::{Recorder, RecorderExt, SpanKind};
use pdnn_tensor::blas1;
use pdnn_util::float::exactly_zero;

/// Configuration for one CG solve.
#[derive(Clone, Copy, Debug)]
pub struct CgConfig {
    /// Hard cap on iterations (the paper's runs use a few hundred).
    pub max_iters: usize,
    /// Minimum iterations before the truncation test applies.
    pub min_iters: usize,
    /// Relative-progress tolerance ε of the Martens test.
    pub epsilon: f64,
    /// Geometric thinning factor for the stored iterate series.
    pub store_gamma: f64,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            max_iters: 250,
            min_iters: 10,
            epsilon: 5e-4,
            store_gamma: 1.3,
        }
    }
}

/// One stored partial solution.
#[derive(Clone, Debug)]
pub struct CgIterate {
    /// CG iteration index (1-based) at which this was captured.
    pub iter: usize,
    /// The partial solution `d_i`.
    pub d: Vec<f32>,
    /// Quadratic model value `q(d_i)`.
    pub q: f64,
}

/// Result of a truncated CG solve.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// Thinned iterate series `{d_1, …, d_N}` (always includes the
    /// final iterate as the last element).
    pub iterates: Vec<CgIterate>,
    /// Number of iterations executed.
    pub iters: usize,
    /// Why the solve stopped.
    pub stop: CgStop,
}

impl CgResult {
    /// The final direction `d_N`.
    pub fn final_d(&self) -> &[f32] {
        &self
            .iterates
            .last()
            // pdnn-lint: allow(l3-no-unwrap): cg_minimize_precond always pushes a final iterate before returning
            .expect("CG always stores the final iterate")
            .d
    }

    /// The final quadratic value `q(d_N)`.
    pub fn final_q(&self) -> f64 {
        // pdnn-lint: allow(l3-no-unwrap): same invariant as final_d — iterates is never empty
        self.iterates.last().expect("non-empty").q
    }
}

/// Why CG stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CgStop {
    /// The Martens relative-progress test fired.
    RelativeProgress,
    /// The iteration cap was hit.
    MaxIters,
    /// The residual became (numerically) zero — exact solve.
    Converged,
    /// Negative curvature was encountered (`p·Ap ≤ 0`); with λ-damped
    /// Gauss–Newton this indicates numerical trouble, and CG returns
    /// the best iterate so far.
    NegativeCurvature,
}

/// Minimize `q(d) = g·d + ½ d·A d` starting from `d0`.
///
/// `apply_a` must compute the (damped) curvature product `A v`.
pub fn cg_minimize(
    g: &[f32],
    d0: &[f32],
    apply_a: impl FnMut(&[f32]) -> Vec<f32>,
    config: &CgConfig,
) -> CgResult {
    cg_minimize_precond(g, d0, apply_a, None, config)
}

/// [`cg_minimize_precond`] instrumented with a `pdnn_obs` recorder.
///
/// Wraps the solve in a `"cg_minimize"` span, bumps the `"cg_iters"`
/// counter by the iterations executed and `"cg_curvature_products"`
/// by the exact number of `apply_a` evaluations, and publishes the
/// final quadratic value as the `"cg_q_final"` gauge. Numerically
/// identical to the uninstrumented solve.
pub fn cg_minimize_recorded(
    g: &[f32],
    d0: &[f32],
    mut apply_a: impl FnMut(&[f32]) -> Vec<f32>,
    precond: Option<&[f32]>,
    config: &CgConfig,
    recorder: &dyn Recorder,
) -> CgResult {
    let _span = recorder.span("cg_minimize", SpanKind::DenseCompute);
    let mut products = 0u64;
    let result = cg_minimize_precond(
        g,
        d0,
        |v| {
            products += 1;
            apply_a(v)
        },
        precond,
        config,
    );
    recorder.counter_add("cg_iters", result.iters as u64);
    recorder.counter_add("cg_curvature_products", products);
    recorder.gauge_set("cg_q_final", result.final_q());
    result
}

/// Preconditioned variant of [`cg_minimize`].
///
/// `precond`, when given, is the diagonal of the preconditioner `M`;
/// CG then solves the implicitly transformed system (standard PCG
/// with `z = M⁻¹ r`). The paper's implementation "currently does not
/// use a preconditioner" and cites Chapelle/Kingsbury's as future
/// work — this is that extension, with Martens' empirical-Fisher
/// diagonal supplied by the optimizer (see `HfConfig::preconditioner`
/// and the `preconditioner` ablation bench).
///
/// # Panics
/// If lengths mismatch or any preconditioner entry is not strictly
/// positive (M must be SPD).
// pdnn-lint: allow(l5-phase-span): pure math kernel; the phase entry point is cg_minimize_recorded, which wraps this in a "cg_minimize" span
pub fn cg_minimize_precond(
    g: &[f32],
    d0: &[f32],
    mut apply_a: impl FnMut(&[f32]) -> Vec<f32>,
    precond: Option<&[f32]>,
    config: &CgConfig,
) -> CgResult {
    let n = g.len();
    assert_eq!(d0.len(), n, "cg: d0 length mismatch");
    assert!(config.max_iters >= 1, "cg: max_iters must be >= 1");
    assert!(config.store_gamma > 1.0, "cg: store_gamma must exceed 1");
    if let Some(m) = precond {
        assert_eq!(m.len(), n, "cg: preconditioner length mismatch");
        assert!(
            m.iter().all(|&v| v > 0.0 && v.is_finite()),
            "cg: preconditioner must be strictly positive"
        );
    }
    let apply_minv = |r: &[f32]| -> Vec<f32> {
        match precond {
            Some(m) => r.iter().zip(m.iter()).map(|(&ri, &mi)| ri / mi).collect(),
            None => r.to_vec(),
        }
    };

    let mut d = d0.to_vec();
    // r = A d + g
    let mut r = apply_a(&d);
    blas1::add(g, &mut r);
    // z = M⁻¹ r; p = -z
    let z = apply_minv(&r);
    let mut p: Vec<f32> = z.iter().map(|&v| -v).collect();
    let mut rr = blas1::dot(&r, &z);

    let q_of = |d: &[f32], r: &[f32]| -> f64 {
        // q(d) = ½ d·(r + g)
        let mut s = 0.0f64;
        for i in 0..d.len() {
            s += d[i] as f64 * (r[i] as f64 + g[i] as f64);
        }
        0.5 * s
    };

    let mut q_hist: Vec<f64> = vec![q_of(&d, &r)];
    let mut iterates: Vec<CgIterate> = Vec::new();
    let mut next_store = 1usize;
    let mut store_exp = 0u32;
    let mut stop = CgStop::MaxIters;
    let mut iters = 0usize;

    for i in 1..=config.max_iters {
        let ap = apply_a(&p);
        let pap = blas1::dot(&p, &ap);
        if pap <= 0.0 {
            stop = if exactly_zero(rr) {
                CgStop::Converged
            } else {
                CgStop::NegativeCurvature
            };
            break;
        }
        let alpha = rr / pap;
        blas1::axpy(alpha as f32, &p, &mut d);
        blas1::axpy(alpha as f32, &ap, &mut r);
        let z = apply_minv(&r);
        let rr_new = blas1::dot(&r, &z);
        let beta = rr_new / rr;
        rr = rr_new;
        for j in 0..n {
            p[j] = -z[j] + beta as f32 * p[j];
        }

        iters = i;
        let q = q_of(&d, &r);
        q_hist.push(q);

        if i == next_store {
            iterates.push(CgIterate {
                iter: i,
                d: d.clone(),
                q,
            });
            store_exp += 1;
            next_store = next_store.max(config.store_gamma.powi(store_exp as i32).ceil() as usize);
            if next_store <= i {
                next_store = i + 1;
            }
        }

        if rr < 1e-24 {
            stop = CgStop::Converged;
            break;
        }

        // Martens relative-progress test.
        let k = (10.0f64).max(0.1 * i as f64).floor() as usize;
        if i >= config.min_iters.max(k) && q < 0.0 {
            let q_prev = q_hist[i - k];
            if (q - q_prev) / q < k as f64 * config.epsilon {
                stop = CgStop::RelativeProgress;
                break;
            }
        }
    }

    // Always include the final iterate.
    // pdnn-lint: allow(l3-no-unwrap): q_hist is seeded with q(0) before the loop
    let last_q = *q_hist.last().unwrap();
    let need_final = iterates.last().map(|it| it.iter != iters).unwrap_or(true);
    if need_final {
        iterates.push(CgIterate {
            iter: iters.max(1),
            d,
            q: last_q,
        });
    }

    CgResult {
        iterates,
        iters: iters.max(1),
        stop,
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;

    /// Dense SPD multiply used as the oracle.
    fn dense_apply(a: &[Vec<f64>]) -> impl FnMut(&[f32]) -> Vec<f32> + '_ {
        move |v: &[f32]| {
            a.iter()
                .map(|row| {
                    row.iter()
                        .zip(v.iter())
                        .map(|(&aij, &vj)| aij * vj as f64)
                        .sum::<f64>() as f32
                })
                .collect()
        }
    }

    fn spd_matrix(n: usize, seed: u64) -> Vec<Vec<f64>> {
        // A = B^T B + n·I: comfortably SPD.
        let mut rng = pdnn_util::Prng::new(seed);
        let b: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.normal()).collect())
            .collect();
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    a[i][j] += b[k][i] * b[k][j];
                }
            }
            a[i][i] += n as f64;
        }
        a
    }

    /// Gaussian elimination solve for the reference solution.
    fn dense_solve(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        let n = b.len();
        let mut m: Vec<Vec<f64>> = a
            .iter()
            .zip(b.iter())
            .map(|(row, &bi)| {
                let mut r = row.clone();
                r.push(bi);
                r
            })
            .collect();
        for col in 0..n {
            let piv = (col..n)
                .max_by(|&i, &j| m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap())
                .unwrap();
            m.swap(col, piv);
            let diag = m[col][col];
            for row in 0..n {
                if row != col {
                    let f = m[row][col] / diag;
                    for k in col..=n {
                        m[row][k] -= f * m[col][k];
                    }
                }
            }
        }
        (0..n).map(|i| m[i][n] / m[i][i]).collect()
    }

    #[test]
    fn solves_spd_system() {
        let n = 12;
        let a = spd_matrix(n, 1);
        let g: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let d0 = vec![0.0f32; n];
        let cfg = CgConfig {
            max_iters: 200,
            min_iters: 1,
            epsilon: 1e-12,
            store_gamma: 1.3,
        };
        let result = cg_minimize(&g, &d0, dense_apply(&a), &cfg);
        // Exact answer: A d* = -g.
        let neg_g: Vec<f64> = g.iter().map(|&v| -v as f64).collect();
        let d_star = dense_solve(&a, &neg_g);
        for (got, want) in result.final_d().iter().zip(d_star.iter()) {
            assert!((*got as f64 - want).abs() < 1e-4, "{got} vs {want}");
        }
        assert!(matches!(
            result.stop,
            CgStop::Converged | CgStop::RelativeProgress | CgStop::MaxIters
        ));
    }

    #[test]
    fn q_decreases_monotonically_along_stored_iterates() {
        let n = 20;
        let a = spd_matrix(n, 2);
        let g: Vec<f32> = (0..n).map(|i| (i as f32 * 0.7).cos()).collect();
        let result = cg_minimize(&g, &vec![0.0; n], dense_apply(&a), &CgConfig::default());
        for w in result.iterates.windows(2) {
            // Exact CG decreases q monotonically; f32 arithmetic and
            // the incrementally updated residual allow small wobble.
            assert!(
                w[1].q <= w[0].q + 1e-5 * (1.0 + w[0].q.abs()),
                "q increased: {} -> {}",
                w[0].q,
                w[1].q
            );
        }
        // From d0 = 0, q(d) must be negative (any progress beats 0).
        assert!(result.final_q() < 0.0);
    }

    #[test]
    fn warm_start_changes_trajectory_but_still_descends() {
        let n = 10;
        let a = spd_matrix(n, 3);
        let g: Vec<f32> = vec![1.0; n];
        let cold = cg_minimize(&g, &vec![0.0; n], dense_apply(&a), &CgConfig::default());
        let warm_start: Vec<f32> = cold.final_d().iter().map(|&v| 0.5 * v).collect();
        let warm = cg_minimize(&g, &warm_start, dense_apply(&a), &CgConfig::default());
        // Warm-started CG must do at least as well at the end.
        assert!(warm.final_q() <= cold.final_q() + 1e-8);
    }

    #[test]
    fn truncation_fires_before_cap_on_easy_problems() {
        // Identity curvature: CG converges in one step; the relative
        // progress (or convergence) test must stop it long before 200.
        let n = 50;
        let g: Vec<f32> = (0..n).map(|i| (i as f32 + 1.0) * 0.01).collect();
        let result = cg_minimize(&g, &vec![0.0; n], |v| v.to_vec(), &CgConfig::default());
        assert!(result.iters <= 3, "iters = {}", result.iters);
        assert!(matches!(
            result.stop,
            CgStop::Converged | CgStop::RelativeProgress
        ));
    }

    #[test]
    fn iterate_series_is_thinned_and_ends_with_final() {
        let n = 64;
        let a = spd_matrix(n, 4);
        let g: Vec<f32> = (0..n).map(|i| ((i * i) as f32).sin()).collect();
        let cfg = CgConfig {
            max_iters: 60,
            min_iters: 60, // force the cap so we see many iterates
            epsilon: 0.0,
            store_gamma: 1.3,
        };
        let result = cg_minimize(&g, &vec![0.0; n], dense_apply(&a), &cfg);
        let idx: Vec<usize> = result.iterates.iter().map(|it| it.iter).collect();
        // Strictly increasing and far fewer than 60 entries.
        assert!(idx.windows(2).all(|w| w[0] < w[1]), "{idx:?}");
        assert!(idx.len() < 25, "{} stored", idx.len());
        assert_eq!(*idx.last().unwrap(), result.iters);
        assert_eq!(idx[0], 1, "first iterate d_1 must be stored");
    }

    #[test]
    fn zero_gradient_returns_zero_step() {
        let n = 8;
        let g = vec![0.0f32; n];
        let result = cg_minimize(&g, &vec![0.0; n], |v| v.to_vec(), &CgConfig::default());
        assert!(result.final_d().iter().all(|&v| v == 0.0));
        assert_eq!(result.final_q(), 0.0);
    }

    #[test]
    fn negative_curvature_is_detected() {
        // A = -I: every direction has negative curvature.
        let g = vec![1.0f32; 4];
        let result = cg_minimize(
            &g,
            &[0.0; 4],
            |v| v.iter().map(|&x| -x).collect(),
            &CgConfig::default(),
        );
        assert_eq!(result.stop, CgStop::NegativeCurvature);
    }

    #[test]
    #[should_panic(expected = "d0 length mismatch")]
    fn length_mismatch_panics() {
        cg_minimize(&[1.0], &[1.0, 2.0], |v| v.to_vec(), &CgConfig::default());
    }

    /// A badly conditioned diagonal system: plain CG needs many
    /// iterations; Jacobi preconditioning (the exact inverse here)
    /// converges almost immediately.
    #[test]
    fn preconditioning_cuts_iterations_on_ill_conditioned_systems() {
        let n = 64;
        let diag: Vec<f64> = (0..n)
            .map(|i| 10f64.powf(4.0 * i as f64 / n as f64))
            .collect();
        let apply = |v: &[f32]| -> Vec<f32> {
            v.iter()
                .zip(diag.iter())
                .map(|(&x, &d)| (x as f64 * d) as f32)
                .collect()
        };
        let g: Vec<f32> = (0..n).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.1).collect();
        let cfg = CgConfig {
            max_iters: 200,
            min_iters: 1,
            epsilon: 1e-10,
            store_gamma: 1.3,
        };
        let plain = cg_minimize(&g, &vec![0.0; n], apply, &cfg);
        let m: Vec<f32> = diag.iter().map(|&d| d as f32).collect();
        let pre = cg_minimize_precond(&g, &vec![0.0; n], apply, Some(&m), &cfg);
        assert!(
            pre.iters * 3 < plain.iters,
            "precond {} vs plain {} iterations",
            pre.iters,
            plain.iters
        );
        // Both reach (essentially) the same minimizer.
        let q_gap = (pre.final_q() - plain.final_q()).abs();
        assert!(
            q_gap < 1e-4 * (1.0 + plain.final_q().abs()),
            "q gap {q_gap}"
        );
    }

    #[test]
    fn identity_preconditioner_matches_plain_cg() {
        let n = 20;
        let a = spd_matrix(n, 5);
        let g: Vec<f32> = (0..n).map(|i| (i as f32 * 0.3).sin()).collect();
        let cfg = CgConfig::default();
        let plain = cg_minimize(&g, &vec![0.0; n], dense_apply(&a), &cfg);
        let m = vec![1.0f32; n];
        let pre = cg_minimize_precond(&g, &vec![0.0; n], dense_apply(&a), Some(&m), &cfg);
        assert_eq!(plain.iters, pre.iters);
        assert_eq!(plain.final_d(), pre.final_d());
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn nonpositive_preconditioner_rejected() {
        let g = vec![1.0f32; 4];
        let m = vec![1.0f32, 0.0, 1.0, 1.0];
        cg_minimize_precond(
            &g,
            &[0.0; 4],
            |v| v.to_vec(),
            Some(&m),
            &CgConfig::default(),
        );
    }

    #[test]
    fn recorded_solve_matches_plain_and_emits_telemetry() {
        let n = 16;
        let a = spd_matrix(n, 6);
        let g: Vec<f32> = (0..n).map(|i| (i as f32 * 0.9).cos()).collect();
        let cfg = CgConfig::default();
        let plain = cg_minimize(&g, &vec![0.0; n], dense_apply(&a), &cfg);
        let rec = pdnn_obs::InMemoryRecorder::new();
        let recorded = cg_minimize_recorded(&g, &vec![0.0; n], dense_apply(&a), None, &cfg, &rec);
        assert_eq!(plain.iters, recorded.iters);
        assert_eq!(plain.final_d(), recorded.final_d());
        let data = rec.take();
        assert_eq!(data.counter("cg_iters"), recorded.iters as u64);
        // One product seeds the residual, plus at most one per iter.
        let products = data.counter("cg_curvature_products");
        assert!(products >= 1 && products <= recorded.iters as u64 + 1);
        assert_eq!(data.gauge("cg_q_final"), Some(recorded.final_q()));
        assert_eq!(data.spans.len(), 1);
        assert_eq!(data.spans[0].name(), "cg_minimize");
        assert_eq!(data.spans[0].kind, SpanKind::DenseCompute);
    }
}
