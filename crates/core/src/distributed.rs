//! Distributed Hessian-free training: one master, many workers.
//!
//! Paper Section IV: "worker processes distributed over a compute
//! cluster perform data-parallel computation of gradients and
//! curvature matrix–vector products and the master implements the
//! Hessian-free optimization and coordinates the activity of the
//! workers. All communication between the master and workers is via
//! MPI. The master/worker architecture … is a simple one-layer
//! architecture, with one master and many workers."
//!
//! The master implements [`HfProblem`] over message passing, so the
//! *identical* [`crate::optimizer::HfOptimizer`] drives both serial
//! and distributed training — the parity tests exploit this.
//!
//! Protocol (fan-out is `bcast` from rank 0, fan-in `reduce` to rank
//! 0, matching the paper's move from sockets to MPI collectives in
//! Section V.B):
//!
//! | command      | payload after header           | reply (reduce)                 |
//! |--------------|--------------------------------|--------------------------------|
//! | `SET_THETA`  | f32 θ                          | —                              |
//! | `GRADIENT`   | —                              | f32 Σgrad, f64 [Σloss, frames] |
//! | `SAMPLE`     | header carries seed + fraction | —                              |
//! | `GN_PRODUCT` | f32 v                          | f32 ΣGv, f64 [frames]          |
//! | `HELDOUT`    | f32 trial θ                    | f64 [Σloss, Σcorrect, frames]  |
//! | `FISHER`     | —                              | f32 Σdiag, f64 [frames]        |
//! | `LOAD_DATA`  | u64 extra ids ×2 (p2p)         | —                              |
//! | `SHUTDOWN`   | —                              | —                              |
//!
//! At start-up the master distributes per-worker utterance
//! assignments point-to-point (`load_data` — the paper's Figures 2
//! and 4 show this p2p phase growing with rank count).
//!
//! # Fault tolerance
//!
//! Under [`train_distributed_faulted`] the communicator runs with a
//! [`FaultPlan`]: collectives report a failed worker as
//! [`CommError::RankDead`] instead of hanging. The master then
//! acknowledges the death, re-partitions the dead worker's shard onto
//! the survivors (same LPT strategy as start-up, replayed via
//! `LOAD_DATA`), restores θ from the last periodic snapshot, and
//! resumes the Hessian-free iteration from there. Because the sample
//! seeds are a pure function of the iteration index, a replay from
//! iteration *k* recomputes exactly what an undisturbed run over the
//! re-sharded data would have, so recovery is bit-deterministic given
//! the same plan.
//!
//! The masterless modes recover without a standing coordinator: the
//! timed ring/tree hops surface the failure on every survivor, the
//! survivors run a membership-agreement round coordinated by the
//! lowest live rank (`TAG_RECOVER_REPORT` / `TAG_RECOVER_AGREE`),
//! re-stitch the ring/tree over the agreed survivor set, replay the
//! dead rank's shard through the same LPT partitioner, and rewind
//! their replicated optimizers to the last in-memory snapshot — the
//! same bit-deterministic contract as master-mode recovery.

use crate::config::HfConfig;
use crate::optimizer::{HfOptimizer, IterStats};
use crate::problem::{sample_utterances, HeldoutEval, HfProblem, Objective};
use crate::stopping::StopState;
use pdnn_dnn::backprop::backprop_ws;
use pdnn_dnn::gauss_newton::{gn_product_ws, Curvature};
use pdnn_dnn::loss::{cross_entropy, cross_entropy_loss_only, softmax_rows};
use pdnn_dnn::network::{ForwardCache, Network};
use pdnn_dnn::packed::{PackedActivations, PackedWeights};
use pdnn_dnn::sequence::mmi_batch;
use pdnn_mpisim::{
    Comm, CommError, CommEvent, CommTrace, FaultPlan, HbViolation, Payload, RankOutcome, ReduceOp,
    Src, WireCodec,
};
use pdnn_obs::{InMemoryRecorder, Recorder, RecorderExt, SpanKind, Telemetry};
use pdnn_speech::{partition, Corpus, Shard, Strategy};
use pdnn_tensor::gemm::GemmContext;
use pdnn_tensor::{Matrix, Workspace};
use pdnn_util::{Error, PhaseTimer};
use std::sync::Arc;
use std::time::Duration;

const CMD_SHUTDOWN: u64 = 0;
const CMD_SET_THETA: u64 = 1;
const CMD_GRADIENT: u64 = 2;
const CMD_SAMPLE: u64 = 3;
const CMD_GN: u64 = 4;
const CMD_HELDOUT: u64 = 5;
const CMD_FISHER: u64 = 6;
/// Shard-reassignment replay after a worker death (fault recovery).
const CMD_LOAD_DATA: u64 = 7;

/// Tag for the utterance-assignment messages (`load_data`, both the
/// start-up distribution and the recovery replay).
const TAG_LOAD_DATA: u64 = 17;

/// Tag for a survivor's dead-set report to the membership coordinator
/// (masterless recovery).
const TAG_RECOVER_REPORT: u64 = 18;

/// Tag for the coordinator's agreed dead-set broadcast back to the
/// survivors (masterless recovery).
const TAG_RECOVER_AGREE: u64 = 19;

/// How ranks synchronize gradients, curvature products, and weights.
///
/// [`Master`](SyncStrategy::Master) is the paper's one-master
/// architecture (Section IV): rank 0 runs the optimizer and every
/// exchange is a rooted bcast/reduce rendezvousing at the master.
/// [`Ring`](SyncStrategy::Ring) and [`Tree`](SyncStrategy::Tree) are
/// masterless: the world is `workers` peer ranks, each runs a replica
/// of the Hessian-free optimizer in lockstep, and the GRADIENT /
/// GN-product / HELDOUT reductions are symmetric allreduces —
/// bandwidth-optimal ring (reduce-scatter + allgather) or binomial
/// tree — so no phase rendezvouses at rank 0, there are no command
/// headers, no θ broadcasts, and no start-up `load_data` p2p phase.
/// Every decision the replicated optimizers take is a function of
/// bit-identical allreduce results, so all replicas stay bitwise in
/// lockstep (asserted at the end of every run).
///
/// All three strategies support fault plans. `Master` recovers via
/// the coordinator's checkpoint-restart; the masterless modes elect
/// the lowest live rank as a per-failure membership coordinator,
/// re-stitch the ring/tree over the survivors, and rewind their
/// replicated optimizers in lockstep (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncStrategy {
    /// One master, many workers; rooted collectives (the paper's
    /// architecture). Supports fault plans.
    #[default]
    Master,
    /// Masterless replicated optimizer over chunked ring allreduce
    /// (bandwidth-optimal: each rank moves `2(P-1)/P · n` elements,
    /// neighbour-only traffic).
    Ring,
    /// Masterless replicated optimizer over binomial-tree allreduce
    /// (latency-optimal: `2⌈log2 P⌉` rounds).
    Tree,
}

impl SyncStrategy {
    /// Short name for CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            SyncStrategy::Master => "master",
            SyncStrategy::Ring => "ring",
            SyncStrategy::Tree => "tree",
        }
    }

    /// Parse a CLI spelling; the inverse of [`SyncStrategy::name`].
    pub fn parse(s: &str) -> Result<Self, String> {
        [Self::Master, Self::Ring, Self::Tree]
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| format!("unknown sync strategy `{s}` (use master|ring|tree)"))
    }
}

/// Distributed training configuration.
#[derive(Clone, Debug)]
pub struct DistributedConfig {
    /// Number of worker ranks. Under [`SyncStrategy::Master`] the
    /// world size is `workers + 1` (rank 0 is the master); under the
    /// masterless strategies the world size is exactly `workers`.
    pub workers: usize,
    /// How gradients, curvature products, and weights synchronize
    /// across ranks.
    pub sync: SyncStrategy,
    /// Wire-level compression applied to `f32` collective payloads
    /// (gradients, Gv products, θ broadcasts). Orthogonal to `sync`.
    pub wire_codec: WireCodec,
    /// Optimizer configuration.
    pub hf: HfConfig,
    /// Utterance-to-worker assignment strategy (paper Section V.C).
    pub strategy: Strategy,
    /// Fraction of utterances held out for the loss evaluations.
    pub heldout_frac: f64,
    /// rayon threads per rank for the GEMM kernels (the paper's
    /// OpenMP-threads-per-rank).
    pub threads_per_rank: usize,
    /// Snapshot θ every this many completed outer iterations for
    /// fault recovery (`0` keeps only the initial snapshot).
    pub checkpoint_every: usize,
    /// Where to persist snapshots (atomic write-tmp/fsync/rename via
    /// `pdnn_dnn::checkpoint`); recovery then restores θ from disk,
    /// exercising the full checkpoint-restart path. `None` keeps
    /// snapshots in memory only.
    pub checkpoint_path: Option<std::path::PathBuf>,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            workers: 4,
            sync: SyncStrategy::default(),
            wire_codec: WireCodec::None,
            hf: HfConfig::small_task(),
            strategy: Strategy::SortedBalanced,
            heldout_frac: 0.2,
            threads_per_rank: 1,
            checkpoint_every: 0,
            checkpoint_path: None,
        }
    }
}

/// Result of a distributed training run.
///
/// All accounting flows through each rank's `pdnn_obs` recorder (the
/// [`Telemetry`] fields); the [`PhaseTimer`] and [`CommTrace`] fields
/// are derived views kept for convenience and compatibility.
pub struct TrainOutput {
    /// The trained network (reconstructed on the master).
    pub network: Network<f32>,
    /// Per-iteration optimizer statistics.
    pub stats: Vec<IterStats>,
    /// Master communication trace (p2p vs collective split).
    pub master_trace: CommTrace,
    /// Worker communication traces, worker order.
    pub worker_traces: Vec<CommTrace>,
    /// Master compute/coordination phase times (derived from
    /// `master_telemetry` spans).
    pub master_phases: PhaseTimer,
    /// Worker phase times (gradient_loss, worker_curvature_product…),
    /// derived from `worker_telemetries` spans.
    pub worker_phases: Vec<PhaseTimer>,
    /// Full master-rank telemetry: spans, counters, events, comm.
    pub master_telemetry: Telemetry,
    /// Full per-worker telemetry, worker order.
    pub worker_telemetries: Vec<Telemetry>,
    /// Happens-before violations `(rank, violation)` from the
    /// vector-clock tracker. Always empty except under
    /// [`train_distributed_perturbed`], where any entry is a protocol
    /// race.
    pub hb_violations: Vec<(usize, HbViolation)>,
    /// Schedule-perturbation seed the run executed under (`None`
    /// outside [`train_distributed_perturbed`]); also stamped on every
    /// rank's telemetry so JSONL dumps record their schedule.
    pub schedule_seed: Option<u64>,
    /// Ranks the master saw die during the run (fault injection only).
    pub dead_ranks: Vec<usize>,
    /// How many worker failures the master recovered from.
    pub recoveries: usize,
    /// Master-rank comm-event trace (one entry per p2p op outside
    /// collectives, one per collective invocation), in program order.
    /// `pdnn-protomc` replays these through the abstract protocol
    /// automata to check trace conformance.
    pub master_events: Vec<CommEvent>,
    /// Per-worker comm-event traces, worker order.
    pub worker_events: Vec<Vec<CommEvent>>,
}

/// A failure the master observed mid-protocol. The problem stays
/// poisoned (all collectives short-circuit to degraded values) until
/// the training loop takes the fault and decides: recover, or abort.
#[derive(Debug)]
enum TrainFault {
    /// The communication layer failed (dead rank, timeout, …).
    Comm(CommError),
    /// A reduction came back with zero total frames: every worker
    /// contributed an empty batch, so the mean is undefined. The old
    /// `max(1.0)` clamp silently trained on a zero gradient instead.
    ZeroFrames { phase: &'static str },
}

fn fault_error(fault: TrainFault) -> Error {
    match fault {
        TrainFault::Comm(e) => Error::Comm(e.to_string()),
        TrainFault::ZeroFrames { phase } => {
            Error::Train(format!("reduction over zero frames in {phase}"))
        }
    }
}

/// Master-side implementation of [`HfProblem`] over the communicator.
struct MasterProblem<'a> {
    comm: &'a mut Comm,
    rec: Arc<InMemoryRecorder>,
    theta: Vec<f32>,
    train_frames: u64,
    /// Per-worker corpus utterance ids currently assigned (training) —
    /// the recovery ledger for re-sharding a dead worker's data.
    train_assign: Vec<Vec<u64>>,
    /// Per-worker corpus utterance ids currently assigned (held-out).
    held_assign: Vec<Vec<u64>>,
    /// Frame count of every corpus utterance, for LPT re-partition.
    utt_frames: Vec<usize>,
    strategy: Strategy,
    /// First unhandled fault; poisons the problem until taken.
    fault: Option<TrainFault>,
    /// Without a fault plan a communication error is a harness bug:
    /// fail loudly instead of attempting recovery.
    strict: bool,
}

impl MasterProblem<'_> {
    fn command(&mut self, header: Vec<u64>) -> Result<(), CommError> {
        let mut buf = header;
        self.comm.bcast(&mut buf, 0)
    }

    fn poisoned(&self) -> bool {
        self.fault.is_some()
    }

    /// Record a fault and poison the problem. The first fault wins:
    /// later ones are consequences of the degraded values the
    /// short-circuiting methods return.
    fn on_fault(&mut self, fault: TrainFault) {
        match &fault {
            TrainFault::Comm(e) => {
                if self.strict {
                    // pdnn-lint: allow(l3-no-unwrap): without a fault plan a communication error means the simulated world itself is broken; recovery would mask the harness bug
                    panic!("distributed protocol failure: {e}");
                }
                self.rec
                    .event("comm_fault", vec![("error".into(), e.to_string().into())]);
            }
            TrainFault::ZeroFrames { phase } => {
                self.rec
                    .event("zero_frames", vec![("phase".into(), (*phase).into())]);
            }
        }
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    fn take_fault(&mut self) -> Option<TrainFault> {
        self.fault.take()
    }

    fn try_set_theta(&mut self) -> Result<(), TrainFault> {
        let c = self.command(vec![CMD_SET_THETA]);
        let mut buf = self.theta.clone();
        let b = self.comm.bcast(&mut buf, 0);
        c.and(b).map_err(TrainFault::Comm)
    }

    fn try_gradient(&mut self) -> Result<(f64, Vec<f32>), TrainFault> {
        // Issue every collective of the command before inspecting any
        // error (`Result::and` keeps the first), so master and workers
        // never skew even when an op in the middle fails.
        let c = self.command(vec![CMD_GRADIENT]);
        let mut grad = vec![0.0f32; self.theta.len()];
        let r1 = self.comm.reduce(&mut grad, ReduceOp::Sum, 0);
        let mut meta = vec![0.0f64; 2];
        let r2 = self.comm.reduce(&mut meta, ReduceOp::Sum, 0);
        c.and(r1).and(r2).map_err(TrainFault::Comm)?;
        if meta[1] <= 0.0 {
            return Err(TrainFault::ZeroFrames { phase: "gradient" });
        }
        let frames = meta[1];
        let inv = (1.0 / frames) as f32;
        pdnn_tensor::blas1::scal(inv, &mut grad);
        Ok((meta[0] / frames, grad))
    }

    fn try_sample(&mut self, seed: u64, fraction: f64) -> Result<(), TrainFault> {
        self.command(vec![CMD_SAMPLE, seed, fraction.to_bits()])
            .map_err(TrainFault::Comm)
    }

    fn try_gn_product(&mut self, v: &[f32]) -> Result<Vec<f32>, TrainFault> {
        let c = self.command(vec![CMD_GN]);
        let mut buf = v.to_vec();
        let b = self.comm.bcast(&mut buf, 0);
        let mut gv = vec![0.0f32; v.len()];
        let r1 = self.comm.reduce(&mut gv, ReduceOp::Sum, 0);
        let mut meta = vec![0.0f64; 1];
        let r2 = self.comm.reduce(&mut meta, ReduceOp::Sum, 0);
        c.and(b).and(r1).and(r2).map_err(TrainFault::Comm)?;
        if meta[0] <= 0.0 {
            return Err(TrainFault::ZeroFrames {
                phase: "gn_product",
            });
        }
        let inv = (1.0 / meta[0]) as f32;
        pdnn_tensor::blas1::scal(inv, &mut gv);
        Ok(gv)
    }

    fn try_fisher(&mut self) -> Result<Vec<f32>, TrainFault> {
        let c = self.command(vec![CMD_FISHER]);
        let mut diag = vec![0.0f32; self.theta.len()];
        let r1 = self.comm.reduce(&mut diag, ReduceOp::Sum, 0);
        let mut meta = vec![0.0f64; 1];
        let r2 = self.comm.reduce(&mut meta, ReduceOp::Sum, 0);
        c.and(r1).and(r2).map_err(TrainFault::Comm)?;
        if meta[0] <= 0.0 {
            return Err(TrainFault::ZeroFrames { phase: "fisher" });
        }
        pdnn_tensor::blas1::scal((1.0 / meta[0]) as f32, &mut diag);
        Ok(diag)
    }

    fn try_heldout(&mut self, theta: &[f32]) -> Result<HeldoutEval, TrainFault> {
        let c = self.command(vec![CMD_HELDOUT]);
        let mut buf = theta.to_vec();
        let b = self.comm.bcast(&mut buf, 0);
        let mut meta = vec![0.0f64; 3];
        let r = self.comm.reduce(&mut meta, ReduceOp::Sum, 0);
        c.and(b).and(r).map_err(TrainFault::Comm)?;
        if meta[2] <= 0.0 {
            return Err(TrainFault::ZeroFrames { phase: "heldout" });
        }
        let frames = meta[2];
        Ok(HeldoutEval {
            loss: meta[0] / frames,
            accuracy: meta[1] / frames,
            frames: meta[2] as u64,
        })
    }

    /// Re-partition a dead worker's utterances onto the survivors
    /// (same LPT strategy as start-up) and replay the assignments via
    /// `LOAD_DATA`. The caller has already acknowledged the death, so
    /// the command broadcast reaches exactly the live workers.
    fn try_redistribute(&mut self, dead: usize) -> Result<(), TrainFault> {
        let orphan_train = std::mem::take(&mut self.train_assign[dead]);
        let orphan_held = std::mem::take(&mut self.held_assign[dead]);
        let live: Vec<usize> = (0..self.train_assign.len())
            .filter(|&w| !self.comm.is_dead(w + 1))
            .collect();
        let t_lens: Vec<usize> = orphan_train
            .iter()
            .map(|&id| self.utt_frames[id as usize])
            .collect();
        let t_parts = partition(&t_lens, live.len(), self.strategy);
        let h_lens: Vec<usize> = orphan_held
            .iter()
            .map(|&id| self.utt_frames[id as usize])
            .collect();
        let h_parts = partition(&h_lens, live.len(), self.strategy);
        self.command(vec![CMD_LOAD_DATA])
            .map_err(TrainFault::Comm)?;
        for (i, &w) in live.iter().enumerate() {
            let t: Vec<u64> = t_parts[i].iter().map(|&p| orphan_train[p]).collect();
            let h: Vec<u64> = h_parts[i].iter().map(|&p| orphan_held[p]).collect();
            let s1 = self
                .comm
                .send(w + 1, TAG_LOAD_DATA, Payload::U64(t.clone()));
            let s2 = self
                .comm
                .send(w + 1, TAG_LOAD_DATA, Payload::U64(h.clone()));
            s1.and(s2).map_err(TrainFault::Comm)?;
            self.train_assign[w].extend(t);
            self.held_assign[w].extend(h);
        }
        Ok(())
    }
}

impl HfProblem for MasterProblem<'_> {
    fn num_params(&self) -> usize {
        self.theta.len()
    }

    fn theta(&self) -> Vec<f32> {
        self.theta.clone()
    }

    fn set_theta(&mut self, theta: &[f32]) {
        let rec = self.rec.clone();
        let _span = rec.span("sync_weights_master", SpanKind::CommCollective);
        self.theta = theta.to_vec();
        if self.poisoned() {
            return;
        }
        if let Err(f) = self.try_set_theta() {
            self.on_fault(f);
        }
    }

    fn gradient(&mut self) -> (f64, Vec<f32>) {
        let rec = self.rec.clone();
        let _span = rec.span("gradient_reduce", SpanKind::CommCollective);
        if self.poisoned() {
            return (f64::NAN, vec![0.0f32; self.theta.len()]);
        }
        match self.try_gradient() {
            Ok(out) => out,
            Err(f) => {
                self.on_fault(f);
                (f64::NAN, vec![0.0f32; self.theta.len()])
            }
        }
    }

    fn sample_curvature(&mut self, seed: u64, fraction: f64) {
        let rec = self.rec.clone();
        let _span = rec.span("sample_curvature", SpanKind::CommCollective);
        if self.poisoned() {
            return;
        }
        if let Err(f) = self.try_sample(seed, fraction) {
            self.on_fault(f);
        }
    }

    fn gn_product(&mut self, v: &[f32]) -> Vec<f32> {
        let rec = self.rec.clone();
        let _span = rec.span("curvature_reduce", SpanKind::CommCollective);
        if self.poisoned() {
            return vec![0.0f32; v.len()];
        }
        match self.try_gn_product(v) {
            Ok(gv) => gv,
            Err(f) => {
                self.on_fault(f);
                vec![0.0f32; v.len()]
            }
        }
    }

    fn fisher_diagonal(&mut self) -> Option<Vec<f32>> {
        let rec = self.rec.clone();
        let _span = rec.span("curvature_reduce", SpanKind::CommCollective);
        if self.poisoned() {
            return None;
        }
        match self.try_fisher() {
            Ok(diag) => Some(diag),
            Err(f) => {
                self.on_fault(f);
                None
            }
        }
    }

    fn heldout_eval(&mut self, theta: &[f32]) -> HeldoutEval {
        let rec = self.rec.clone();
        let _span = rec.span("heldout_reduce", SpanKind::CommCollective);
        if self.poisoned() {
            return HeldoutEval {
                loss: f64::NAN,
                accuracy: f64::NAN,
                frames: 0,
            };
        }
        match self.try_heldout(theta) {
            Ok(eval) => eval,
            Err(f) => {
                self.on_fault(f);
                HeldoutEval {
                    loss: f64::NAN,
                    accuracy: f64::NAN,
                    frames: 0,
                }
            }
        }
    }

    fn train_frames(&self) -> u64 {
        self.train_frames
    }
}

/// Worker-side cached curvature minibatch.
struct WorkerSample {
    x: Matrix<f32>,
    labels: Vec<u32>,
    utt_lens: Vec<usize>,
    cache: ForwardCache<f32>,
    dist: Matrix<f32>,
    /// Prepacked activation operands, reused by every `GN_PRODUCT`
    /// command of the solve.
    packed_acts: PackedActivations<f32>,
}

/// Rebuild the worker's weight packs iff the network version moved.
/// Hit/miss counters are pure functions of the command sequence, so
/// per-rank telemetry stays byte-identical across runs.
fn ensure_worker_packs<R: Recorder + ?Sized>(
    packs: &mut Option<PackedWeights<f32>>,
    net: &Network<f32>,
    ctx: &GemmContext,
    rec: &R,
) {
    match packs {
        Some(p) if p.matches(net) => rec.counter_add("pack_cache_hit", 1),
        _ => {
            *packs = Some(PackedWeights::new(net, ctx));
            rec.counter_add("pack_cache_miss", 1);
        }
    }
}

/// Evaluate the objective's summed loss + dlogits on a batch.
fn eval_objective(
    objective: &Objective,
    cache: &ForwardCache<f32>,
    labels: &[u32],
    utt_lens: &[usize],
) -> (f64, Matrix<f32>) {
    match objective {
        Objective::CrossEntropy => {
            let out = cross_entropy(cache.logits(), labels);
            (out.loss, out.dlogits)
        }
        Objective::Sequence(graph) => {
            let out = mmi_batch(cache.logits(), labels, utt_lens, graph);
            (out.loss, out.dlogits)
        }
    }
}

/// Curvature distribution (softmax or denominator occupancies).
fn curvature_dist(
    objective: &Objective,
    cache: &ForwardCache<f32>,
    labels: &[u32],
    utt_lens: &[usize],
) -> Matrix<f32> {
    match objective {
        Objective::CrossEntropy => softmax_rows(cache.logits()),
        Objective::Sequence(graph) => {
            mmi_batch(cache.logits(), labels, utt_lens, graph).den_posteriors
        }
    }
}

/// Heldout loss sum + correct count under the objective.
fn heldout_objective(
    objective: &Objective,
    logits: &Matrix<f32>,
    labels: &[u32],
    utt_lens: &[usize],
) -> (f64, usize) {
    match objective {
        Objective::CrossEntropy => cross_entropy_loss_only(logits, labels),
        Objective::Sequence(graph) => {
            let out = mmi_batch(logits, labels, utt_lens, graph);
            let preds = logits.row_argmax();
            let correct = preds
                .iter()
                .zip(labels.iter())
                .filter(|(&p, &l)| p as u32 == l)
                .count();
            (out.loss, correct)
        }
    }
}

/// Extract a curvature sample from a worker's local shard.
fn draw_sample(
    train: &Shard,
    net: &Network<f32>,
    ctx: &GemmContext,
    objective: &Objective,
    seed: u64,
    fraction: f64,
    rank: usize,
) -> Option<WorkerSample> {
    if train.utt_lens.is_empty() {
        return None;
    }
    // Per-rank stream: the overall sample is the union of per-worker
    // samples, each a `fraction` of the local utterances.
    let rank_seed = seed ^ (rank as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    let ids = sample_utterances(&train.utt_lens, fraction, rank_seed);
    let (x, labels, utt_lens) = crate::problem::extract_utterances(train, &ids);
    if x.rows() == 0 {
        return None;
    }
    // The cache outlives this call (it backs every GN_PRODUCT of the
    // solve), so it is forwarded outside the arena.
    let cache = net.forward(ctx, &x);
    let dist = curvature_dist(objective, &cache, &labels, &utt_lens);
    let packed_acts = PackedActivations::new(&cache, ctx);
    Some(WorkerSample {
        x,
        labels,
        utt_lens,
        cache,
        dist,
        packed_acts,
    })
}

/// Run the worker command loop until `SHUTDOWN`.
///
/// All phase accounting goes through the communicator's `pdnn_obs`
/// recorder; the caller collects it from [`RankOutcome::telemetry`].
/// A communication failure (including being killed or evicted by a
/// fault plan) unwinds cleanly as an error — the caller decides
/// whether that is expected (fault injection) or a harness bug.
fn worker_loop(
    comm: &mut Comm,
    corpus: &Corpus,
    objective: &Objective,
    dims: &[usize],
    threads: usize,
) -> Result<(), CommError> {
    let rec = comm.recorder().clone();
    let ctx = if threads > 1 {
        GemmContext::threaded(threads)
    } else {
        GemmContext::sequential()
    };

    // load_data: receive this worker's utterance assignments. The
    // typed receive surfaces a tag/kind-mismatched sender as a
    // `CommError::TypeMismatch` instead of a payload panic.
    let load_span = rec.span("load_data", SpanKind::CommP2p);
    let mut train_ids: Vec<usize> = comm
        // pdnn-lint: allow(l8-timed-recv): initial rendezvous — the master sends both assignment messages before training starts and faults are only armed at collectives, so blocking here cannot outlive a live master
        .recv_vec::<u64>(Src::Of(0), TAG_LOAD_DATA)?
        .into_iter()
        .map(|v| v as usize)
        .collect();
    let mut held_ids: Vec<usize> = comm
        // pdnn-lint: allow(l8-timed-recv): initial rendezvous — second half of the startup shard transfer, same reasoning as the first receive
        .recv_vec::<u64>(Src::Of(0), TAG_LOAD_DATA)?
        .into_iter()
        .map(|v| v as usize)
        .collect();
    let mut train = corpus.shard(&train_ids);
    let mut heldout = corpus.shard(&held_ids);
    drop(load_span);

    let mut net: Network<f32> = {
        // Architecture comes from dims; weights arrive via SET_THETA
        // before any compute command, so the init here is irrelevant.
        let mut rng = pdnn_util::Prng::new(0);
        Network::new(dims, pdnn_dnn::Activation::Sigmoid, &mut rng)
    };
    let mut scratch = net.clone();
    let mut sample: Option<WorkerSample> = None;
    let mut ws: Workspace<f32> = Workspace::new();
    let mut packs: Option<PackedWeights<f32>> = None;

    loop {
        let mut header = vec![0u64; 1];
        comm.bcast(&mut header, 0)?;
        match header[0] {
            CMD_SHUTDOWN => break,
            CMD_SET_THETA => {
                let mut theta: Vec<f32> = Vec::new();
                comm.bcast(&mut theta, 0)?;
                {
                    let _s = rec.span("sync_weights_worker", SpanKind::MemoryBound);
                    // Bumps the network version: the next compute
                    // command repacks the weights (pack_cache_miss).
                    net.set_flat(&theta);
                }
                if let Some(s) = sample.take() {
                    s.cache.give_back(&mut ws);
                    ws.give_matrix(s.x);
                    ws.give_matrix(s.dist);
                }
                ws.give_vec(theta);
            }
            CMD_GRADIENT => {
                let (loss_sum, mut grad) = {
                    let _s = rec.span("gradient_loss", SpanKind::DenseCompute);
                    if train.frames() == 0 {
                        (0.0, vec![0.0f32; net.num_params()])
                    } else {
                        ensure_worker_packs(&mut packs, &net, &ctx, rec.as_ref());
                        let cache = net.forward_ws(&ctx, &train.x, packs.as_ref(), &mut ws);
                        let (loss, dlogits) =
                            eval_objective(objective, &cache, &train.labels, &train.utt_lens);
                        let grad =
                            backprop_ws(&net, &ctx, &cache, &dlogits, packs.as_ref(), &mut ws);
                        ws.give_matrix(dlogits);
                        cache.give_back(&mut ws);
                        (loss, grad)
                    }
                };
                comm.reduce(&mut grad, ReduceOp::Sum, 0)?;
                let mut meta = vec![loss_sum, train.frames() as f64];
                comm.reduce(&mut meta, ReduceOp::Sum, 0)?;
                ws.give_vec(grad);
            }
            CMD_SAMPLE => {
                assert_eq!(header.len(), 3, "SAMPLE header must carry seed+fraction");
                let seed = header[1];
                let fraction = f64::from_bits(header[2]);
                if let Some(s) = sample.take() {
                    s.cache.give_back(&mut ws);
                    ws.give_matrix(s.x);
                    ws.give_matrix(s.dist);
                }
                sample = {
                    let _s = rec.span("worker_curvature_sample", SpanKind::DenseCompute);
                    draw_sample(&train, &net, &ctx, objective, seed, fraction, comm.rank())
                };
            }
            CMD_GN => {
                let mut v: Vec<f32> = Vec::new();
                comm.bcast(&mut v, 0)?;
                let (mut gv, frames) = {
                    let _s = rec.span("worker_curvature_product", SpanKind::DenseCompute);
                    match &sample {
                        Some(s) => {
                            ensure_worker_packs(&mut packs, &net, &ctx, rec.as_ref());
                            let gv = gn_product_ws(
                                &net,
                                &ctx,
                                &s.cache,
                                Curvature::Fisher(&s.dist),
                                &v,
                                packs.as_ref(),
                                Some(&s.packed_acts),
                                &mut ws,
                            );
                            (gv, s.x.rows() as f64)
                        }
                        None => (vec![0.0f32; net.num_params()], 0.0),
                    }
                };
                comm.reduce(&mut gv, ReduceOp::Sum, 0)?;
                let mut meta = vec![frames];
                comm.reduce(&mut meta, ReduceOp::Sum, 0)?;
                ws.give_vec(gv);
                ws.give_vec(v);
                let stats = ws.stats();
                rec.gauge_set("arena_bytes_reused", stats.bytes_reused as f64);
                rec.gauge_set("arena_high_water_bytes", stats.high_water_bytes as f64);
            }
            CMD_FISHER => {
                let (mut diag, frames) = {
                    let _s = rec.span("worker_curvature_product", SpanKind::DenseCompute);
                    match &sample {
                        Some(s) => {
                            let (_, dlogits) =
                                eval_objective(objective, &s.cache, &s.labels, &s.utt_lens);
                            let diag = pdnn_dnn::fisher::empirical_fisher_diagonal(
                                &net, &ctx, &s.cache, &dlogits,
                            );
                            (diag, s.x.rows() as f64)
                        }
                        None => (vec![0.0f32; net.num_params()], 0.0),
                    }
                };
                comm.reduce(&mut diag, ReduceOp::Sum, 0)?;
                let mut meta = vec![frames];
                comm.reduce(&mut meta, ReduceOp::Sum, 0)?;
            }
            CMD_HELDOUT => {
                let mut trial: Vec<f32> = Vec::new();
                comm.bcast(&mut trial, 0)?;
                let mut meta = {
                    let _s = rec.span("eval_heldout", SpanKind::DenseCompute);
                    if heldout.frames() == 0 {
                        vec![0.0f64, 0.0, 0.0]
                    } else {
                        // Trial weights change every call: no packs,
                        // but the arena recycles activation scratch.
                        scratch.set_flat(&trial);
                        let logits = scratch.logits_ws(&ctx, &heldout.x, None, &mut ws);
                        let (loss_sum, correct) = heldout_objective(
                            objective,
                            &logits,
                            &heldout.labels,
                            &heldout.utt_lens,
                        );
                        ws.give_matrix(logits);
                        vec![loss_sum, correct as f64, heldout.frames() as f64]
                    }
                };
                comm.reduce(&mut meta, ReduceOp::Sum, 0)?;
                ws.give_vec(trial);
            }
            CMD_LOAD_DATA => {
                // A peer died: the master re-partitioned its shard and
                // ships this worker its extra utterance assignments.
                // The timed receive keeps recovery itself recoverable:
                // if the master dies mid-redistribute, the worker
                // surfaces Timeout instead of blocking forever.
                let _s = rec.span("load_data", SpanKind::CommP2p);
                let timeout = comm.p2p_timeout();
                let extra_train =
                    comm.recv_vec_timeout::<u64>(Src::Of(0), TAG_LOAD_DATA, timeout)?;
                let extra_held =
                    comm.recv_vec_timeout::<u64>(Src::Of(0), TAG_LOAD_DATA, timeout)?;
                train_ids.extend(extra_train.into_iter().map(|v| v as usize));
                held_ids.extend(extra_held.into_iter().map(|v| v as usize));
                train = corpus.shard(&train_ids);
                heldout = corpus.shard(&held_ids);
                // The cached curvature sample indexes the old shard.
                if let Some(s) = sample.take() {
                    s.cache.give_back(&mut ws);
                    ws.give_matrix(s.x);
                    ws.give_matrix(s.dist);
                }
                rec.counter_add("shard_reassignments", 1);
            }
            // pdnn-lint: allow(l3-no-unwrap): an unknown opcode is a protocol bug between master and worker builds, not a runtime condition to recover from
            other => panic!("unknown command {other}"),
        }
    }
    // Epoch barrier closing the protocol: no rank exits while another
    // may still be mid-collective, so the quiescence check at exit
    // (static p3 / dynamic UnconsumedAtExit) is meaningful.
    comm.barrier()?;
    Ok(())
}

/// Peer-rank implementation of [`HfProblem`] for the masterless sync
/// strategies: local compute over this rank's shard plus symmetric
/// allreduces. No command headers, no rooted collectives, no p2p.
///
/// Every rank holds one of these and drives its own replicated
/// [`HfOptimizer`]; because ring and tree allreduce return
/// bit-identical results on every rank, the replicas make identical
/// decisions and their θ vectors never diverge.
struct DecentralProblem<'a> {
    comm: &'a mut Comm,
    rec: Arc<InMemoryRecorder>,
    sync: SyncStrategy,
    theta: Vec<f32>,
    net: Network<f32>,
    /// Trial-θ evaluation network (heldout probes never disturb the
    /// packed weights of `net`).
    scratch: Network<f32>,
    train: Shard,
    heldout: Shard,
    objective: &'a Objective,
    ctx: GemmContext,
    ws: Workspace<f32>,
    packs: Option<PackedWeights<f32>>,
    sample: Option<WorkerSample>,
    /// Global frame count of the current curvature sample, agreed by
    /// one f64 allreduce the first time the sample is used (fisher or
    /// first CG product) and reused for every later product on the
    /// same sample — the count cannot change between draws, so the
    /// per-CG-step metadata chaser would be pure collective overhead.
    /// Cleared with the sample (redraw, θ update, re-shard).
    sample_frames: Option<f64>,
    /// Global training frame count (identical on every rank).
    train_frames: u64,
    /// Source corpus, for rebuilding shards after a re-partition.
    corpus: &'a Corpus,
    /// Per-rank corpus utterance ids currently assigned (training).
    /// Replicated on every rank — each survivor replays the identical
    /// LPT re-partition locally, so no ledger owner can die.
    train_ids: Vec<Vec<u64>>,
    /// Per-rank corpus utterance ids currently assigned (held-out).
    held_ids: Vec<Vec<u64>>,
    /// Frame count of every corpus utterance, for LPT re-partition.
    utt_frames: Vec<usize>,
    strategy: Strategy,
    /// First unhandled fault; poisons the problem until taken.
    fault: Option<TrainFault>,
    /// Without a fault plan a communication error is a harness bug:
    /// fail loudly instead of attempting recovery.
    strict: bool,
}

impl DecentralProblem<'_> {
    /// Sum-allreduce under the configured masterless strategy.
    fn sync_f32(&mut self, buf: &mut [f32]) -> Result<(), CommError> {
        match self.sync {
            SyncStrategy::Ring => self.comm.allreduce_ring(buf, ReduceOp::Sum),
            _ => self.comm.allreduce_tree(buf, ReduceOp::Sum),
        }
    }

    fn sync_f64(&mut self, buf: &mut [f64]) -> Result<(), CommError> {
        match self.sync {
            SyncStrategy::Ring => self.comm.allreduce_ring(buf, ReduceOp::Sum),
            _ => self.comm.allreduce_tree(buf, ReduceOp::Sum),
        }
    }

    fn poisoned(&self) -> bool {
        self.fault.is_some()
    }

    /// Record a fault and poison the problem. The first fault wins:
    /// later ones are consequences of the degraded values the
    /// short-circuiting methods return.
    fn on_fault(&mut self, fault: TrainFault) {
        match &fault {
            TrainFault::Comm(e) => {
                if self.strict {
                    // pdnn-lint: allow(l3-no-unwrap): without a fault plan a communication error means the simulated world itself is broken; recovery would mask the harness bug
                    panic!("decentralized protocol failure: {e}");
                }
                self.rec
                    .event("comm_fault", vec![("error".into(), e.to_string().into())]);
            }
            TrainFault::ZeroFrames { phase } => {
                self.rec
                    .event("zero_frames", vec![("phase".into(), (*phase).into())]);
            }
        }
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    fn take_fault(&mut self) -> Option<TrainFault> {
        self.fault.take()
    }

    /// Bitmap of this rank's locally observed dead set (acknowledged
    /// or not).
    fn dead_bitmap(&self) -> u64 {
        debug_assert!(
            self.comm.size() <= 64,
            "membership bitmap holds at most 64 ranks"
        );
        self.comm
            .dead_ranks()
            .iter()
            .fold(0u64, |acc, &r| acc | (1u64 << r))
    }

    /// Membership-agreement round: every survivor reports its locally
    /// observed dead set to a coordinator — the lowest rank it does
    /// not know to be dead — which unions the reports and sends the
    /// agreed set back. Deterministic: the coordinator is a pure
    /// function of the dead set, reports are collected in ascending
    /// rank order, and the agreed bitmap is identical on every
    /// survivor.
    ///
    /// Survivors abort the failed collective up to one detect-timeout
    /// apart, so this round runs under the generous `timeout`
    /// (the plan's worker timeout); once AGREE lands everybody is
    /// re-synchronized to within one hop and the re-stitched
    /// collectives can safely use the short detect-timeout again. A
    /// reporter that stays silent past the window is evicted and
    /// folded into the agreed set; a dead coordinator makes the
    /// survivors retry under the next candidate.
    fn agree_membership(&mut self, timeout: Duration) -> Result<u64, TrainFault> {
        loop {
            let me = self.comm.rank();
            let Some(coord) = (0..self.comm.size()).find(|&r| !self.comm.is_dead(r)) else {
                return Err(TrainFault::Comm(CommError::WorldShutDown));
            };
            if coord == me {
                let mut union = self.dead_bitmap();
                for src in 0..self.comm.size() {
                    if src == me || self.comm.is_dead(src) {
                        continue;
                    }
                    match self.comm.recv_vec_timeout::<u64>(
                        Src::Of(src),
                        TAG_RECOVER_REPORT,
                        timeout,
                    ) {
                        Ok(bits) => union |= bits.first().copied().unwrap_or(0),
                        Err(CommError::RankDead { rank }) => union |= 1u64 << rank,
                        Err(CommError::Timeout) => {
                            self.comm.evict(src);
                            union |= 1u64 << src;
                        }
                        Err(e) => return Err(TrainFault::Comm(e)),
                    }
                }
                for dst in 0..self.comm.size() {
                    if dst == me || union & (1u64 << dst) != 0 {
                        continue;
                    }
                    self.comm
                        .send(dst, TAG_RECOVER_AGREE, Payload::U64(vec![union]))
                        .map_err(TrainFault::Comm)?;
                }
                return Ok(union);
            }
            self.comm
                .send(
                    coord,
                    TAG_RECOVER_REPORT,
                    Payload::U64(vec![self.dead_bitmap()]),
                )
                .map_err(TrainFault::Comm)?;
            match self
                .comm
                .recv_vec_timeout::<u64>(Src::Of(coord), TAG_RECOVER_AGREE, timeout)
            {
                Ok(bits) => return Ok(bits.first().copied().unwrap_or(0)),
                Err(CommError::RankDead { .. }) => {
                    // Already marked dead by the receive path; the next
                    // pass picks the next candidate coordinator.
                }
                Err(CommError::Timeout) => self.comm.evict(coord),
                Err(e) => return Err(TrainFault::Comm(e)),
            }
        }
    }

    /// Peer-coordinated recovery after a collective aborted on a dead
    /// rank: agree on membership, acknowledge every agreed death, and
    /// re-partition each dead rank's shard onto the survivors with the
    /// same LPT strategy as start-up.
    ///
    /// Every survivor replays the identical re-partition from its
    /// replicated assignment ledger, and the coordinator *also* ships
    /// each survivor its extras over `TAG_LOAD_DATA` — the same wire
    /// exchange as master-mode `CMD_LOAD_DATA` recovery — which
    /// doubles as a cross-check that the replicas agree on the new
    /// assignment.
    fn recover(&mut self, timeout: Duration) -> Result<(), TrainFault> {
        let union = self.agree_membership(timeout)?;
        let unacked = self.comm.unacked_dead();
        let newly: Vec<usize> = (0..self.comm.size())
            .filter(|&r| union & (1u64 << r) != 0)
            .filter(|&r| unacked.contains(&r) || !self.comm.is_dead(r))
            .collect();
        for &r in &newly {
            self.comm.ack_dead(r);
        }
        let me = self.comm.rank();
        for &d in &newly {
            let orphan_train = std::mem::take(&mut self.train_ids[d]);
            let orphan_held = std::mem::take(&mut self.held_ids[d]);
            let live: Vec<usize> = (0..self.comm.size())
                .filter(|&r| !self.comm.is_dead(r))
                .collect();
            let t_lens: Vec<usize> = orphan_train
                .iter()
                .map(|&id| self.utt_frames[id as usize])
                .collect();
            let t_parts = partition(&t_lens, live.len(), self.strategy);
            let h_lens: Vec<usize> = orphan_held
                .iter()
                .map(|&id| self.utt_frames[id as usize])
                .collect();
            let h_parts = partition(&h_lens, live.len(), self.strategy);
            let coord = live[0];
            let mut my_extra: (Vec<u64>, Vec<u64>) = (Vec::new(), Vec::new());
            for (i, &w) in live.iter().enumerate() {
                let t: Vec<u64> = t_parts[i].iter().map(|&p| orphan_train[p]).collect();
                let h: Vec<u64> = h_parts[i].iter().map(|&p| orphan_held[p]).collect();
                if me == coord && w != coord {
                    let s1 = self.comm.send(w, TAG_LOAD_DATA, Payload::U64(t.clone()));
                    let s2 = self.comm.send(w, TAG_LOAD_DATA, Payload::U64(h.clone()));
                    s1.and(s2).map_err(TrainFault::Comm)?;
                }
                if w == me {
                    my_extra = (t.clone(), h.clone());
                }
                self.train_ids[w].extend(t);
                self.held_ids[w].extend(h);
            }
            if me != coord {
                let t = self
                    .comm
                    .recv_vec_timeout::<u64>(Src::Of(coord), TAG_LOAD_DATA, timeout)
                    .map_err(TrainFault::Comm)?;
                let h = self
                    .comm
                    .recv_vec_timeout::<u64>(Src::Of(coord), TAG_LOAD_DATA, timeout)
                    .map_err(TrainFault::Comm)?;
                assert!(
                    t == my_extra.0 && h == my_extra.1,
                    "replicated re-partition diverged from the coordinator's"
                );
            }
            self.rec.counter_add("shard_reassignments", 1);
        }
        if !newly.is_empty() {
            // Rebuild this rank's shards from the updated ledger and
            // drop the cached curvature sample: its activations belong
            // to the pre-failure θ and shard.
            let mine_t: Vec<usize> = self.train_ids[me].iter().map(|&id| id as usize).collect();
            let mine_h: Vec<usize> = self.held_ids[me].iter().map(|&id| id as usize).collect();
            self.train = self.corpus.shard(&mine_t);
            self.heldout = self.corpus.shard(&mine_h);
            self.sample_frames = None;
            if let Some(s) = self.sample.take() {
                s.cache.give_back(&mut self.ws);
                self.ws.give_matrix(s.x);
                self.ws.give_matrix(s.dist);
            }
        }
        Ok(())
    }

    fn try_gradient(&mut self) -> Result<(f64, Vec<f32>), TrainFault> {
        let (loss_sum, mut grad) = {
            let _s = self.rec.span("gradient_loss", SpanKind::DenseCompute);
            if self.train.frames() == 0 {
                (0.0, vec![0.0f32; self.net.num_params()])
            } else {
                ensure_worker_packs(&mut self.packs, &self.net, &self.ctx, self.rec.as_ref());
                let cache = self.net.forward_ws(
                    &self.ctx,
                    &self.train.x,
                    self.packs.as_ref(),
                    &mut self.ws,
                );
                let (loss, dlogits) = eval_objective(
                    self.objective,
                    &cache,
                    &self.train.labels,
                    &self.train.utt_lens,
                );
                let grad = backprop_ws(
                    &self.net,
                    &self.ctx,
                    &cache,
                    &dlogits,
                    self.packs.as_ref(),
                    &mut self.ws,
                );
                self.ws.give_matrix(dlogits);
                cache.give_back(&mut self.ws);
                (loss, grad)
            }
        };
        let rec = self.rec.clone();
        let _span = rec.span("gradient_allreduce", SpanKind::CommCollective);
        let r1 = self.sync_f32(&mut grad);
        let mut meta = vec![loss_sum, self.train.frames() as f64];
        let r2 = self.sync_f64(&mut meta);
        r1.and(r2).map_err(TrainFault::Comm)?;
        if meta[1] <= 0.0 {
            return Err(TrainFault::ZeroFrames { phase: "gradient" });
        }
        let frames = meta[1];
        pdnn_tensor::blas1::scal((1.0 / frames) as f32, &mut grad);
        Ok((meta[0] / frames, grad))
    }

    fn try_gn_product(&mut self, v: &[f32]) -> Result<Vec<f32>, TrainFault> {
        let (mut gv, frames) = {
            let _s = self
                .rec
                .span("worker_curvature_product", SpanKind::DenseCompute);
            match &self.sample {
                Some(s) => {
                    ensure_worker_packs(&mut self.packs, &self.net, &self.ctx, self.rec.as_ref());
                    let gv = gn_product_ws(
                        &self.net,
                        &self.ctx,
                        &s.cache,
                        Curvature::Fisher(&s.dist),
                        v,
                        self.packs.as_ref(),
                        Some(&s.packed_acts),
                        &mut self.ws,
                    );
                    (gv, s.x.rows() as f64)
                }
                None => (vec![0.0f32; self.net.num_params()], 0.0),
            }
        };
        let rec = self.rec.clone();
        let _span = rec.span("curvature_allreduce", SpanKind::CommCollective);
        self.sync_f32(&mut gv).map_err(TrainFault::Comm)?;
        let total = self.sample_frames_total(frames, "gn_product")?;
        pdnn_tensor::blas1::scal((1.0 / total) as f32, &mut gv);
        Ok(gv)
    }

    /// Global frame count of the current curvature sample: the cached
    /// agreement if one exists, else one f64 metadata allreduce whose
    /// result is cached until the sample changes.
    fn sample_frames_total(&mut self, local: f64, phase: &'static str) -> Result<f64, TrainFault> {
        let total = match self.sample_frames {
            Some(t) => t,
            None => {
                let mut meta = vec![local];
                self.sync_f64(&mut meta).map_err(TrainFault::Comm)?;
                self.sample_frames = Some(meta[0]);
                meta[0]
            }
        };
        if total <= 0.0 {
            return Err(TrainFault::ZeroFrames { phase });
        }
        Ok(total)
    }

    fn try_fisher(&mut self) -> Result<Vec<f32>, TrainFault> {
        let (mut diag, frames) = {
            let _s = self
                .rec
                .span("worker_curvature_product", SpanKind::DenseCompute);
            match &self.sample {
                Some(s) => {
                    let (_, dlogits) =
                        eval_objective(self.objective, &s.cache, &s.labels, &s.utt_lens);
                    let diag = pdnn_dnn::fisher::empirical_fisher_diagonal(
                        &self.net, &self.ctx, &s.cache, &dlogits,
                    );
                    (diag, s.x.rows() as f64)
                }
                None => (vec![0.0f32; self.net.num_params()], 0.0),
            }
        };
        let rec = self.rec.clone();
        let _span = rec.span("curvature_allreduce", SpanKind::CommCollective);
        self.sync_f32(&mut diag).map_err(TrainFault::Comm)?;
        let total = self.sample_frames_total(frames, "fisher")?;
        pdnn_tensor::blas1::scal((1.0 / total) as f32, &mut diag);
        Ok(diag)
    }

    fn try_heldout(&mut self, theta: &[f32]) -> Result<HeldoutEval, TrainFault> {
        let mut meta = {
            let _s = self.rec.span("eval_heldout", SpanKind::DenseCompute);
            if self.heldout.frames() == 0 {
                vec![0.0f64, 0.0, 0.0]
            } else {
                self.scratch.set_flat(theta);
                let logits = self
                    .scratch
                    .logits_ws(&self.ctx, &self.heldout.x, None, &mut self.ws);
                let (loss_sum, correct) = heldout_objective(
                    self.objective,
                    &logits,
                    &self.heldout.labels,
                    &self.heldout.utt_lens,
                );
                self.ws.give_matrix(logits);
                vec![loss_sum, correct as f64, self.heldout.frames() as f64]
            }
        };
        let rec = self.rec.clone();
        let _span = rec.span("heldout_allreduce", SpanKind::CommCollective);
        self.sync_f64(&mut meta).map_err(TrainFault::Comm)?;
        if meta[2] <= 0.0 {
            return Err(TrainFault::ZeroFrames { phase: "heldout" });
        }
        let frames = meta[2];
        Ok(HeldoutEval {
            loss: meta[0] / frames,
            accuracy: meta[1] / frames,
            frames: meta[2] as u64,
        })
    }
}

impl HfProblem for DecentralProblem<'_> {
    fn num_params(&self) -> usize {
        self.theta.len()
    }

    fn theta(&self) -> Vec<f32> {
        self.theta.clone()
    }

    fn set_theta(&mut self, theta: &[f32]) {
        // Replicated state: every rank applies the identical update
        // locally. Zero communication — this is the masterless win
        // over the Master-mode θ broadcast.
        let rec = self.rec.clone();
        let _span = rec.span("sync_weights_replicated", SpanKind::MemoryBound);
        self.theta = theta.to_vec();
        self.net.set_flat(theta);
        // The cached curvature sample holds activations of the old θ.
        self.sample_frames = None;
        if let Some(s) = self.sample.take() {
            s.cache.give_back(&mut self.ws);
            self.ws.give_matrix(s.x);
            self.ws.give_matrix(s.dist);
        }
    }

    fn gradient(&mut self) -> (f64, Vec<f32>) {
        if self.poisoned() {
            return (f64::NAN, vec![0.0f32; self.theta.len()]);
        }
        match self.try_gradient() {
            Ok(out) => out,
            Err(f) => {
                self.on_fault(f);
                (f64::NAN, vec![0.0f32; self.theta.len()])
            }
        }
    }

    fn sample_curvature(&mut self, seed: u64, fraction: f64) {
        if self.poisoned() {
            return;
        }
        self.sample_frames = None;
        if let Some(s) = self.sample.take() {
            s.cache.give_back(&mut self.ws);
            self.ws.give_matrix(s.x);
            self.ws.give_matrix(s.dist);
        }
        self.sample = {
            let _s = self
                .rec
                .span("worker_curvature_sample", SpanKind::DenseCompute);
            draw_sample(
                &self.train,
                &self.net,
                &self.ctx,
                self.objective,
                seed,
                fraction,
                self.comm.rank(),
            )
        };
    }

    fn gn_product(&mut self, v: &[f32]) -> Vec<f32> {
        if self.poisoned() {
            return vec![0.0f32; v.len()];
        }
        match self.try_gn_product(v) {
            Ok(gv) => gv,
            Err(f) => {
                self.on_fault(f);
                vec![0.0f32; v.len()]
            }
        }
    }

    fn fisher_diagonal(&mut self) -> Option<Vec<f32>> {
        if self.poisoned() {
            return None;
        }
        match self.try_fisher() {
            Ok(diag) => Some(diag),
            Err(f) => {
                self.on_fault(f);
                None
            }
        }
    }

    fn heldout_eval(&mut self, theta: &[f32]) -> HeldoutEval {
        if self.poisoned() {
            return HeldoutEval {
                loss: f64::NAN,
                accuracy: f64::NAN,
                frames: 0,
            };
        }
        match self.try_heldout(theta) {
            Ok(eval) => eval,
            Err(f) => {
                self.on_fault(f);
                HeldoutEval {
                    loss: f64::NAN,
                    accuracy: f64::NAN,
                    frames: 0,
                }
            }
        }
    }

    fn train_frames(&self) -> u64 {
        self.train_frames
    }
}

/// The replicated outer loop every masterless rank runs: the same
/// [`HfOptimizer::step`] / [`StopState`] sequence as [`hf_loop`],
/// including peer-coordinated recovery when a collective surfaces a
/// dead rank. Snapshots are in-memory — every rank rewinds to its own
/// replica of θ, so there is no checkpoint file to race on and
/// nothing to ship.
fn decentral_loop(
    problem: &mut DecentralProblem<'_>,
    config: &DistributedConfig,
    rec: &Arc<InMemoryRecorder>,
    recover_timeout: Duration,
) -> (Result<Vec<IterStats>, Error>, usize) {
    let hf = config.hf;
    let mut opt = HfOptimizer::with_recorder(hf, rec.clone());
    let mut rule = hf.stop;
    if rule.target_loss.is_none() {
        rule.target_loss = hf.target_heldout_loss;
    }
    let mut stop = StopState::new(rule);
    let mut stats: Vec<IterStats> = Vec::with_capacity(hf.max_iters);
    let mut snap = Snapshot {
        iter: 0,
        theta: problem.theta(),
        lambda: opt.lambda(),
    };
    let mut recoveries = 0usize;
    let mut iter = 0usize;
    while iter < hf.max_iters {
        let s = opt.step(problem, iter);
        match problem.take_fault() {
            None => {
                let reason = stop.observe(s.heldout_before, s.heldout_after);
                stats.push(s);
                iter += 1;
                if config.checkpoint_every > 0 && iter.is_multiple_of(config.checkpoint_every) {
                    snap = Snapshot {
                        iter,
                        theta: problem.theta(),
                        lambda: opt.lambda(),
                    };
                }
                if reason.is_some() {
                    break;
                }
            }
            Some(TrainFault::Comm(CommError::RankDead { rank })) => {
                let _span = rec.span("recovery", SpanKind::Scalar);
                rec.event(
                    "worker_failure",
                    vec![
                        ("rank".into(), (rank as u64).into()),
                        ("iter".into(), (iter as u64).into()),
                    ],
                );
                if let Err(f) = problem.recover(recover_timeout) {
                    return (Err(fault_error(f)), recoveries);
                }
                rec.gauge_set("dead_workers", problem.comm.dead_ranks().len() as f64);
                // Replicated rewind: every survivor restores its own
                // in-memory snapshot, rebuilds the optimizer at the
                // snapshot's damping level, and replays. Sample seeds
                // are a pure function of the iteration index, so the
                // replay is bit-deterministic.
                problem.set_theta(&snap.theta);
                opt = HfOptimizer::resume_with_recorder(hf, snap.lambda, rec.clone());
                stop = StopState::new(rule);
                stats.truncate(snap.iter);
                // Re-feed the surviving history so patience/target
                // stopping sees the same sequence an undisturbed run
                // would have.
                for s in &stats {
                    let _ = stop.observe(s.heldout_before, s.heldout_after);
                }
                iter = snap.iter;
                recoveries += 1;
                rec.counter_add("recoveries", 1);
                rec.event(
                    "recovery_complete",
                    vec![("resume_iter".into(), (iter as u64).into())],
                );
            }
            Some(fault) => return (Err(fault_error(fault)), recoveries),
        }
    }
    (Ok(stats), recoveries)
}

/// What each masterless rank returns from its world closure: the
/// optimizer outcome, the final flat θ (for the replica-agreement
/// check at collection time), and this rank's view of the fault
/// history.
struct DecentralOut {
    result: Result<Vec<IterStats>, Error>,
    theta: Vec<f32>,
    dead_ranks: Vec<usize>,
    recoveries: usize,
}

/// Masterless training: `config.workers` peer ranks, each running a
/// replicated optimizer over symmetric allreduces. See
/// [`SyncStrategy`].
fn train_decentral_impl(
    net0: &Network<f32>,
    corpus: &Corpus,
    objective: &Objective,
    config: &DistributedConfig,
    mode: WorldMode,
) -> Result<TrainOutput, Error> {
    assert!(config.workers >= 1, "need at least one worker");
    config.hf.validate();

    let (train_ids, held_ids) = corpus.split_heldout(config.heldout_frac);
    let train_lens: Vec<usize> = train_ids
        .iter()
        .map(|&i| corpus.utterances()[i].frames())
        .collect();
    let train_assign = partition(&train_lens, config.workers, config.strategy);
    let held_lens: Vec<usize> = held_ids
        .iter()
        .map(|&i| corpus.utterances()[i].frames())
        .collect();
    let held_assign = partition(&held_lens, config.workers, config.strategy);
    // Corpus-id shards per rank; every rank derives its own from the
    // shared deterministic partition — nothing is shipped point-to-point.
    // Kept as u64 ids so the replicated ledger matches the recovery
    // wire format (`TAG_LOAD_DATA`) and the master-mode ledger.
    let assigned_train: Vec<Vec<u64>> = train_assign
        .iter()
        .map(|part| part.iter().map(|&pos| train_ids[pos] as u64).collect())
        .collect();
    let assigned_held: Vec<Vec<u64>> = held_assign
        .iter()
        .map(|part| part.iter().map(|&pos| held_ids[pos] as u64).collect())
        .collect();
    let utt_frames: Vec<usize> = corpus.utterances().iter().map(|u| u.frames()).collect();

    let theta0 = net0.to_flat();
    let total_train_frames: u64 = train_lens.iter().map(|&l| l as u64).sum();

    let world = config.workers;
    let faulted = matches!(mode, WorldMode::Faulted(_));
    let recover_timeout = match &mode {
        WorldMode::Faulted(plan) => plan.worker_timeout,
        _ => Duration::from_secs(60),
    };
    let body = |comm: &mut Comm| {
        comm.set_wire_codec(config.wire_codec);
        let rank = comm.rank();
        let rec = comm.recorder().clone();
        let ctx = if config.threads_per_rank > 1 {
            GemmContext::threaded(config.threads_per_rank)
        } else {
            GemmContext::sequential()
        };
        let mut net = net0.clone();
        net.set_flat(&theta0);
        let scratch = net.clone();
        let my_train: Vec<usize> = assigned_train[rank].iter().map(|&id| id as usize).collect();
        let my_held: Vec<usize> = assigned_held[rank].iter().map(|&id| id as usize).collect();
        let mut problem = DecentralProblem {
            comm,
            rec: rec.clone(),
            sync: config.sync,
            theta: theta0.clone(),
            net,
            scratch,
            train: corpus.shard(&my_train),
            heldout: corpus.shard(&my_held),
            objective,
            ctx,
            ws: Workspace::new(),
            packs: None,
            sample: None,
            sample_frames: None,
            train_frames: total_train_frames,
            corpus,
            train_ids: assigned_train.clone(),
            held_ids: assigned_held.clone(),
            utt_frames: utt_frames.clone(),
            strategy: config.strategy,
            fault: None,
            strict: !faulted,
        };
        let (result, recoveries) = decentral_loop(&mut problem, config, &rec, recover_timeout);
        let theta = problem.theta();
        // Quiescence barrier closing the protocol, as in Master mode.
        // A rank dying between the last collective and the barrier is
        // tolerated — the survivors already hold the final θ.
        let barrier = problem.comm.barrier();
        let result = result.and_then(|stats| match barrier {
            Ok(()) | Err(CommError::RankDead { .. }) => Ok(stats),
            Err(e) => Err(Error::Comm(e.to_string())),
        });
        if faulted {
            if let Err(e) = &result {
                rec.event(
                    "worker_comm_abort",
                    vec![("error".into(), e.to_string().into())],
                );
            }
        }
        let dead_ranks = problem.comm.dead_ranks().to_vec();
        DecentralOut {
            result,
            theta,
            dead_ranks,
            recoveries,
        }
    };
    let outcomes: Vec<RankOutcome<DecentralOut>> = match &mode {
        WorldMode::Normal => pdnn_mpisim::run_world(world, body),
        WorldMode::Deterministic => pdnn_mpisim::run_world_deterministic(world, body),
        WorldMode::Perturbed(seed) => pdnn_mpisim::run_world_perturbed(world, *seed, body),
        WorldMode::Faulted(plan) => pdnn_mpisim::run_world_faulted(world, plan, body),
    };
    let schedule_seed = match &mode {
        WorldMode::Perturbed(seed) => Some(*seed),
        _ => None,
    };

    let mut network = net0.clone();
    let mut master_trace = CommTrace::default();
    let mut master_telemetry = Telemetry::default();
    let mut master_events = Vec::new();
    let mut worker_traces = Vec::new();
    let mut worker_telemetries = Vec::new();
    let mut worker_events = Vec::new();
    let mut hb_violations = Vec::new();
    let mut rank_outs: Vec<(usize, DecentralOut)> = Vec::with_capacity(outcomes.len());
    for mut outcome in outcomes {
        outcome.telemetry.schedule_seed = schedule_seed;
        hb_violations.extend(outcome.hb.into_iter().map(|v| (outcome.rank, v)));
        if outcome.rank == 0 {
            master_trace = outcome.trace;
            master_telemetry = outcome.telemetry;
            master_events = outcome.events;
        } else {
            worker_traces.push(outcome.trace);
            worker_telemetries.push(outcome.telemetry);
            worker_events.push(outcome.events);
        }
        rank_outs.push((outcome.rank, outcome.result));
    }
    rank_outs.sort_by_key(|(rank, _)| *rank);
    // The reference replica is the lowest rank that finished cleanly
    // (a kill victim exits early with an error and carries stale θ).
    // Every other clean rank must match it bitwise — any drift is a
    // determinism bug in the allreduce or recovery layer.
    let reference = rank_outs
        .iter()
        .position(|(_, o)| o.result.is_ok())
        .unwrap_or(0);
    let ref_rank = rank_outs[reference].0;
    for (rank, out) in &rank_outs {
        if *rank == ref_rank || out.result.is_err() {
            continue;
        }
        if out.theta != rank_outs[reference].1.theta {
            return Err(Error::Train(format!(
                "replicated optimizers diverged: rank {rank} θ differs from rank {ref_rank}"
            )));
        }
    }
    let (
        _,
        DecentralOut {
            result,
            theta,
            dead_ranks,
            recoveries,
        },
    ) = rank_outs.swap_remove(reference);
    let stats = result?;
    network.set_flat(&theta);

    let master_phases = master_telemetry.phase_totals();
    let worker_phases = worker_telemetries
        .iter()
        .map(Telemetry::phase_totals)
        .collect();
    Ok(TrainOutput {
        network,
        stats,
        master_trace,
        worker_traces,
        master_phases,
        worker_phases,
        master_telemetry,
        worker_telemetries,
        hb_violations,
        schedule_seed,
        dead_ranks,
        recoveries,
        master_events,
        worker_events,
    })
}

/// θ snapshot a rank can rewind to after a worker failure — the
/// master's checkpoint-restart anchor, or every masterless replica's
/// in-memory rewind point.
struct Snapshot {
    iter: usize,
    theta: Vec<f32>,
    lambda: f64,
}

fn write_checkpoint(
    config: &DistributedConfig,
    net0: &Network<f32>,
    snap: &Snapshot,
) -> Result<(), Error> {
    let Some(path) = &config.checkpoint_path else {
        return Ok(());
    };
    let mut net = net0.clone();
    net.set_flat(&snap.theta);
    pdnn_dnn::checkpoint::save_network(&net, path)
}

fn restore_theta(config: &DistributedConfig, snap: &Snapshot) -> Result<Vec<f32>, Error> {
    match &config.checkpoint_path {
        Some(path) => Ok(pdnn_dnn::checkpoint::load_network(path)?.to_flat()),
        None => Ok(snap.theta.clone()),
    }
}

/// The master's outer training loop with checkpoint-restart recovery.
///
/// Drives the identical [`HfOptimizer::step`] sequence as
/// [`HfOptimizer::train`]; a run that observes no fault is op-for-op
/// (and telemetry-byte-for-byte) identical to it. When a step
/// surfaces a dead worker, the master acknowledges the death,
/// re-partitions the lost shard onto the survivors, restores θ from
/// the last snapshot, rebuilds the optimizer at the snapshot's damping
/// level, and replays from the snapshot iteration. Sample seeds are a
/// pure function of the iteration index, so the replay is
/// bit-deterministic.
fn hf_loop(
    problem: &mut MasterProblem<'_>,
    config: &DistributedConfig,
    net0: &Network<f32>,
    rec: &Arc<InMemoryRecorder>,
) -> (Result<Vec<IterStats>, Error>, usize) {
    let hf = config.hf;
    let mut opt = HfOptimizer::with_recorder(hf, rec.clone());
    let mut rule = hf.stop;
    if rule.target_loss.is_none() {
        rule.target_loss = hf.target_heldout_loss;
    }
    let mut stop = StopState::new(rule);
    let mut stats: Vec<IterStats> = Vec::with_capacity(hf.max_iters);
    let mut snap = Snapshot {
        iter: 0,
        theta: problem.theta(),
        lambda: opt.lambda(),
    };
    if let Err(e) = write_checkpoint(config, net0, &snap) {
        return (Err(e), 0);
    }
    let mut recoveries = 0usize;
    let mut iter = 0usize;
    while iter < hf.max_iters {
        let s = opt.step(problem, iter);
        match problem.take_fault() {
            None => {
                let reason = stop.observe(s.heldout_before, s.heldout_after);
                stats.push(s);
                iter += 1;
                if config.checkpoint_every > 0 && iter.is_multiple_of(config.checkpoint_every) {
                    snap = Snapshot {
                        iter,
                        theta: problem.theta(),
                        lambda: opt.lambda(),
                    };
                    if let Err(e) = write_checkpoint(config, net0, &snap) {
                        return (Err(e), recoveries);
                    }
                }
                if reason.is_some() {
                    break;
                }
            }
            Some(TrainFault::Comm(CommError::RankDead { rank })) => {
                let _span = rec.span("recovery", SpanKind::Scalar);
                rec.event(
                    "worker_failure",
                    vec![
                        ("rank".into(), (rank as u64).into()),
                        ("iter".into(), (iter as u64).into()),
                    ],
                );
                problem.comm.ack_dead(rank);
                let dead = problem.comm.dead_ranks().len();
                rec.gauge_set("dead_workers", dead as f64);
                if dead >= config.workers {
                    return (Err(Error::Train("no surviving workers".into())), recoveries);
                }
                if let Err(f) = problem.try_redistribute(rank - 1) {
                    return (Err(fault_error(f)), recoveries);
                }
                let theta = match restore_theta(config, &snap) {
                    Ok(t) => t,
                    Err(e) => return (Err(e), recoveries),
                };
                // Replay θ to the survivors. If a further rank dies
                // during the replay, the problem re-poisons and the
                // next loop iteration recovers again.
                problem.set_theta(&theta);
                opt = HfOptimizer::resume_with_recorder(hf, snap.lambda, rec.clone());
                stop = StopState::new(rule);
                stats.truncate(snap.iter);
                // Re-feed the surviving history so patience/target
                // stopping sees the same sequence an undisturbed run
                // would have.
                for s in &stats {
                    let _ = stop.observe(s.heldout_before, s.heldout_after);
                }
                iter = snap.iter;
                recoveries += 1;
                rec.counter_add("recoveries", 1);
                rec.event(
                    "recovery_complete",
                    vec![("resume_iter".into(), (iter as u64).into())],
                );
            }
            Some(fault) => return (Err(fault_error(fault)), recoveries),
        }
    }
    (Ok(stats), recoveries)
}

/// Train a network with distributed Hessian-free optimization.
///
/// Spawns `config.workers + 1` ranks (threads): rank 0 runs the
/// optimizer, ranks 1.. run the worker loop.
pub fn train_distributed(
    net0: &Network<f32>,
    corpus: &Corpus,
    objective: &Objective,
    config: &DistributedConfig,
) -> Result<TrainOutput, Error> {
    train_impl(net0, corpus, objective, config, WorldMode::Normal)
}

/// [`train_distributed`] with every rank's telemetry clock frozen at a
/// shared simulated instant (see
/// [`pdnn_mpisim::run_world_deterministic`]): numerically identical
/// training, but two identical runs produce byte-identical telemetry
/// (spans, counters, events, comm traces). Used by the determinism
/// integration test and by figure pipelines that diff telemetry across
/// commits.
pub fn train_distributed_deterministic(
    net0: &Network<f32>,
    corpus: &Corpus,
    objective: &Objective,
    config: &DistributedConfig,
) -> Result<TrainOutput, Error> {
    train_impl(net0, corpus, objective, config, WorldMode::Deterministic)
}

/// [`train_distributed_deterministic`] under a seeded schedule
/// perturbation (see [`pdnn_mpisim::run_world_perturbed`]): message
/// delivery and rank progress are jittered within MPI-legal
/// reorderings and every rank runs a vector-clock happens-before
/// tracker. A schedule-independent protocol produces bit-identical
/// weights and telemetry for every `seed` and an empty
/// [`TrainOutput::hb_violations`]; `pdnn-protocheck` pass 2 sweeps K
/// seeds asserting exactly that.
pub fn train_distributed_perturbed(
    net0: &Network<f32>,
    corpus: &Corpus,
    objective: &Objective,
    config: &DistributedConfig,
    seed: u64,
) -> Result<TrainOutput, Error> {
    train_impl(net0, corpus, objective, config, WorldMode::Perturbed(seed))
}

/// [`train_distributed_deterministic`] under a seeded [`FaultPlan`]
/// (see [`pdnn_mpisim::run_world_faulted`]): ranks can be killed,
/// stalled, or have messages dropped at plan-chosen points. Under
/// [`SyncStrategy::Master`] the master recovers by re-sharding onto
/// the survivors and replaying from the last checkpoint; under the
/// masterless modes the survivors run the peer-coordinated
/// membership-agreement round, re-stitch the ring/tree, re-shard, and
/// rewind their replicated optimizers in lockstep. Either way, two
/// runs under the same plan produce bit-identical weights and
/// byte-identical telemetry. (Stall and message-drop faults are
/// best-effort in the masterless modes: the protocol only guarantees
/// recovery for kills, which is what the test suite exercises.)
pub fn train_distributed_faulted(
    net0: &Network<f32>,
    corpus: &Corpus,
    objective: &Objective,
    config: &DistributedConfig,
    plan: &FaultPlan,
) -> Result<TrainOutput, Error> {
    train_impl(
        net0,
        corpus,
        objective,
        config,
        WorldMode::Faulted(plan.clone()),
    )
}

/// How the rank world is built and scheduled.
#[derive(Clone)]
enum WorldMode {
    /// Real clocks, unperturbed schedule.
    Normal,
    /// Frozen shared telemetry clock (byte-identical reruns).
    Deterministic,
    /// Frozen clock plus seeded schedule perturbation + HB tracking.
    Perturbed(u64),
    /// Frozen clock plus deterministic fault injection + recovery.
    Faulted(FaultPlan),
}

/// What the master rank hands back through the world runner.
struct MasterOut {
    result: Result<Vec<IterStats>, Error>,
    theta: Vec<f32>,
    dead_ranks: Vec<usize>,
    recoveries: usize,
}

fn train_impl(
    net0: &Network<f32>,
    corpus: &Corpus,
    objective: &Objective,
    config: &DistributedConfig,
    mode: WorldMode,
) -> Result<TrainOutput, Error> {
    if config.sync != SyncStrategy::Master {
        return train_decentral_impl(net0, corpus, objective, config, mode);
    }
    assert!(config.workers >= 1, "need at least one worker");
    config.hf.validate();

    let (train_ids, held_ids) = corpus.split_heldout(config.heldout_frac);
    // Partition by frame counts (the paper's equal-data objective).
    let train_lens: Vec<usize> = train_ids
        .iter()
        .map(|&i| corpus.utterances()[i].frames())
        .collect();
    let train_assign = partition(&train_lens, config.workers, config.strategy);
    let held_lens: Vec<usize> = held_ids
        .iter()
        .map(|&i| corpus.utterances()[i].frames())
        .collect();
    let held_assign = partition(&held_lens, config.workers, config.strategy);

    // Per-worker corpus-id assignments: the wire format of load_data
    // and the master's recovery ledger.
    let assigned_train: Vec<Vec<u64>> = train_assign
        .iter()
        .map(|part| part.iter().map(|&pos| train_ids[pos] as u64).collect())
        .collect();
    let assigned_held: Vec<Vec<u64>> = held_assign
        .iter()
        .map(|part| part.iter().map(|&pos| held_ids[pos] as u64).collect())
        .collect();
    let utt_frames: Vec<usize> = corpus.utterances().iter().map(|u| u.frames()).collect();

    let dims = net0.dims();
    let theta0 = net0.to_flat();
    let total_train_frames: u64 = train_lens.iter().map(|&l| l as u64).sum();

    enum RoleOutput {
        Master(Box<MasterOut>),
        Worker,
    }

    let faulted = matches!(mode, WorldMode::Faulted(_));
    let world = config.workers + 1;
    let body = |comm: &mut Comm| {
        comm.set_wire_codec(config.wire_codec);
        if comm.rank() == 0 {
            // ---- master ----
            let rec = comm.recorder().clone();
            // load_data: ship each worker its utterance id lists.
            let load_span = rec.span("load_data", SpanKind::CommP2p);
            for w in 0..config.workers {
                let t_ids: Vec<u64> = assigned_train[w].clone();
                let h_ids: Vec<u64> = assigned_held[w].clone();
                let s1 = comm.send(w + 1, TAG_LOAD_DATA, Payload::U64(t_ids));
                let s2 = comm.send(w + 1, TAG_LOAD_DATA, Payload::U64(h_ids));
                if let Err(e) = s1.and(s2) {
                    // pdnn-lint: allow(l3-no-unwrap): a start-up send can only fail if a worker vanished before training began; under a fault plan sends never error, so this is a harness bug either way
                    panic!("load_data send to worker {w} failed: {e}");
                }
            }
            drop(load_span);

            let mut problem = MasterProblem {
                comm,
                rec: rec.clone(),
                theta: theta0.clone(),
                train_frames: total_train_frames,
                train_assign: assigned_train.clone(),
                held_assign: assigned_held.clone(),
                utt_frames: utt_frames.clone(),
                strategy: config.strategy,
                fault: None,
                strict: !faulted,
            };
            // Distribute the initial weights.
            let t0 = problem.theta();
            problem.set_theta(&t0);

            // The optimizer shares the master rank's recorder, so its
            // spans/events land in the same per-rank telemetry stream.
            let (result, recoveries) = hf_loop(&mut problem, config, net0, &rec);
            let theta_final = problem.theta();
            let shutdown = problem.command(vec![CMD_SHUTDOWN]);
            // Matching half of the workers' shutdown barrier. A death
            // first discovered *here* still reports RankDead, which is
            // tolerable at teardown — training already finished.
            let barrier = comm.barrier();
            let result = result.and_then(|stats| match shutdown.and(barrier) {
                Ok(()) | Err(CommError::RankDead { .. }) => Ok(stats),
                Err(e) => Err(Error::Comm(e.to_string())),
            });
            RoleOutput::Master(Box::new(MasterOut {
                result,
                theta: theta_final,
                dead_ranks: comm.dead_ranks().to_vec(),
                recoveries,
            }))
        } else {
            // ---- worker ----
            if let Err(e) = worker_loop(comm, corpus, objective, &dims, config.threads_per_rank) {
                if faulted {
                    // Expected under a fault plan: this rank was
                    // killed, evicted, or orphaned by a peer's death.
                    comm.recorder().event(
                        "worker_comm_abort",
                        vec![("error".into(), e.to_string().into())],
                    );
                } else {
                    // pdnn-lint: allow(l3-no-unwrap): without a fault plan a worker-side communication failure is a harness bug, and unwinding the whole world is the loud failure we want
                    panic!("worker communication failure: {e}");
                }
            }
            RoleOutput::Worker
        }
    };
    let outcomes: Vec<RankOutcome<RoleOutput>> = match &mode {
        WorldMode::Normal => pdnn_mpisim::run_world(world, body),
        WorldMode::Deterministic => pdnn_mpisim::run_world_deterministic(world, body),
        WorldMode::Perturbed(seed) => pdnn_mpisim::run_world_perturbed(world, *seed, body),
        WorldMode::Faulted(plan) => pdnn_mpisim::run_world_faulted(world, plan, body),
    };
    let schedule_seed = match &mode {
        WorldMode::Perturbed(seed) => Some(*seed),
        _ => None,
    };

    let mut network = net0.clone();
    let mut master_out: Option<MasterOut> = None;
    let mut master_trace = CommTrace::default();
    let mut master_telemetry = Telemetry::default();
    let mut worker_traces = Vec::new();
    let mut worker_telemetries = Vec::new();
    let mut hb_violations = Vec::new();
    let mut master_events = Vec::new();
    let mut worker_events = Vec::new();
    for mut outcome in outcomes {
        outcome.telemetry.schedule_seed = schedule_seed;
        hb_violations.extend(outcome.hb.into_iter().map(|v| (outcome.rank, v)));
        match outcome.result {
            RoleOutput::Master(boxed) => {
                master_out = Some(*boxed);
                master_trace = outcome.trace;
                master_telemetry = outcome.telemetry;
                master_events = outcome.events;
            }
            RoleOutput::Worker => {
                worker_traces.push(outcome.trace);
                worker_telemetries.push(outcome.telemetry);
                worker_events.push(outcome.events);
            }
        }
    }
    let Some(master) = master_out else {
        return Err(Error::Train("master rank produced no output".into()));
    };
    let stats = master.result?;
    network.set_flat(&master.theta);

    let master_phases = master_telemetry.phase_totals();
    let worker_phases = worker_telemetries
        .iter()
        .map(Telemetry::phase_totals)
        .collect();
    Ok(TrainOutput {
        network,
        stats,
        master_trace,
        worker_traces,
        master_phases,
        worker_phases,
        master_telemetry,
        worker_telemetries,
        hb_violations,
        schedule_seed,
        dead_ranks: master.dead_ranks,
        recoveries: master.recoveries,
        master_events,
        worker_events,
    })
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;
    use pdnn_speech::CorpusSpec;
    use pdnn_util::Prng;

    fn small_corpus(seed: u64) -> Corpus {
        Corpus::generate(CorpusSpec::tiny(seed))
    }

    fn small_net(corpus: &Corpus, seed: u64) -> Network<f32> {
        let mut rng = Prng::new(seed);
        Network::new(
            &[corpus.spec().feature_dim, 12, corpus.spec().states],
            pdnn_dnn::Activation::Sigmoid,
            &mut rng,
        )
    }

    #[test]
    fn distributed_training_improves_heldout_accuracy() {
        let corpus = small_corpus(3);
        let net0 = small_net(&corpus, 1);
        let mut config = DistributedConfig::default();
        config.workers = 3;
        config.hf.max_iters = 8;
        let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &config).unwrap();
        assert_eq!(out.stats.len(), 8);
        assert_eq!(out.dead_ranks, Vec::<usize>::new());
        assert_eq!(out.recoveries, 0);
        let first_acc = out
            .stats
            .iter()
            .find(|s| s.accepted)
            .map(|s| s.heldout_accuracy)
            .expect("at least one accepted step");
        let last = out.stats.iter().rev().find(|s| s.accepted).unwrap();
        assert!(
            last.heldout_accuracy >= first_acc,
            "accuracy regressed: {first_acc} -> {}",
            last.heldout_accuracy
        );
        assert!(
            last.heldout_accuracy > 0.5,
            "final accuracy {}",
            last.heldout_accuracy
        );
        // The trained network must differ from the initial one.
        assert_ne!(out.network.to_flat(), net0.to_flat());
    }

    #[test]
    fn worker_count_does_not_change_the_math() {
        // Distributed gradients are sums over a partition of the same
        // data: results for 1 worker and 4 workers must agree to f32
        // reduction tolerance, and both must match the serial problem.
        use crate::problem::DnnProblem;
        let corpus = small_corpus(5);
        let net0 = small_net(&corpus, 2);

        // Serial reference.
        let (train_ids, held_ids) = corpus.split_heldout(0.2);
        let mut serial = DnnProblem::new(
            net0.clone(),
            GemmContext::sequential(),
            corpus.shard(&train_ids),
            corpus.shard(&held_ids),
            Objective::CrossEntropy,
        );
        let (serial_loss, serial_grad) = serial.gradient();

        for workers in [1usize, 2, 4] {
            let config = DistributedConfig {
                workers,
                heldout_frac: 0.2,
                ..Default::default()
            };
            // Capture the first gradient via a one-iteration run's
            // recorded train loss.
            let mut cfg = config.clone();
            cfg.hf.max_iters = 1;
            let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &cfg).unwrap();
            let s = &out.stats[0];
            assert!(
                (s.train_loss - serial_loss).abs() < 1e-4,
                "workers={workers}: loss {} vs serial {serial_loss}",
                s.train_loss
            );
            assert!(
                (s.grad_norm - pdnn_tensor::blas1::nrm2(&serial_grad)).abs() < 1e-4,
                "workers={workers}: grad norm {} vs {}",
                s.grad_norm,
                pdnn_tensor::blas1::nrm2(&serial_grad)
            );
        }
    }

    #[test]
    fn sequence_objective_trains_distributed() {
        let corpus = small_corpus(7);
        let net0 = small_net(&corpus, 3);
        let objective = Objective::Sequence(corpus.denominator_graph());
        let mut config = DistributedConfig::default();
        config.workers = 2;
        config.hf.max_iters = 4;
        let out = train_distributed(&net0, &corpus, &objective, &config).unwrap();
        let accepted: Vec<_> = out.stats.iter().filter(|s| s.accepted).collect();
        assert!(!accepted.is_empty(), "no accepted steps");
        let first = accepted.first().unwrap();
        let last = accepted.last().unwrap();
        assert!(
            last.heldout_after <= first.heldout_before,
            "sequence loss did not improve: {} -> {}",
            first.heldout_before,
            last.heldout_after
        );
    }

    #[test]
    fn traces_show_master_collective_and_p2p_traffic() {
        let corpus = small_corpus(9);
        let net0 = small_net(&corpus, 4);
        let mut config = DistributedConfig::default();
        config.workers = 3;
        config.hf.max_iters = 2;
        let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &config).unwrap();
        // Master: p2p bytes from load_data, collective bytes from the
        // command/theta broadcasts and reduces.
        assert!(out.master_trace.p2p.bytes_sent > 0, "no load_data traffic");
        assert!(out.master_trace.collective.bytes_sent > 0);
        assert_eq!(out.worker_traces.len(), 3);
        for (w, t) in out.worker_traces.iter().enumerate() {
            assert!(t.p2p.bytes_received > 0, "worker {w} got no assignment");
            assert!(t.collective.bytes_received > 0);
        }
        // Worker phases contain the paper's function names.
        for phases in &out.worker_phases {
            assert!(phases.get("gradient_loss").calls > 0);
            assert!(phases.get("eval_heldout").calls > 0);
            assert!(phases.get("sync_weights_worker").calls > 0);
        }
        assert!(out.master_phases.get("sync_weights_master").calls > 0);
        assert!(out.master_phases.get("load_data").calls > 0);
        // Telemetry is the source of truth: the derived views agree
        // with it, and the optimizer's stream landed on the master.
        assert_eq!(out.master_telemetry.comm, out.master_trace);
        assert_eq!(
            out.master_telemetry.counter("hf_iterations"),
            out.stats.len() as u64
        );
        let events: Vec<_> = out
            .master_telemetry
            .events
            .iter()
            .filter(|e| e.name == "hf_iteration")
            .collect();
        assert_eq!(events.len(), out.stats.len());
        assert_eq!(out.worker_telemetries.len(), 3);
        for (w, t) in out.worker_telemetries.iter().enumerate() {
            assert_eq!(&t.comm, &out.worker_traces[w]);
            assert!(t.spans.iter().any(|s| s.name() == "gradient_loss"));
            assert!(t.spans.iter().any(|s| s.name() == "bcast"));
        }
    }

    #[test]
    fn perturbed_schedule_matches_deterministic_run() {
        let corpus = small_corpus(13);
        let net0 = small_net(&corpus, 6);
        let mut config = DistributedConfig::default();
        config.workers = 3;
        config.hf.max_iters = 2;
        let baseline =
            train_distributed_deterministic(&net0, &corpus, &Objective::CrossEntropy, &config)
                .unwrap();
        assert!(baseline.hb_violations.is_empty());
        assert_eq!(baseline.schedule_seed, None);
        for seed in [1u64, 99] {
            let out = train_distributed_perturbed(
                &net0,
                &corpus,
                &Objective::CrossEntropy,
                &config,
                seed,
            )
            .unwrap();
            assert_eq!(
                out.hb_violations,
                vec![],
                "seed {seed}: happens-before violations"
            );
            assert_eq!(out.schedule_seed, Some(seed));
            assert_eq!(out.master_telemetry.schedule_seed, Some(seed));
            // Bit-identical weights: the protocol is schedule-independent.
            assert_eq!(
                out.network.to_flat(),
                baseline.network.to_flat(),
                "seed {seed}: weights diverged under perturbation"
            );
        }
    }

    #[test]
    fn more_workers_than_utterances_still_works() {
        let mut spec = CorpusSpec::tiny(11);
        spec.utterances = 3;
        let corpus = Corpus::generate(spec);
        let net0 = small_net(&corpus, 5);
        let mut config = DistributedConfig::default();
        config.workers = 6; // some workers get empty shards
        config.hf.max_iters = 2;
        let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &config).unwrap();
        assert_eq!(out.stats.len(), 2);
        assert!(out.stats.iter().all(|s| s.train_loss.is_finite()));
    }
}
