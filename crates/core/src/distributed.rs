//! Distributed Hessian-free training: one master, many workers.
//!
//! Paper Section IV: "worker processes distributed over a compute
//! cluster perform data-parallel computation of gradients and
//! curvature matrix–vector products and the master implements the
//! Hessian-free optimization and coordinates the activity of the
//! workers. All communication between the master and workers is via
//! MPI. The master/worker architecture … is a simple one-layer
//! architecture, with one master and many workers."
//!
//! The master implements [`HfProblem`] over message passing, so the
//! *identical* [`crate::optimizer::HfOptimizer`] drives both serial
//! and distributed training — the parity tests exploit this.
//!
//! Protocol (fan-out is `bcast` from rank 0, fan-in `reduce` to rank
//! 0, matching the paper's move from sockets to MPI collectives in
//! Section V.B):
//!
//! | command      | payload after header           | reply (reduce)                 |
//! |--------------|--------------------------------|--------------------------------|
//! | `SET_THETA`  | f32 θ                          | —                              |
//! | `GRADIENT`   | —                              | f32 Σgrad, f64 [Σloss, frames] |
//! | `SAMPLE`     | header carries seed + fraction | —                              |
//! | `GN_PRODUCT` | f32 v                          | f32 ΣGv, f64 [frames]          |
//! | `HELDOUT`    | f32 trial θ                    | f64 [Σloss, Σcorrect, frames]  |
//! | `FISHER`     | —                              | f32 Σdiag, f64 [frames]        |
//! | `SHUTDOWN`   | —                              | —                              |
//!
//! At start-up the master distributes per-worker utterance
//! assignments point-to-point (`load_data` — the paper's Figures 2
//! and 4 show this p2p phase growing with rank count).

use crate::config::HfConfig;
use crate::optimizer::{HfOptimizer, IterStats};
use crate::problem::{sample_utterances, HeldoutEval, HfProblem, Objective};
use pdnn_dnn::backprop::backprop_ws;
use pdnn_dnn::gauss_newton::{gn_product_ws, Curvature};
use pdnn_dnn::loss::{cross_entropy, cross_entropy_loss_only, softmax_rows};
use pdnn_dnn::network::{ForwardCache, Network};
use pdnn_dnn::packed::{PackedActivations, PackedWeights};
use pdnn_dnn::sequence::mmi_batch;
use pdnn_mpisim::{comm_ok, Comm, CommTrace, HbViolation, Payload, RankOutcome, ReduceOp, Src};
use pdnn_obs::{InMemoryRecorder, Recorder, RecorderExt, SpanKind, Telemetry};
use pdnn_speech::{partition, Corpus, Shard, Strategy};
use pdnn_tensor::gemm::GemmContext;
use pdnn_tensor::{Matrix, Workspace};
use pdnn_util::PhaseTimer;
use std::sync::Arc;

const CMD_SHUTDOWN: u64 = 0;
const CMD_SET_THETA: u64 = 1;
const CMD_GRADIENT: u64 = 2;
const CMD_SAMPLE: u64 = 3;
const CMD_GN: u64 = 4;
const CMD_HELDOUT: u64 = 5;
const CMD_FISHER: u64 = 6;

/// Tag for the initial utterance-assignment messages (`load_data`).
const TAG_LOAD_DATA: u64 = 17;

/// Distributed training configuration.
#[derive(Clone, Debug)]
pub struct DistributedConfig {
    /// Number of worker ranks (world size is `workers + 1`).
    pub workers: usize,
    /// Optimizer configuration.
    pub hf: HfConfig,
    /// Utterance-to-worker assignment strategy (paper Section V.C).
    pub strategy: Strategy,
    /// Fraction of utterances held out for the loss evaluations.
    pub heldout_frac: f64,
    /// rayon threads per rank for the GEMM kernels (the paper's
    /// OpenMP-threads-per-rank).
    pub threads_per_rank: usize,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            workers: 4,
            hf: HfConfig::small_task(),
            strategy: Strategy::SortedBalanced,
            heldout_frac: 0.2,
            threads_per_rank: 1,
        }
    }
}

/// Result of a distributed training run.
///
/// All accounting flows through each rank's `pdnn_obs` recorder (the
/// [`Telemetry`] fields); the [`PhaseTimer`] and [`CommTrace`] fields
/// are derived views kept for convenience and compatibility.
pub struct TrainOutput {
    /// The trained network (reconstructed on the master).
    pub network: Network<f32>,
    /// Per-iteration optimizer statistics.
    pub stats: Vec<IterStats>,
    /// Master communication trace (p2p vs collective split).
    pub master_trace: CommTrace,
    /// Worker communication traces, worker order.
    pub worker_traces: Vec<CommTrace>,
    /// Master compute/coordination phase times (derived from
    /// `master_telemetry` spans).
    pub master_phases: PhaseTimer,
    /// Worker phase times (gradient_loss, worker_curvature_product…),
    /// derived from `worker_telemetries` spans.
    pub worker_phases: Vec<PhaseTimer>,
    /// Full master-rank telemetry: spans, counters, events, comm.
    pub master_telemetry: Telemetry,
    /// Full per-worker telemetry, worker order.
    pub worker_telemetries: Vec<Telemetry>,
    /// Happens-before violations `(rank, violation)` from the
    /// vector-clock tracker. Always empty except under
    /// [`train_distributed_perturbed`], where any entry is a protocol
    /// race.
    pub hb_violations: Vec<(usize, HbViolation)>,
    /// Schedule-perturbation seed the run executed under (`None`
    /// outside [`train_distributed_perturbed`]); also stamped on every
    /// rank's telemetry so JSONL dumps record their schedule.
    pub schedule_seed: Option<u64>,
}

/// Master-side implementation of [`HfProblem`] over the communicator.
struct MasterProblem<'a> {
    comm: &'a mut Comm,
    rec: Arc<InMemoryRecorder>,
    theta: Vec<f32>,
    train_frames: u64,
}

impl MasterProblem<'_> {
    fn command(&mut self, header: Vec<u64>) {
        let mut buf = header;
        comm_ok(self.comm.bcast(&mut buf, 0), "command broadcast");
    }
}

impl HfProblem for MasterProblem<'_> {
    fn num_params(&self) -> usize {
        self.theta.len()
    }

    fn theta(&self) -> Vec<f32> {
        self.theta.clone()
    }

    fn set_theta(&mut self, theta: &[f32]) {
        let rec = self.rec.clone();
        let _span = rec.span("sync_weights_master", SpanKind::CommCollective);
        self.theta = theta.to_vec();
        self.command(vec![CMD_SET_THETA]);
        let mut buf = self.theta.clone();
        comm_ok(self.comm.bcast(&mut buf, 0), "theta broadcast");
    }

    fn gradient(&mut self) -> (f64, Vec<f32>) {
        let rec = self.rec.clone();
        let _span = rec.span("gradient_reduce", SpanKind::CommCollective);
        self.command(vec![CMD_GRADIENT]);
        let mut grad = vec![0.0f32; self.theta.len()];
        comm_ok(
            self.comm.reduce(&mut grad, ReduceOp::Sum, 0),
            "gradient reduce",
        );
        let mut meta = vec![0.0f64; 2];
        comm_ok(
            self.comm.reduce(&mut meta, ReduceOp::Sum, 0),
            "gradient meta reduce",
        );
        let frames = meta[1].max(1.0);
        let inv = (1.0 / frames) as f32;
        pdnn_tensor::blas1::scal(inv, &mut grad);
        (meta[0] / frames, grad)
    }

    fn sample_curvature(&mut self, seed: u64, fraction: f64) {
        let rec = self.rec.clone();
        let _span = rec.span("sample_curvature", SpanKind::CommCollective);
        self.command(vec![CMD_SAMPLE, seed, fraction.to_bits()]);
    }

    fn gn_product(&mut self, v: &[f32]) -> Vec<f32> {
        let rec = self.rec.clone();
        let _span = rec.span("curvature_reduce", SpanKind::CommCollective);
        self.command(vec![CMD_GN]);
        let mut buf = v.to_vec();
        comm_ok(self.comm.bcast(&mut buf, 0), "direction broadcast");
        let mut gv = vec![0.0f32; v.len()];
        comm_ok(self.comm.reduce(&mut gv, ReduceOp::Sum, 0), "GN reduce");
        let mut meta = vec![0.0f64; 1];
        comm_ok(
            self.comm.reduce(&mut meta, ReduceOp::Sum, 0),
            "GN meta reduce",
        );
        let frames = meta[0].max(1.0);
        let inv = (1.0 / frames) as f32;
        pdnn_tensor::blas1::scal(inv, &mut gv);
        gv
    }

    fn fisher_diagonal(&mut self) -> Option<Vec<f32>> {
        let rec = self.rec.clone();
        let _span = rec.span("curvature_reduce", SpanKind::CommCollective);
        self.command(vec![CMD_FISHER]);
        let mut diag = vec![0.0f32; self.theta.len()];
        comm_ok(
            self.comm.reduce(&mut diag, ReduceOp::Sum, 0),
            "fisher reduce",
        );
        let mut meta = vec![0.0f64; 1];
        comm_ok(
            self.comm.reduce(&mut meta, ReduceOp::Sum, 0),
            "fisher meta reduce",
        );
        let frames = meta[0].max(1.0);
        pdnn_tensor::blas1::scal((1.0 / frames) as f32, &mut diag);
        Some(diag)
    }

    fn heldout_eval(&mut self, theta: &[f32]) -> HeldoutEval {
        let rec = self.rec.clone();
        let _span = rec.span("heldout_reduce", SpanKind::CommCollective);
        self.command(vec![CMD_HELDOUT]);
        let mut buf = theta.to_vec();
        comm_ok(self.comm.bcast(&mut buf, 0), "trial broadcast");
        let mut meta = vec![0.0f64; 3];
        comm_ok(
            self.comm.reduce(&mut meta, ReduceOp::Sum, 0),
            "heldout reduce",
        );
        let frames = meta[2].max(1.0);
        HeldoutEval {
            loss: meta[0] / frames,
            accuracy: meta[1] / frames,
            frames: meta[2] as u64,
        }
    }

    fn train_frames(&self) -> u64 {
        self.train_frames
    }
}

/// Worker-side cached curvature minibatch.
struct WorkerSample {
    x: Matrix<f32>,
    labels: Vec<u32>,
    utt_lens: Vec<usize>,
    cache: ForwardCache<f32>,
    dist: Matrix<f32>,
    /// Prepacked activation operands, reused by every `GN_PRODUCT`
    /// command of the solve.
    packed_acts: PackedActivations<f32>,
}

/// Rebuild the worker's weight packs iff the network version moved.
/// Hit/miss counters are pure functions of the command sequence, so
/// per-rank telemetry stays byte-identical across runs.
fn ensure_worker_packs<R: Recorder + ?Sized>(
    packs: &mut Option<PackedWeights<f32>>,
    net: &Network<f32>,
    ctx: &GemmContext,
    rec: &R,
) {
    match packs {
        Some(p) if p.matches(net) => rec.counter_add("pack_cache_hit", 1),
        _ => {
            *packs = Some(PackedWeights::new(net, ctx));
            rec.counter_add("pack_cache_miss", 1);
        }
    }
}

/// Evaluate the objective's summed loss + dlogits on a batch.
fn eval_objective(
    objective: &Objective,
    cache: &ForwardCache<f32>,
    labels: &[u32],
    utt_lens: &[usize],
) -> (f64, Matrix<f32>) {
    match objective {
        Objective::CrossEntropy => {
            let out = cross_entropy(cache.logits(), labels);
            (out.loss, out.dlogits)
        }
        Objective::Sequence(graph) => {
            let out = mmi_batch(cache.logits(), labels, utt_lens, graph);
            (out.loss, out.dlogits)
        }
    }
}

/// Curvature distribution (softmax or denominator occupancies).
fn curvature_dist(
    objective: &Objective,
    cache: &ForwardCache<f32>,
    labels: &[u32],
    utt_lens: &[usize],
) -> Matrix<f32> {
    match objective {
        Objective::CrossEntropy => softmax_rows(cache.logits()),
        Objective::Sequence(graph) => {
            mmi_batch(cache.logits(), labels, utt_lens, graph).den_posteriors
        }
    }
}

/// Heldout loss sum + correct count under the objective.
fn heldout_objective(
    objective: &Objective,
    logits: &Matrix<f32>,
    labels: &[u32],
    utt_lens: &[usize],
) -> (f64, usize) {
    match objective {
        Objective::CrossEntropy => cross_entropy_loss_only(logits, labels),
        Objective::Sequence(graph) => {
            let out = mmi_batch(logits, labels, utt_lens, graph);
            let preds = logits.row_argmax();
            let correct = preds
                .iter()
                .zip(labels.iter())
                .filter(|(&p, &l)| p as u32 == l)
                .count();
            (out.loss, correct)
        }
    }
}

/// Extract a curvature sample from a worker's local shard.
fn draw_sample(
    train: &Shard,
    net: &Network<f32>,
    ctx: &GemmContext,
    objective: &Objective,
    seed: u64,
    fraction: f64,
    rank: usize,
) -> Option<WorkerSample> {
    if train.utt_lens.is_empty() {
        return None;
    }
    // Per-rank stream: the overall sample is the union of per-worker
    // samples, each a `fraction` of the local utterances.
    let rank_seed = seed ^ (rank as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    let ids = sample_utterances(&train.utt_lens, fraction, rank_seed);
    let (x, labels, utt_lens) = crate::problem::extract_utterances(train, &ids);
    if x.rows() == 0 {
        return None;
    }
    // The cache outlives this call (it backs every GN_PRODUCT of the
    // solve), so it is forwarded outside the arena.
    let cache = net.forward(ctx, &x);
    let dist = curvature_dist(objective, &cache, &labels, &utt_lens);
    let packed_acts = PackedActivations::new(&cache, ctx);
    Some(WorkerSample {
        x,
        labels,
        utt_lens,
        cache,
        dist,
        packed_acts,
    })
}

/// Run the worker command loop until `SHUTDOWN`.
///
/// All phase accounting goes through the communicator's `pdnn_obs`
/// recorder; the caller collects it from [`RankOutcome::telemetry`].
fn worker_loop(
    comm: &mut Comm,
    corpus: &Corpus,
    objective: &Objective,
    dims: &[usize],
    threads: usize,
) {
    let rec = comm.recorder().clone();
    let ctx = if threads > 1 {
        GemmContext::threaded(threads)
    } else {
        GemmContext::sequential()
    };

    // load_data: receive this worker's utterance assignments. The
    // typed receive surfaces a tag/kind-mismatched sender as a
    // `CommError::TypeMismatch` instead of a payload panic.
    let load_span = rec.span("load_data", SpanKind::CommP2p);
    let train_ids: Vec<usize> = comm_ok(
        comm.recv_vec::<u64>(Src::Of(0), TAG_LOAD_DATA),
        "train assignment recv",
    )
    .into_iter()
    .map(|v| v as usize)
    .collect();
    let held_ids: Vec<usize> = comm_ok(
        comm.recv_vec::<u64>(Src::Of(0), TAG_LOAD_DATA),
        "heldout assignment recv",
    )
    .into_iter()
    .map(|v| v as usize)
    .collect();
    let train = corpus.shard(&train_ids);
    let heldout = corpus.shard(&held_ids);
    drop(load_span);

    let mut net: Network<f32> = {
        // Architecture comes from dims; weights arrive via SET_THETA
        // before any compute command, so the init here is irrelevant.
        let mut rng = pdnn_util::Prng::new(0);
        Network::new(dims, pdnn_dnn::Activation::Sigmoid, &mut rng)
    };
    let mut scratch = net.clone();
    let mut sample: Option<WorkerSample> = None;
    let mut ws: Workspace<f32> = Workspace::new();
    let mut packs: Option<PackedWeights<f32>> = None;

    loop {
        let mut header = vec![0u64; 1];
        comm_ok(comm.bcast(&mut header, 0), "command receive");
        match header[0] {
            CMD_SHUTDOWN => break,
            CMD_SET_THETA => {
                let mut theta: Vec<f32> = Vec::new();
                comm_ok(comm.bcast(&mut theta, 0), "theta receive");
                {
                    let _s = rec.span("sync_weights_worker", SpanKind::MemoryBound);
                    // Bumps the network version: the next compute
                    // command repacks the weights (pack_cache_miss).
                    net.set_flat(&theta);
                }
                if let Some(s) = sample.take() {
                    s.cache.give_back(&mut ws);
                    ws.give_matrix(s.x);
                    ws.give_matrix(s.dist);
                }
                ws.give_vec(theta);
            }
            CMD_GRADIENT => {
                let (loss_sum, mut grad) = {
                    let _s = rec.span("gradient_loss", SpanKind::DenseCompute);
                    if train.frames() == 0 {
                        (0.0, vec![0.0f32; net.num_params()])
                    } else {
                        ensure_worker_packs(&mut packs, &net, &ctx, rec.as_ref());
                        let cache = net.forward_ws(&ctx, &train.x, packs.as_ref(), &mut ws);
                        let (loss, dlogits) =
                            eval_objective(objective, &cache, &train.labels, &train.utt_lens);
                        let grad =
                            backprop_ws(&net, &ctx, &cache, &dlogits, packs.as_ref(), &mut ws);
                        ws.give_matrix(dlogits);
                        cache.give_back(&mut ws);
                        (loss, grad)
                    }
                };
                comm_ok(comm.reduce(&mut grad, ReduceOp::Sum, 0), "grad reduce");
                let mut meta = vec![loss_sum, train.frames() as f64];
                comm_ok(comm.reduce(&mut meta, ReduceOp::Sum, 0), "meta reduce");
                ws.give_vec(grad);
            }
            CMD_SAMPLE => {
                assert_eq!(header.len(), 3, "SAMPLE header must carry seed+fraction");
                let seed = header[1];
                let fraction = f64::from_bits(header[2]);
                if let Some(s) = sample.take() {
                    s.cache.give_back(&mut ws);
                    ws.give_matrix(s.x);
                    ws.give_matrix(s.dist);
                }
                sample = {
                    let _s = rec.span("worker_curvature_sample", SpanKind::DenseCompute);
                    draw_sample(&train, &net, &ctx, objective, seed, fraction, comm.rank())
                };
            }
            CMD_GN => {
                let mut v: Vec<f32> = Vec::new();
                comm_ok(comm.bcast(&mut v, 0), "direction receive");
                let (mut gv, frames) = {
                    let _s = rec.span("worker_curvature_product", SpanKind::DenseCompute);
                    match &sample {
                        Some(s) => {
                            ensure_worker_packs(&mut packs, &net, &ctx, rec.as_ref());
                            let gv = gn_product_ws(
                                &net,
                                &ctx,
                                &s.cache,
                                Curvature::Fisher(&s.dist),
                                &v,
                                packs.as_ref(),
                                Some(&s.packed_acts),
                                &mut ws,
                            );
                            (gv, s.x.rows() as f64)
                        }
                        None => (vec![0.0f32; net.num_params()], 0.0),
                    }
                };
                comm_ok(comm.reduce(&mut gv, ReduceOp::Sum, 0), "gn reduce");
                let mut meta = vec![frames];
                comm_ok(comm.reduce(&mut meta, ReduceOp::Sum, 0), "gn meta");
                ws.give_vec(gv);
                ws.give_vec(v);
                let stats = ws.stats();
                rec.gauge_set("arena_bytes_reused", stats.bytes_reused as f64);
                rec.gauge_set("arena_high_water_bytes", stats.high_water_bytes as f64);
            }
            CMD_FISHER => {
                let (mut diag, frames) = {
                    let _s = rec.span("worker_curvature_product", SpanKind::DenseCompute);
                    match &sample {
                        Some(s) => {
                            let (_, dlogits) =
                                eval_objective(objective, &s.cache, &s.labels, &s.utt_lens);
                            let diag = pdnn_dnn::fisher::empirical_fisher_diagonal(
                                &net, &ctx, &s.cache, &dlogits,
                            );
                            (diag, s.x.rows() as f64)
                        }
                        None => (vec![0.0f32; net.num_params()], 0.0),
                    }
                };
                comm_ok(comm.reduce(&mut diag, ReduceOp::Sum, 0), "fisher reduce");
                let mut meta = vec![frames];
                comm_ok(comm.reduce(&mut meta, ReduceOp::Sum, 0), "fisher meta");
            }
            CMD_HELDOUT => {
                let mut trial: Vec<f32> = Vec::new();
                comm_ok(comm.bcast(&mut trial, 0), "trial receive");
                let mut meta = {
                    let _s = rec.span("eval_heldout", SpanKind::DenseCompute);
                    if heldout.frames() == 0 {
                        vec![0.0f64, 0.0, 0.0]
                    } else {
                        // Trial weights change every call: no packs,
                        // but the arena recycles activation scratch.
                        scratch.set_flat(&trial);
                        let logits = scratch.logits_ws(&ctx, &heldout.x, None, &mut ws);
                        let (loss_sum, correct) = heldout_objective(
                            objective,
                            &logits,
                            &heldout.labels,
                            &heldout.utt_lens,
                        );
                        ws.give_matrix(logits);
                        vec![loss_sum, correct as f64, heldout.frames() as f64]
                    }
                };
                comm_ok(comm.reduce(&mut meta, ReduceOp::Sum, 0), "heldout reduce");
                ws.give_vec(trial);
            }
            // pdnn-lint: allow(l3-no-unwrap): an unknown opcode is a protocol bug between master and worker builds, not a runtime condition to recover from
            other => panic!("unknown command {other}"),
        }
    }
    // Epoch barrier closing the protocol: no rank exits while another
    // may still be mid-collective, so the quiescence check at exit
    // (static p3 / dynamic UnconsumedAtExit) is meaningful.
    comm_ok(comm.barrier(), "shutdown barrier");
}

/// Train a network with distributed Hessian-free optimization.
///
/// Spawns `config.workers + 1` ranks (threads): rank 0 runs the
/// optimizer, ranks 1.. run the worker loop.
pub fn train_distributed(
    net0: &Network<f32>,
    corpus: &Corpus,
    objective: &Objective,
    config: &DistributedConfig,
) -> TrainOutput {
    train_impl(net0, corpus, objective, config, WorldMode::Normal)
}

/// [`train_distributed`] with every rank's telemetry clock frozen at a
/// shared simulated instant (see
/// [`pdnn_mpisim::run_world_deterministic`]): numerically identical
/// training, but two identical runs produce byte-identical telemetry
/// (spans, counters, events, comm traces). Used by the determinism
/// integration test and by figure pipelines that diff telemetry across
/// commits.
pub fn train_distributed_deterministic(
    net0: &Network<f32>,
    corpus: &Corpus,
    objective: &Objective,
    config: &DistributedConfig,
) -> TrainOutput {
    train_impl(net0, corpus, objective, config, WorldMode::Deterministic)
}

/// [`train_distributed_deterministic`] under a seeded schedule
/// perturbation (see [`pdnn_mpisim::run_world_perturbed`]): message
/// delivery and rank progress are jittered within MPI-legal
/// reorderings and every rank runs a vector-clock happens-before
/// tracker. A schedule-independent protocol produces bit-identical
/// weights and telemetry for every `seed` and an empty
/// [`TrainOutput::hb_violations`]; `pdnn-protocheck` pass 2 sweeps K
/// seeds asserting exactly that.
pub fn train_distributed_perturbed(
    net0: &Network<f32>,
    corpus: &Corpus,
    objective: &Objective,
    config: &DistributedConfig,
    seed: u64,
) -> TrainOutput {
    train_impl(net0, corpus, objective, config, WorldMode::Perturbed(seed))
}

/// How the rank world is built and scheduled.
#[derive(Clone, Copy)]
enum WorldMode {
    /// Real clocks, unperturbed schedule.
    Normal,
    /// Frozen shared telemetry clock (byte-identical reruns).
    Deterministic,
    /// Frozen clock plus seeded schedule perturbation + HB tracking.
    Perturbed(u64),
}

fn train_impl(
    net0: &Network<f32>,
    corpus: &Corpus,
    objective: &Objective,
    config: &DistributedConfig,
    mode: WorldMode,
) -> TrainOutput {
    assert!(config.workers >= 1, "need at least one worker");
    config.hf.validate();

    let (train_ids, held_ids) = corpus.split_heldout(config.heldout_frac);
    // Partition by frame counts (the paper's equal-data objective).
    let train_lens: Vec<usize> = train_ids
        .iter()
        .map(|&i| corpus.utterances()[i].frames())
        .collect();
    let train_assign = partition(&train_lens, config.workers, config.strategy);
    let held_lens: Vec<usize> = held_ids
        .iter()
        .map(|&i| corpus.utterances()[i].frames())
        .collect();
    let held_assign = partition(&held_lens, config.workers, config.strategy);

    let dims = net0.dims();
    let theta0 = net0.to_flat();
    let total_train_frames: u64 = train_lens.iter().map(|&l| l as u64).sum();

    enum RoleOutput {
        Master(Box<(Vec<IterStats>, Vec<f32>)>),
        Worker,
    }

    let world = config.workers + 1;
    let body = |comm: &mut Comm| {
        if comm.rank() == 0 {
            // ---- master ----
            let rec = comm.recorder().clone();
            // load_data: ship each worker its utterance id lists.
            let load_span = rec.span("load_data", SpanKind::CommP2p);
            for w in 0..config.workers {
                let t_ids: Vec<u64> = train_assign[w]
                    .iter()
                    .map(|&pos| train_ids[pos] as u64)
                    .collect();
                let h_ids: Vec<u64> = held_assign[w]
                    .iter()
                    .map(|&pos| held_ids[pos] as u64)
                    .collect();
                comm_ok(
                    comm.send(w + 1, TAG_LOAD_DATA, Payload::U64(t_ids)),
                    "train assignment send",
                );
                comm_ok(
                    comm.send(w + 1, TAG_LOAD_DATA, Payload::U64(h_ids)),
                    "heldout assignment send",
                );
            }
            drop(load_span);

            let mut problem = MasterProblem {
                comm,
                rec: rec.clone(),
                theta: theta0.clone(),
                train_frames: total_train_frames,
            };
            // Distribute the initial weights.
            let t0 = problem.theta();
            problem.set_theta(&t0);

            // The optimizer shares the master rank's recorder, so its
            // spans/events land in the same per-rank telemetry stream.
            let mut opt = HfOptimizer::with_recorder(config.hf, rec);
            let stats = opt.train(&mut problem);
            let theta_final = problem.theta();
            problem.command(vec![CMD_SHUTDOWN]);
            // Matching half of the workers' shutdown barrier.
            comm_ok(comm.barrier(), "shutdown barrier");
            RoleOutput::Master(Box::new((stats, theta_final)))
        } else {
            // ---- worker ----
            worker_loop(comm, corpus, objective, &dims, config.threads_per_rank);
            RoleOutput::Worker
        }
    };
    let outcomes: Vec<RankOutcome<RoleOutput>> = match mode {
        WorldMode::Normal => pdnn_mpisim::run_world(world, body),
        WorldMode::Deterministic => pdnn_mpisim::run_world_deterministic(world, body),
        WorldMode::Perturbed(seed) => pdnn_mpisim::run_world_perturbed(world, seed, body),
    };
    let schedule_seed = match mode {
        WorldMode::Perturbed(seed) => Some(seed),
        _ => None,
    };

    let mut network = net0.clone();
    let mut stats = Vec::new();
    let mut master_trace = CommTrace::default();
    let mut master_telemetry = Telemetry::default();
    let mut worker_traces = Vec::new();
    let mut worker_telemetries = Vec::new();
    let mut hb_violations = Vec::new();
    for mut outcome in outcomes {
        outcome.telemetry.schedule_seed = schedule_seed;
        hb_violations.extend(outcome.hb.into_iter().map(|v| (outcome.rank, v)));
        match outcome.result {
            RoleOutput::Master(boxed) => {
                let (s, theta) = *boxed;
                stats = s;
                network.set_flat(&theta);
                master_trace = outcome.trace;
                master_telemetry = outcome.telemetry;
            }
            RoleOutput::Worker => {
                worker_traces.push(outcome.trace);
                worker_telemetries.push(outcome.telemetry);
            }
        }
    }

    let master_phases = master_telemetry.phase_totals();
    let worker_phases = worker_telemetries
        .iter()
        .map(Telemetry::phase_totals)
        .collect();
    TrainOutput {
        network,
        stats,
        master_trace,
        worker_traces,
        master_phases,
        worker_phases,
        master_telemetry,
        worker_telemetries,
        hb_violations,
        schedule_seed,
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;
    use pdnn_speech::CorpusSpec;
    use pdnn_util::Prng;

    fn small_corpus(seed: u64) -> Corpus {
        Corpus::generate(CorpusSpec::tiny(seed))
    }

    fn small_net(corpus: &Corpus, seed: u64) -> Network<f32> {
        let mut rng = Prng::new(seed);
        Network::new(
            &[corpus.spec().feature_dim, 12, corpus.spec().states],
            pdnn_dnn::Activation::Sigmoid,
            &mut rng,
        )
    }

    #[test]
    fn distributed_training_improves_heldout_accuracy() {
        let corpus = small_corpus(3);
        let net0 = small_net(&corpus, 1);
        let mut config = DistributedConfig::default();
        config.workers = 3;
        config.hf.max_iters = 8;
        let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &config);
        assert_eq!(out.stats.len(), 8);
        let first_acc = out
            .stats
            .iter()
            .find(|s| s.accepted)
            .map(|s| s.heldout_accuracy)
            .expect("at least one accepted step");
        let last = out.stats.iter().rev().find(|s| s.accepted).unwrap();
        assert!(
            last.heldout_accuracy >= first_acc,
            "accuracy regressed: {first_acc} -> {}",
            last.heldout_accuracy
        );
        assert!(
            last.heldout_accuracy > 0.5,
            "final accuracy {}",
            last.heldout_accuracy
        );
        // The trained network must differ from the initial one.
        assert_ne!(out.network.to_flat(), net0.to_flat());
    }

    #[test]
    fn worker_count_does_not_change_the_math() {
        // Distributed gradients are sums over a partition of the same
        // data: results for 1 worker and 4 workers must agree to f32
        // reduction tolerance, and both must match the serial problem.
        use crate::problem::DnnProblem;
        let corpus = small_corpus(5);
        let net0 = small_net(&corpus, 2);

        // Serial reference.
        let (train_ids, held_ids) = corpus.split_heldout(0.2);
        let mut serial = DnnProblem::new(
            net0.clone(),
            GemmContext::sequential(),
            corpus.shard(&train_ids),
            corpus.shard(&held_ids),
            Objective::CrossEntropy,
        );
        let (serial_loss, serial_grad) = serial.gradient();

        for workers in [1usize, 2, 4] {
            let config = DistributedConfig {
                workers,
                heldout_frac: 0.2,
                ..Default::default()
            };
            // Capture the first gradient via a one-iteration run's
            // recorded train loss.
            let mut cfg = config.clone();
            cfg.hf.max_iters = 1;
            let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &cfg);
            let s = &out.stats[0];
            assert!(
                (s.train_loss - serial_loss).abs() < 1e-4,
                "workers={workers}: loss {} vs serial {serial_loss}",
                s.train_loss
            );
            assert!(
                (s.grad_norm - pdnn_tensor::blas1::nrm2(&serial_grad)).abs() < 1e-4,
                "workers={workers}: grad norm {} vs {}",
                s.grad_norm,
                pdnn_tensor::blas1::nrm2(&serial_grad)
            );
        }
    }

    #[test]
    fn sequence_objective_trains_distributed() {
        let corpus = small_corpus(7);
        let net0 = small_net(&corpus, 3);
        let objective = Objective::Sequence(corpus.denominator_graph());
        let mut config = DistributedConfig::default();
        config.workers = 2;
        config.hf.max_iters = 4;
        let out = train_distributed(&net0, &corpus, &objective, &config);
        let accepted: Vec<_> = out.stats.iter().filter(|s| s.accepted).collect();
        assert!(!accepted.is_empty(), "no accepted steps");
        let first = accepted.first().unwrap();
        let last = accepted.last().unwrap();
        assert!(
            last.heldout_after <= first.heldout_before,
            "sequence loss did not improve: {} -> {}",
            first.heldout_before,
            last.heldout_after
        );
    }

    #[test]
    fn traces_show_master_collective_and_p2p_traffic() {
        let corpus = small_corpus(9);
        let net0 = small_net(&corpus, 4);
        let mut config = DistributedConfig::default();
        config.workers = 3;
        config.hf.max_iters = 2;
        let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &config);
        // Master: p2p bytes from load_data, collective bytes from the
        // command/theta broadcasts and reduces.
        assert!(out.master_trace.p2p.bytes_sent > 0, "no load_data traffic");
        assert!(out.master_trace.collective.bytes_sent > 0);
        assert_eq!(out.worker_traces.len(), 3);
        for (w, t) in out.worker_traces.iter().enumerate() {
            assert!(t.p2p.bytes_received > 0, "worker {w} got no assignment");
            assert!(t.collective.bytes_received > 0);
        }
        // Worker phases contain the paper's function names.
        for phases in &out.worker_phases {
            assert!(phases.get("gradient_loss").calls > 0);
            assert!(phases.get("eval_heldout").calls > 0);
            assert!(phases.get("sync_weights_worker").calls > 0);
        }
        assert!(out.master_phases.get("sync_weights_master").calls > 0);
        assert!(out.master_phases.get("load_data").calls > 0);
        // Telemetry is the source of truth: the derived views agree
        // with it, and the optimizer's stream landed on the master.
        assert_eq!(out.master_telemetry.comm, out.master_trace);
        assert_eq!(
            out.master_telemetry.counter("hf_iterations"),
            out.stats.len() as u64
        );
        let events: Vec<_> = out
            .master_telemetry
            .events
            .iter()
            .filter(|e| e.name == "hf_iteration")
            .collect();
        assert_eq!(events.len(), out.stats.len());
        assert_eq!(out.worker_telemetries.len(), 3);
        for (w, t) in out.worker_telemetries.iter().enumerate() {
            assert_eq!(&t.comm, &out.worker_traces[w]);
            assert!(t.spans.iter().any(|s| s.name() == "gradient_loss"));
            assert!(t.spans.iter().any(|s| s.name() == "bcast"));
        }
    }

    #[test]
    fn perturbed_schedule_matches_deterministic_run() {
        let corpus = small_corpus(13);
        let net0 = small_net(&corpus, 6);
        let mut config = DistributedConfig::default();
        config.workers = 3;
        config.hf.max_iters = 2;
        let baseline =
            train_distributed_deterministic(&net0, &corpus, &Objective::CrossEntropy, &config);
        assert!(baseline.hb_violations.is_empty());
        assert_eq!(baseline.schedule_seed, None);
        for seed in [1u64, 99] {
            let out = train_distributed_perturbed(
                &net0,
                &corpus,
                &Objective::CrossEntropy,
                &config,
                seed,
            );
            assert_eq!(
                out.hb_violations,
                vec![],
                "seed {seed}: happens-before violations"
            );
            assert_eq!(out.schedule_seed, Some(seed));
            assert_eq!(out.master_telemetry.schedule_seed, Some(seed));
            // Bit-identical weights: the protocol is schedule-independent.
            assert_eq!(
                out.network.to_flat(),
                baseline.network.to_flat(),
                "seed {seed}: weights diverged under perturbation"
            );
        }
    }

    #[test]
    fn more_workers_than_utterances_still_works() {
        let mut spec = CorpusSpec::tiny(11);
        spec.utterances = 3;
        let corpus = Corpus::generate(spec);
        let net0 = small_net(&corpus, 5);
        let mut config = DistributedConfig::default();
        config.workers = 6; // some workers get empty shards
        config.hf.max_iters = 2;
        let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &config);
        assert_eq!(out.stats.len(), 2);
        assert!(out.stats.iter().all(|s| s.train_loss.is_finite()));
    }
}
