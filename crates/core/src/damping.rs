//! Levenberg–Marquardt damping of the Gauss–Newton model.
//!
//! The quadratic model uses `G + λI`; λ is adapted from the agreement
//! ratio `ρ = (L_prev − L_best) / q(d_N)` between actual and predicted
//! reduction, and boosted on outright step rejection.
//!
//! **Documented deviation (see DESIGN.md §2):** the paper's Algorithm 1
//! as printed applies `ρ < 0.25 ⇒ λ ← (2/3)λ` and `ρ > 0.75 ⇒ λ ←
//! (3/2)λ`, which *decreases* damping when the model is untrustworthy —
//! inverted relative to Martens (2010) and inconsistent with the
//! algorithm's own rejection branch. [`LambdaRule::Martens`] implements
//! the standard rule; [`LambdaRule::PaperLiteral`] reproduces the
//! printed text for the ablation bench (`lambda_rule`), which shows it
//! destabilizes training.

/// Which ρ-to-λ update to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LambdaRule {
    /// Martens (2010): `ρ < 1/4 ⇒ λ×3/2`, `ρ > 3/4 ⇒ λ×2/3`.
    Martens,
    /// The paper's Algorithm 1 as literally printed (factors swapped).
    PaperLiteral,
}

/// Damping state.
#[derive(Clone, Copy, Debug)]
pub struct Damping {
    lambda: f64,
    rule: LambdaRule,
}

/// Multiplier applied when a step is rejected or ρ is poor.
pub const BOOST: f64 = 1.5;
/// Multiplier applied when the model agrees well.
pub const DROP: f64 = 2.0 / 3.0;

impl Damping {
    /// Start with `λ = lambda0`.
    pub fn new(lambda0: f64, rule: LambdaRule) -> Self {
        assert!(lambda0 > 0.0, "λ0 must be positive");
        Damping {
            lambda: lambda0,
            rule,
        }
    }

    /// Current λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The rule in effect.
    pub fn rule(&self) -> LambdaRule {
        self.rule
    }

    /// Step rejected (no held-out improvement): `λ ← (3/2)λ`, matching
    /// the paper's failure branch.
    pub fn on_reject(&mut self) {
        self.lambda = (self.lambda * BOOST).clamp(1e-12, 1e12);
    }

    /// Adapt λ from the reduction ratio ρ.
    pub fn adjust(&mut self, rho: f64) {
        let (low_factor, high_factor) = match self.rule {
            LambdaRule::Martens => (BOOST, DROP),
            LambdaRule::PaperLiteral => (DROP, BOOST),
        };
        if rho < 0.25 {
            self.lambda *= low_factor;
        } else if rho > 0.75 {
            self.lambda *= high_factor;
        }
        // Keep λ in a sane numeric range.
        self.lambda = self.lambda.clamp(1e-12, 1e12);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn martens_boosts_on_poor_agreement() {
        let mut d = Damping::new(1.0, LambdaRule::Martens);
        d.adjust(0.1);
        assert!((d.lambda() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn martens_drops_on_good_agreement() {
        let mut d = Damping::new(1.0, LambdaRule::Martens);
        d.adjust(0.9);
        assert!((d.lambda() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn middle_rho_leaves_lambda() {
        let mut d = Damping::new(0.5, LambdaRule::Martens);
        d.adjust(0.5);
        assert_eq!(d.lambda(), 0.5);
    }

    #[test]
    fn paper_literal_is_inverted() {
        let mut d = Damping::new(1.0, LambdaRule::PaperLiteral);
        d.adjust(0.1);
        assert!((d.lambda() - 2.0 / 3.0).abs() < 1e-12);
        let mut d2 = Damping::new(1.0, LambdaRule::PaperLiteral);
        d2.adjust(0.9);
        assert!((d2.lambda() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reject_always_boosts() {
        for rule in [LambdaRule::Martens, LambdaRule::PaperLiteral] {
            let mut d = Damping::new(2.0, rule);
            d.on_reject();
            assert!((d.lambda() - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lambda_is_clamped() {
        let mut d = Damping::new(1e-12, LambdaRule::Martens);
        for _ in 0..200 {
            d.adjust(0.99);
        }
        assert!(d.lambda() >= 1e-12);
        for _ in 0..400 {
            d.on_reject();
        }
        assert!(d.lambda() <= 1e12 * BOOST);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lambda_rejected() {
        Damping::new(0.0, LambdaRule::Martens);
    }
}
