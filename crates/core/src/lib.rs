//! # pdnn-core — distributed Hessian-free DNN training
//!
//! The paper's primary contribution: second-order optimization of deep
//! networks, data-parallel across a master/worker cluster.
//!
//! * [`cg`] — truncated conjugate gradient with Martens'
//!   relative-progress stopping rule and the backtracking iterate
//!   series.
//! * [`damping`] — Levenberg–Marquardt λ adaptation (including the
//!   paper-literal variant for the ablation bench).
//! * [`line_search`] — Armijo backtracking.
//! * [`optimizer`] — Algorithm 1: the outer HF loop.
//! * [`problem`] — the [`HfProblem`] abstraction and its serial DNN
//!   implementation (cross-entropy and MMI sequence objectives).
//! * [`distributed`] — master/worker training over `pdnn-mpisim`
//!   message passing; the master implements the same [`HfProblem`]
//!   trait, so serial and distributed runs share the optimizer code
//!   path exactly.
//!
//! ## Quick start
//!
//! ```
//! use pdnn_core::{DnnProblem, HfConfig, HfOptimizer, Objective};
//! use pdnn_dnn::{Activation, Network};
//! use pdnn_speech::{Corpus, CorpusSpec};
//! use pdnn_tensor::gemm::GemmContext;
//!
//! let corpus = Corpus::generate(CorpusSpec::tiny(42));
//! let (train, held) = corpus.split_heldout(0.25);
//! let mut rng = pdnn_util::Prng::new(1);
//! let net = Network::new(
//!     &[corpus.spec().feature_dim, 12, corpus.spec().states],
//!     Activation::Sigmoid,
//!     &mut rng,
//! );
//! let mut problem = DnnProblem::new(
//!     net,
//!     GemmContext::sequential(),
//!     corpus.shard(&train),
//!     corpus.shard(&held),
//!     Objective::CrossEntropy,
//! );
//! let mut cfg = HfConfig::small_task();
//! cfg.max_iters = 2;
//! let stats = HfOptimizer::new(cfg).train(&mut problem);
//! assert_eq!(stats.len(), 2);
//! ```

pub mod cg;
pub mod config;
pub mod damping;
pub mod distributed;
pub mod line_search;
pub mod optimizer;
pub mod problem;
pub mod stopping;

pub use cg::{cg_minimize, CgConfig, CgResult, CgStop};
pub use config::HfConfig;
pub use damping::{Damping, LambdaRule};
pub use distributed::{
    train_distributed, train_distributed_deterministic, train_distributed_faulted,
    train_distributed_perturbed, DistributedConfig, SyncStrategy, TrainOutput,
};
pub use line_search::{armijo_search, ArmijoConfig};
pub use optimizer::{HfOptimizer, IterStats};
pub use problem::{DnnProblem, HeldoutEval, HfProblem, Objective};
pub use stopping::{StopReason, StopRule};
