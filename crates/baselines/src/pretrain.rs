//! Greedy discriminative layer-wise pretraining.
//!
//! The paper's introduction credits "the development of pre-training
//! algorithms [2]" with making deep networks trainable at all, and its
//! authors' own acoustic-model pipeline (Seide et al. 2011; Sainath et
//! al. 2011 — the paper's refs [6], [8]) uses *discriminative*
//! layer-wise pretraining: train a one-hidden-layer network, then
//! repeatedly insert a fresh hidden layer beneath the output layer and
//! retrain briefly. The result initializes the deep network that
//! Hessian-free training then fine-tunes.

use crate::sgd::{train_sgd, SgdConfig};
use pdnn_dnn::network::{Layer, Network};
use pdnn_dnn::Activation;
use pdnn_speech::Shard;
use pdnn_tensor::gemm::GemmContext;
use pdnn_util::Prng;

/// Pretraining schedule.
#[derive(Clone, Copy, Debug)]
pub struct PretrainConfig {
    /// SGD settings used at each stage (epochs field = epochs per
    /// stage).
    pub sgd: SgdConfig,
    /// Hidden activation for all layers.
    pub activation: Activation,
    /// Seed for the fresh layers inserted at each stage.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            sgd: SgdConfig {
                epochs: 3,
                ..Default::default()
            },
            activation: Activation::Sigmoid,
            seed: 0xBEEF,
        }
    }
}

/// Build and pretrain a deep network of widths `dims`
/// (`[input, h1, …, hk, output]`) by greedy layer insertion.
///
/// Stage 1 trains `[input, h1, output]`; stage `i` inserts `h_i`
/// between the last hidden layer and the output (the output layer is
/// re-initialized, as in discriminative pretraining) and retrains.
/// Returns the full-depth network, ready for fine-tuning.
///
/// # Panics
/// If `dims` has fewer than three entries (no hidden layer).
pub fn discriminative_pretrain(
    dims: &[usize],
    train: &Shard,
    heldout: &Shard,
    ctx: &GemmContext,
    config: &PretrainConfig,
) -> Network<f32> {
    assert!(
        dims.len() >= 3,
        "pretraining needs at least one hidden layer: {dims:?}"
    );
    let input = dims[0];
    // pdnn-lint: allow(l3-no-unwrap): dims arity is asserted at function entry
    let output = *dims.last().unwrap();
    let hidden = &dims[1..dims.len() - 1];
    let mut rng = Prng::new(config.seed);

    // Stage 1: single hidden layer.
    let mut net = Network::new(&[input, hidden[0], output], config.activation, &mut rng);
    train_sgd(&mut net, ctx, train, heldout, &config.sgd);

    // Stages 2..: insert a fresh hidden layer below the output.
    for (stage, &width) in hidden.iter().enumerate().skip(1) {
        let mut layers: Vec<Layer<f32>> = net.layers().to_vec();
        // pdnn-lint: allow(l3-no-unwrap): Network::new asserts at least one layer
        let out_layer = layers.pop().expect("network has an output layer");
        let prev_width = out_layer.inputs();
        // New hidden layer keeps the trained stack below it; the
        // output layer is re-initialized at the new width.
        layers.push(Layer::glorot(
            prev_width,
            width,
            config.activation,
            &mut rng,
        ));
        layers.push(Layer::glorot(width, output, Activation::Identity, &mut rng));
        net = Network::from_layers(layers);
        let _ = stage;
        train_sgd(&mut net, ctx, train, heldout, &config.sgd);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::evaluate;
    use pdnn_dnn::network::Network;
    use pdnn_speech::{Corpus, CorpusSpec};

    fn data(seed: u64) -> (Corpus, Shard, Shard) {
        let corpus = Corpus::generate(CorpusSpec {
            utterances: 96,
            emission_noise: 0.7,
            ..CorpusSpec::tiny(seed)
        });
        let (t, h) = corpus.split_heldout(0.25);
        let train = corpus.shard(&t);
        let held = corpus.shard(&h);
        (corpus, train, held)
    }

    #[test]
    fn produces_the_requested_depth() {
        let (corpus, train, held) = data(21);
        let dims = [corpus.spec().feature_dim, 12, 10, 8, corpus.spec().states];
        let cfg = PretrainConfig {
            sgd: SgdConfig {
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let net = discriminative_pretrain(&dims, &train, &held, &GemmContext::sequential(), &cfg);
        assert_eq!(net.dims(), dims.to_vec());
        assert_eq!(net.layers().len(), 4);
        assert_eq!(net.layers()[0].act, Activation::Sigmoid);
        assert_eq!(net.layers().last().unwrap().act, Activation::Identity);
    }

    #[test]
    fn pretrained_network_beats_chance_before_finetuning() {
        let (corpus, train, held) = data(22);
        let dims = [corpus.spec().feature_dim, 16, 12, corpus.spec().states];
        let net = discriminative_pretrain(
            &dims,
            &train,
            &held,
            &GemmContext::sequential(),
            &PretrainConfig::default(),
        );
        let (_, acc) = evaluate(&net, &GemmContext::sequential(), &held);
        let chance = 1.0 / corpus.spec().states as f64;
        assert!(
            acc > 2.0 * chance,
            "pretrained accuracy {acc} ~ chance {chance}"
        );
    }

    #[test]
    fn pretraining_helps_a_deep_net_versus_random_init() {
        // Same total fine-tune budget from a pretrained vs a random
        // start; the pretrained start must not lose.
        let (corpus, train, held) = data(23);
        let dims = [corpus.spec().feature_dim, 14, 14, 14, corpus.spec().states];
        let ctx = GemmContext::sequential();
        let finetune = SgdConfig {
            epochs: 3,
            ..Default::default()
        };

        let mut pretrained =
            discriminative_pretrain(&dims, &train, &held, &ctx, &PretrainConfig::default());
        train_sgd(&mut pretrained, &ctx, &train, &held, &finetune);
        let (_, acc_pre) = evaluate(&pretrained, &ctx, &held);

        let mut rng = Prng::new(0xBEEF);
        let mut random: Network<f32> = Network::new(&dims, Activation::Sigmoid, &mut rng);
        train_sgd(&mut random, &ctx, &train, &held, &finetune);
        let (_, acc_rand) = evaluate(&random, &ctx, &held);

        assert!(
            acc_pre >= acc_rand - 0.02,
            "pretrained {acc_pre} lost to random {acc_rand}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one hidden layer")]
    fn shallow_dims_rejected() {
        let (_, train, held) = data(24);
        discriminative_pretrain(
            &[10, 6],
            &train,
            &held,
            &GemmContext::sequential(),
            &PretrainConfig::default(),
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (corpus, train, held) = data(25);
        let dims = [corpus.spec().feature_dim, 10, 8, corpus.spec().states];
        let cfg = PretrainConfig {
            sgd: SgdConfig {
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let a = discriminative_pretrain(&dims, &train, &held, &GemmContext::sequential(), &cfg);
        let b = discriminative_pretrain(&dims, &train, &held, &GemmContext::sequential(), &cfg);
        assert_eq!(a.to_flat(), b.to_flat());
    }
}
