//! ADPSGD — asynchronous decentralized parallel SGD (Lian et al.,
//! ICML 2018), the masterless first-order baseline.
//!
//! Where [`crate::parallel_sgd`] reproduces the paper's *synchronous*
//! data-parallel pathology (a global Θ(parameters) allreduce per
//! minibatch), ADPSGD removes both the master and the global barrier:
//! each rank takes SGD steps on its own partition of the data and,
//! after every local update, averages weights with exactly one
//! neighbor — `θᵢ, θⱼ ← (θᵢ + θⱼ)/2`. Per-update traffic is a single
//! point-to-point weight exchange per rank, independent of world
//! size, and no rank is a hotspot.
//!
//! ## What is (and is not) simulated
//!
//! The published algorithm pairs ranks opportunistically as they
//! finish minibatches at different wall-clock speeds. `pdnn-mpisim`
//! worlds are deterministic, so this implementation uses the
//! *round-based* gossip schedule (deterministic odd–even pairing on a
//! ring, the standard D-PSGD analysis device): round `2t` pairs
//! `(0,1)(2,3)…`, round `2t+1` pairs `(1,2)(3,4)…` plus the
//! wrap-around pair `(P−1, 0)` when `P` is even. What the simulation
//! preserves is the defining dynamics — pairwise-only averaging, no
//! coordinator, no global rendezvous, and stale-model mixing (ranks
//! that run out of local minibatches keep gossiping) — while staying
//! bit-reproducible. Wall-clock asynchrony is not modeled.
//!
//! Per-epoch statistics and the returned network are evaluated on the
//! *consensus average* `θ̄ = (1/P)·Σθᵢ`, obtained with a measurement
//! allreduce that is not part of the training algorithm (the paper's
//! convention for reporting decentralized-SGD convergence).

use crate::sgd::{evaluate, EpochStats, SgdConfig};
use pdnn_dnn::loss::cross_entropy;
use pdnn_dnn::network::Network;
use pdnn_mpisim::{comm_ok, run_world, CommTrace, Payload, ReduceOp, Src};
use pdnn_speech::Shard;
use pdnn_tensor::gemm::GemmContext;
use pdnn_tensor::{blas1, Matrix};
use pdnn_util::Prng;

/// Tag base for gossip weight exchanges; round `k` uses
/// `GOSSIP_TAG + k`, well below the collective tag window.
const GOSSIP_TAG: u64 = 0x0AD0_0000;

/// Result of an ADPSGD run.
pub struct AdpsgdOutput {
    /// The consensus-averaged network `θ̄ = (1/P)·Σθᵢ`.
    pub network: Network<f32>,
    /// Per-epoch statistics of the consensus model (identical on all
    /// ranks; rank 0's copy).
    pub stats: Vec<EpochStats>,
    /// Per-rank communication traces. Training traffic is pure
    /// point-to-point; the collective class holds only the per-epoch
    /// measurement allreduces.
    pub traces: Vec<CommTrace>,
    /// Total local SGD updates across all ranks.
    pub updates: usize,
    /// Gossip rounds executed (same on every rank).
    pub gossip_rounds: usize,
}

/// Deterministic odd–even ring pairing: the partner of `rank` in
/// gossip round `round`, or `None` when the rank sits this round out
/// (odd world sizes leave one rank unpaired per round).
fn gossip_partner(rank: usize, size: usize, round: usize) -> Option<usize> {
    if size < 2 {
        return None;
    }
    if round.is_multiple_of(2) {
        // (0,1)(2,3)…; the last rank idles when P is odd.
        if rank.is_multiple_of(2) {
            (rank + 1 < size).then_some(rank + 1)
        } else {
            Some(rank - 1)
        }
    } else if size.is_multiple_of(2) && (rank == 0 || rank == size - 1) {
        // (1,2)(3,4)… plus the ring wrap-around (P−1, 0).
        Some(if rank == 0 { size - 1 } else { 0 })
    } else if rank == 0 {
        None
    } else if !rank.is_multiple_of(2) {
        (rank + 1 < size).then_some(rank + 1)
    } else {
        Some(rank - 1)
    }
}

/// Train with ADPSGD across `ranks` decentralized ranks.
///
/// Frames are partitioned round-robin (`frame i → rank i mod P`);
/// each rank shuffles and minibatches only its own partition, seeded
/// by `config.seed` mixed with its rank so partitions decorrelate.
/// With `ranks == 1` there is no partner and no partition: the run
/// degenerates to [`crate::sgd::train_sgd`] bit-for-bit.
pub fn train_adpsgd(
    net0: &Network<f32>,
    train: &Shard,
    heldout: &Shard,
    config: &SgdConfig,
    ranks: usize,
) -> AdpsgdOutput {
    assert!(ranks >= 1, "need at least one rank");
    assert!(train.frames() > 0, "empty training shard");

    let frames = train.frames();
    let dim = train.x.cols();
    // Every rank can derive every partition size locally, so the
    // shared round count needs no negotiation: the rank with the most
    // minibatches sets the rounds per epoch, and ranks that run dry
    // keep gossiping with stale weights (the asynchrony analogue).
    let rounds_per_epoch = (0..ranks)
        .map(|r| (frames - r).div_ceil(ranks).div_ceil(config.minibatch))
        .max()
        .unwrap_or(0);

    let outcomes = run_world(ranks, |comm| {
        let ctx = GemmContext::sequential();
        let rank = comm.rank();
        let size = comm.size();
        let mut net = net0.clone();
        let mut scratch = net0.clone();
        let n = net.num_params();
        let mut velocity = vec![0.0f32; n];
        let mine: Vec<usize> = (rank..frames).step_by(ranks).collect();
        let mut order = mine.clone();
        let mut rng = Prng::new(config.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut lr = config.learning_rate;
        let mut stats = Vec::new();
        let mut updates = 0usize;
        let mut round = 0usize;

        for epoch in 0..config.epochs {
            rng.shuffle(&mut order);
            let mut batches = order.chunks(config.minibatch);
            let mut loss_sum = 0.0f64;
            let mut seen = 0usize;
            let mut epoch_updates = 0usize;

            for _ in 0..rounds_per_epoch {
                // Local SGD step on this rank's next minibatch, if any.
                if let Some(batch) = batches.next() {
                    let mut x = Matrix::zeros(batch.len(), dim);
                    let mut labels = Vec::with_capacity(batch.len());
                    for (bi, &fi) in batch.iter().enumerate() {
                        x.row_mut(bi).copy_from_slice(train.x.row(fi));
                        labels.push(train.labels[fi]);
                    }
                    let cache = net.forward(&ctx, &x);
                    let out = cross_entropy(cache.logits(), &labels);
                    loss_sum += out.loss;
                    seen += batch.len();
                    let mut grad = pdnn_dnn::backprop::backprop(&net, &ctx, &cache, &out.dlogits);
                    blas1::scal(1.0 / batch.len() as f32, &mut grad);
                    let mu = config.momentum as f32;
                    let eta = lr as f32;
                    for (v, g) in velocity.iter_mut().zip(grad.iter()) {
                        *v = mu * *v - eta * g;
                    }
                    net.axpy_flat(1.0, &velocity);
                    updates += 1;
                    epoch_updates += 1;
                }

                // Pairwise averaging with this round's neighbor: one
                // p2p exchange, no barrier, no coordinator. Momentum
                // stays local (only weights are mixed).
                if let Some(partner) = gossip_partner(rank, size, round) {
                    let mine_now = net.to_flat();
                    let tag = GOSSIP_TAG + round as u64;
                    comm_ok(
                        comm.send(partner, tag, Payload::F32(mine_now.clone())),
                        "gossip send",
                    );
                    let theirs: Vec<f32> =
                        comm_ok(comm.recv_vec(Src::Of(partner), tag), "gossip recv");
                    // Fixed operand order (lower rank first) so both
                    // sides compute bit-identical averages.
                    let (a, b) = if rank < partner {
                        (&mine_now, &theirs)
                    } else {
                        (&theirs, &mine_now)
                    };
                    let avg: Vec<f32> =
                        a.iter().zip(b.iter()).map(|(x, y)| 0.5 * (x + y)).collect();
                    net.set_flat(&avg);
                }
                round += 1;
            }

            // Measurement only: consensus average + pooled loss, so
            // the reported curve tracks the global model the way the
            // decentralized-SGD literature reports convergence.
            let mut consensus = net.to_flat();
            comm_ok(
                comm.allreduce(&mut consensus, ReduceOp::Sum),
                "consensus allreduce",
            );
            blas1::scal(1.0 / size as f32, &mut consensus);
            let mut meta = vec![loss_sum, seen as f64, epoch_updates as f64];
            comm_ok(comm.allreduce(&mut meta, ReduceOp::Sum), "stats allreduce");
            scratch.set_flat(&consensus);
            let (h_loss, h_acc) = evaluate(&scratch, &ctx, heldout);
            stats.push(EpochStats {
                epoch,
                train_loss: meta[0] / meta[1].max(1.0),
                heldout_loss: h_loss,
                heldout_accuracy: h_acc,
                updates: meta[2] as usize,
            });
            lr *= config.lr_decay;
        }

        // Final consensus: the model ADPSGD deploys.
        let mut theta = net.to_flat();
        comm_ok(comm.allreduce(&mut theta, ReduceOp::Sum), "final consensus");
        blas1::scal(1.0 / size as f32, &mut theta);
        let mut total_updates = vec![updates as f64];
        comm_ok(
            comm.allreduce(&mut total_updates, ReduceOp::Sum),
            "update count",
        );
        (theta, stats, total_updates[0] as usize, round)
    });

    let (theta, stats, updates, gossip_rounds) = outcomes[0].result.clone();
    let mut network = net0.clone();
    network.set_flat(&theta);
    AdpsgdOutput {
        network,
        stats,
        traces: outcomes.into_iter().map(|o| o.trace).collect(),
        updates,
        gossip_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::train_sgd;
    use pdnn_dnn::Activation;
    use pdnn_speech::{Corpus, CorpusSpec};

    fn setup(seed: u64) -> (Network<f32>, Shard, Shard) {
        let corpus = Corpus::generate(CorpusSpec::tiny(seed));
        let (train_ids, held_ids) = corpus.split_heldout(0.25);
        let mut rng = Prng::new(1);
        let net = Network::new(
            &[corpus.spec().feature_dim, 10, corpus.spec().states],
            Activation::Sigmoid,
            &mut rng,
        );
        (net, corpus.shard(&train_ids), corpus.shard(&held_ids))
    }

    #[test]
    fn pairing_is_a_matching_every_round() {
        for size in 1..=9usize {
            for round in 0..6 {
                for rank in 0..size {
                    match gossip_partner(rank, size, round) {
                        Some(p) => {
                            assert_ne!(p, rank, "self-pairing at {rank}/{size} round {round}");
                            assert_eq!(
                                gossip_partner(p, size, round),
                                Some(rank),
                                "asymmetric pair ({rank},{p}) at size {size} round {round}"
                            );
                        }
                        None => assert!(
                            size == 1 || size % 2 == 1,
                            "rank {rank} idle in even world {size}"
                        ),
                    }
                }
                // Even worlds pair everyone; odd worlds idle exactly one.
                let idle = (0..size)
                    .filter(|&r| gossip_partner(r, size, round).is_none())
                    .count();
                assert_eq!(idle, if size == 1 { 1 } else { size % 2 });
            }
        }
    }

    #[test]
    fn single_rank_degenerates_to_serial_sgd() {
        let (net, train, held) = setup(3);
        let cfg = SgdConfig {
            epochs: 2,
            minibatch: 40,
            ..Default::default()
        };
        let mut serial_net = net.clone();
        train_sgd(
            &mut serial_net,
            &GemmContext::sequential(),
            &train,
            &held,
            &cfg,
        );
        let out = train_adpsgd(&net, &train, &held, &cfg, 1);
        assert_eq!(out.network.to_flat(), serial_net.to_flat());
    }

    #[test]
    fn adpsgd_is_deterministic_in_the_seed() {
        let (net, train, held) = setup(5);
        let cfg = SgdConfig {
            epochs: 2,
            minibatch: 32,
            ..Default::default()
        };
        let a = train_adpsgd(&net, &train, &held, &cfg, 4);
        let b = train_adpsgd(&net, &train, &held, &cfg, 4);
        assert_eq!(
            a.network.to_flat(),
            b.network.to_flat(),
            "consensus θ not reproducible"
        );
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.gossip_rounds, b.gossip_rounds);
    }

    #[test]
    fn training_traffic_is_balanced_p2p_with_no_hotspot() {
        let (net, train, held) = setup(7);
        // Small minibatches: enough updates that the sync-SGD cost
        // model (one gradient allreduce per update) dwarfs ADPSGD's
        // per-epoch measurement collectives.
        let cfg = SgdConfig {
            epochs: 2,
            minibatch: 8,
            ..Default::default()
        };
        let out = train_adpsgd(&net, &train, &held, &cfg, 4);
        // Gossip is pure p2p and, on an even world, perfectly
        // balanced: every rank pairs every round.
        let sent: Vec<u64> = out.traces.iter().map(|t| t.p2p.bytes_sent).collect();
        assert!(sent[0] > 0);
        assert!(
            sent.iter().all(|&b| b == sent[0]),
            "unbalanced gossip traffic: {sent:?}"
        );
        // The only collective traffic is the per-epoch measurement
        // and final consensus — a handful of allreduces, not one per
        // minibatch like synchronous parallel SGD.
        let n = net.num_params() as u64;
        let per_update_sync_cost = out.updates as u64 / 4 * 4 * n;
        assert!(
            out.traces[0].collective.bytes_sent < per_update_sync_cost,
            "collective bytes {} rival sync-SGD volume {per_update_sync_cost}",
            out.traces[0].collective.bytes_sent
        );
    }

    #[test]
    fn decentralized_ranks_mix_toward_consensus() {
        let (net, train, held) = setup(11);
        let cfg = SgdConfig {
            epochs: 6,
            minibatch: 32,
            ..Default::default()
        };
        let out = train_adpsgd(&net, &train, &held, &cfg, 4);
        let last = out.stats.last().unwrap();
        let first = &out.stats[0];
        assert!(
            last.heldout_loss < first.heldout_loss,
            "consensus model did not improve: {} -> {}",
            first.heldout_loss,
            last.heldout_loss
        );
        assert!(last.heldout_accuracy > 0.5, "{}", last.heldout_accuracy);
        assert!(out.gossip_rounds > 0);
    }
}
