//! Serial minibatch stochastic gradient descent.
//!
//! The paper's baseline: "to date the most popular methodology to
//! train DNNs is the first-order stochastic gradient descent (SGD)
//! optimization technique, which is a serial algorithm executed on a
//! multi-core CPU." Minibatches of 100–1000 frames (Section II.A),
//! momentum, and a multiplicative learning-rate decay per epoch.

use pdnn_dnn::loss::{cross_entropy, cross_entropy_loss_only};
use pdnn_dnn::network::Network;
use pdnn_speech::Shard;
use pdnn_tensor::gemm::GemmContext;
use pdnn_tensor::{blas1, Matrix};
use pdnn_util::Prng;

/// SGD hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct SgdConfig {
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Classical momentum coefficient.
    pub momentum: f64,
    /// Frames per minibatch (paper: "on the order of 100-1,000").
    pub minibatch: usize,
    /// Passes over the training data.
    pub epochs: usize,
    /// Learning-rate multiplier applied after each epoch.
    pub lr_decay: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            learning_rate: 0.1,
            momentum: 0.9,
            minibatch: 256,
            epochs: 10,
            lr_decay: 0.9,
            seed: 77,
        }
    }
}

/// Per-epoch statistics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch (running, pre-update).
    pub train_loss: f64,
    /// Held-out mean loss after the epoch.
    pub heldout_loss: f64,
    /// Held-out frame accuracy after the epoch.
    pub heldout_accuracy: f64,
    /// Number of parameter updates performed.
    pub updates: usize,
}

/// Train `net` in place with serial minibatch SGD on the cross-entropy
/// objective; returns per-epoch statistics.
pub fn train_sgd(
    net: &mut Network<f32>,
    ctx: &GemmContext,
    train: &Shard,
    heldout: &Shard,
    config: &SgdConfig,
) -> Vec<EpochStats> {
    assert!(config.minibatch >= 1, "minibatch must be >= 1");
    assert!(config.epochs >= 1, "epochs must be >= 1");
    assert!(config.learning_rate > 0.0, "learning rate must be positive");
    assert!(train.frames() > 0, "empty training shard");

    let n = net.num_params();
    let frames = train.frames();
    let dim = train.x.cols();
    let mut velocity = vec![0.0f32; n];
    let mut order: Vec<usize> = (0..frames).collect();
    let mut rng = Prng::new(config.seed);
    let mut lr = config.learning_rate;
    let mut stats = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        rng.shuffle(&mut order);
        let mut loss_sum = 0.0f64;
        let mut seen = 0usize;
        let mut updates = 0usize;

        for batch in order.chunks(config.minibatch) {
            // Gather the minibatch rows.
            let mut x = Matrix::zeros(batch.len(), dim);
            let mut labels = Vec::with_capacity(batch.len());
            for (bi, &fi) in batch.iter().enumerate() {
                x.row_mut(bi).copy_from_slice(train.x.row(fi));
                labels.push(train.labels[fi]);
            }
            let cache = net.forward(ctx, &x);
            let out = cross_entropy(cache.logits(), &labels);
            loss_sum += out.loss;
            seen += batch.len();
            let mut grad = pdnn_dnn::backprop::backprop(net, ctx, &cache, &out.dlogits);
            blas1::scal(1.0 / batch.len() as f32, &mut grad);

            // v ← μv − ηg; θ ← θ + v
            let mu = config.momentum as f32;
            let eta = lr as f32;
            for (v, g) in velocity.iter_mut().zip(grad.iter()) {
                *v = mu * *v - eta * g;
            }
            net.axpy_flat(1.0, &velocity);
            updates += 1;
        }

        let (h_loss, h_acc) = evaluate(net, ctx, heldout);
        stats.push(EpochStats {
            epoch,
            train_loss: loss_sum / seen.max(1) as f64,
            heldout_loss: h_loss,
            heldout_accuracy: h_acc,
            updates,
        });
        lr *= config.lr_decay;
    }
    stats
}

/// Mean held-out cross-entropy and frame accuracy.
pub fn evaluate(net: &Network<f32>, ctx: &GemmContext, shard: &Shard) -> (f64, f64) {
    if shard.frames() == 0 {
        return (0.0, 0.0);
    }
    let logits = net.logits(ctx, &shard.x);
    let (loss, correct) = cross_entropy_loss_only(&logits, &shard.labels);
    (
        loss / shard.frames() as f64,
        correct as f64 / shard.frames() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdnn_dnn::Activation;
    use pdnn_speech::{Corpus, CorpusSpec};

    fn setup(seed: u64) -> (Network<f32>, Shard, Shard) {
        let corpus = Corpus::generate(CorpusSpec::tiny(seed));
        let (train_ids, held_ids) = corpus.split_heldout(0.25);
        let mut rng = Prng::new(1);
        let net = Network::new(
            &[corpus.spec().feature_dim, 12, corpus.spec().states],
            Activation::Sigmoid,
            &mut rng,
        );
        (net, corpus.shard(&train_ids), corpus.shard(&held_ids))
    }

    #[test]
    fn sgd_learns_the_tiny_task() {
        let (mut net, train, held) = setup(3);
        let ctx = GemmContext::sequential();
        let (loss0, acc0) = evaluate(&net, &ctx, &held);
        let cfg = SgdConfig {
            epochs: 12,
            minibatch: 64,
            ..Default::default()
        };
        let stats = train_sgd(&mut net, &ctx, &train, &held, &cfg);
        let last = stats.last().unwrap();
        assert!(
            last.heldout_loss < loss0,
            "{} !< {loss0}",
            last.heldout_loss
        );
        assert!(
            last.heldout_accuracy > acc0 && last.heldout_accuracy > 0.5,
            "accuracy {acc0} -> {}",
            last.heldout_accuracy
        );
    }

    #[test]
    fn epoch_loss_trend_is_downward() {
        let (mut net, train, held) = setup(5);
        let ctx = GemmContext::sequential();
        let cfg = SgdConfig {
            epochs: 8,
            ..Default::default()
        };
        let stats = train_sgd(&mut net, &ctx, &train, &held, &cfg);
        assert!(stats.last().unwrap().train_loss < stats[0].train_loss);
        // Update counts: ceil(frames / minibatch) per epoch.
        let per_epoch = train.frames().div_ceil(cfg.minibatch);
        assert!(stats.iter().all(|s| s.updates == per_epoch));
    }

    #[test]
    fn training_is_deterministic_in_the_seed() {
        let (net, train, held) = setup(7);
        let ctx = GemmContext::sequential();
        let cfg = SgdConfig {
            epochs: 2,
            ..Default::default()
        };
        let mut n1 = net.clone();
        let mut n2 = net;
        train_sgd(&mut n1, &ctx, &train, &held, &cfg);
        train_sgd(&mut n2, &ctx, &train, &held, &cfg);
        assert_eq!(n1.to_flat(), n2.to_flat());
    }

    #[test]
    fn zero_momentum_is_plain_sgd() {
        let (mut net, train, held) = setup(9);
        let ctx = GemmContext::sequential();
        let cfg = SgdConfig {
            momentum: 0.0,
            epochs: 3,
            ..Default::default()
        };
        let stats = train_sgd(&mut net, &ctx, &train, &held, &cfg);
        assert!(stats.last().unwrap().heldout_loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty training shard")]
    fn empty_shard_rejected() {
        let (mut net, _, held) = setup(3);
        let ctx = GemmContext::sequential();
        let empty = Shard {
            x: Matrix::zeros(0, net.input_dim()),
            labels: vec![],
            utt_lens: vec![],
        };
        train_sgd(&mut net, &ctx, &empty, &held, &SgdConfig::default());
    }
}
