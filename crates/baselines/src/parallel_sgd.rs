//! Synchronous data-parallel SGD — the approach the paper argues
//! *against*.
//!
//! Section II.A: "Splitting this gradient computation onto a few
//! parallel machines, coupled with the large number of network
//! parameters used in speech tasks, results in large communications
//! costs in passing the gradient vectors from worker machines back to
//! the master. Thus, it is generally cheaper to compute the gradient
//! serially on one machine."
//!
//! This implementation exists to *measure* that claim: each minibatch
//! is split across ranks, gradients are summed with an allreduce, and
//! every rank applies the identical update. The communication volume
//! per update is Θ(P) for P parameters, amortized over only
//! `minibatch` frames — the disastrous ratio the paper describes. The
//! comm ablation bench feeds the measured bytes-per-update into the
//! BG/Q and Ethernet-cluster cost models.

use crate::sgd::{evaluate, EpochStats, SgdConfig};
use pdnn_dnn::loss::cross_entropy;
use pdnn_dnn::network::Network;
use pdnn_mpisim::{comm_ok, run_world, CommTrace, ReduceOp};
use pdnn_speech::Shard;
use pdnn_tensor::gemm::GemmContext;
use pdnn_tensor::{blas1, Matrix};
use pdnn_util::Prng;

/// Result of a synchronous parallel SGD run.
pub struct ParallelSgdOutput {
    /// The trained network (identical on all ranks; rank 0's copy).
    pub network: Network<f32>,
    /// Per-epoch statistics (evaluated on rank 0).
    pub stats: Vec<EpochStats>,
    /// Per-rank communication traces.
    pub traces: Vec<CommTrace>,
    /// Gradient allreduces performed (== parameter updates).
    pub updates: usize,
}

/// Train with synchronous data-parallel SGD across `ranks` ranks.
///
/// Every rank holds the full shard (frame-shuffled identically) and
/// computes the gradient of its slice of each minibatch; an allreduce
/// sums the slices. With the deterministic reduction this produces
/// the same update sequence as serial SGD on the same minibatches, up
/// to f32 summation order.
pub fn train_parallel_sgd(
    net0: &Network<f32>,
    train: &Shard,
    heldout: &Shard,
    config: &SgdConfig,
    ranks: usize,
) -> ParallelSgdOutput {
    assert!(ranks >= 1, "need at least one rank");
    assert!(train.frames() > 0, "empty training shard");

    let frames = train.frames();
    let dim = train.x.cols();

    let outcomes = run_world(ranks, |comm| {
        let ctx = GemmContext::sequential();
        let mut net = net0.clone();
        let n = net.num_params();
        let mut velocity = vec![0.0f32; n];
        let mut order: Vec<usize> = (0..frames).collect();
        let mut rng = Prng::new(config.seed);
        let mut lr = config.learning_rate;
        let mut stats = Vec::new();
        let mut updates = 0usize;

        for epoch in 0..config.epochs {
            rng.shuffle(&mut order);
            let mut loss_sum = 0.0f64;
            let mut seen = 0usize;
            let mut epoch_updates = 0usize;

            for batch in order.chunks(config.minibatch) {
                // Slice of this minibatch owned by this rank.
                let per = batch.len().div_ceil(comm.size());
                let lo = (comm.rank() * per).min(batch.len());
                let hi = ((comm.rank() + 1) * per).min(batch.len());
                let my = &batch[lo..hi];

                let mut grad = vec![0.0f32; n];
                let mut local_loss = 0.0f64;
                if !my.is_empty() {
                    let mut x = Matrix::zeros(my.len(), dim);
                    let mut labels = Vec::with_capacity(my.len());
                    for (bi, &fi) in my.iter().enumerate() {
                        x.row_mut(bi).copy_from_slice(train.x.row(fi));
                        labels.push(train.labels[fi]);
                    }
                    let cache = net.forward(&ctx, &x);
                    let out = cross_entropy(cache.logits(), &labels);
                    local_loss = out.loss;
                    grad = pdnn_dnn::backprop::backprop(&net, &ctx, &cache, &out.dlogits);
                }

                // The expensive part: a Θ(P) allreduce per minibatch.
                comm_ok(
                    comm.allreduce(&mut grad, ReduceOp::Sum),
                    "gradient allreduce",
                );
                let mut meta = vec![local_loss];
                comm_ok(comm.allreduce(&mut meta, ReduceOp::Sum), "loss allreduce");
                loss_sum += meta[0];
                seen += batch.len();

                blas1::scal(1.0 / batch.len() as f32, &mut grad);
                let mu = config.momentum as f32;
                let eta = lr as f32;
                for (v, g) in velocity.iter_mut().zip(grad.iter()) {
                    *v = mu * *v - eta * g;
                }
                net.axpy_flat(1.0, &velocity);
                updates += 1;
                epoch_updates += 1;
            }

            let (h_loss, h_acc) = evaluate(&net, &ctx, heldout);
            stats.push(EpochStats {
                epoch,
                train_loss: loss_sum / seen.max(1) as f64,
                heldout_loss: h_loss,
                heldout_accuracy: h_acc,
                updates: epoch_updates,
            });
            lr *= config.lr_decay;
        }
        (net.to_flat(), stats, updates)
    });

    let (theta, stats, updates) = outcomes[0].result.clone();
    let mut network = net0.clone();
    network.set_flat(&theta);
    ParallelSgdOutput {
        network,
        stats,
        traces: outcomes.into_iter().map(|o| o.trace).collect(),
        updates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::train_sgd;
    use pdnn_dnn::Activation;
    use pdnn_speech::{Corpus, CorpusSpec};

    fn setup(seed: u64) -> (Network<f32>, Shard, Shard) {
        let corpus = Corpus::generate(CorpusSpec::tiny(seed));
        let (train_ids, held_ids) = corpus.split_heldout(0.25);
        let mut rng = Prng::new(1);
        let net = Network::new(
            &[corpus.spec().feature_dim, 10, corpus.spec().states],
            Activation::Sigmoid,
            &mut rng,
        );
        (net, corpus.shard(&train_ids), corpus.shard(&held_ids))
    }

    #[test]
    fn parallel_sgd_matches_serial_updates() {
        let (net, train, held) = setup(3);
        let cfg = SgdConfig {
            epochs: 2,
            minibatch: 50,
            ..Default::default()
        };
        let mut serial_net = net.clone();
        let serial_stats = train_sgd(
            &mut serial_net,
            &GemmContext::sequential(),
            &train,
            &held,
            &cfg,
        );
        let out = train_parallel_sgd(&net, &train, &held, &cfg, 4);
        // Same minibatch sequence, same summed gradients up to f32
        // ordering: final held-out losses must agree closely.
        let s = serial_stats.last().unwrap();
        let p = out.stats.last().unwrap();
        assert!(
            (s.heldout_loss - p.heldout_loss).abs() < 1e-3,
            "serial {} vs parallel {}",
            s.heldout_loss,
            p.heldout_loss
        );
        assert_eq!(s.updates, out.stats.last().unwrap().updates);
    }

    #[test]
    fn all_ranks_converge_to_identical_parameters() {
        let (net, train, held) = setup(5);
        let cfg = SgdConfig {
            epochs: 1,
            minibatch: 32,
            ..Default::default()
        };
        let frames = train.frames();
        let dim = train.x.cols();
        let _ = (frames, dim);
        // Run and confirm outputs at every rank match (the allreduce
        // promise: bitwise-identical updates everywhere).
        let outcomes = run_world(3, |comm| {
            let out = train_parallel_sgd(&net, &train, &held, &cfg, 1);
            let _ = comm;
            out.network.to_flat()
        });
        assert_eq!(outcomes[0].result, outcomes[1].result);
        assert_eq!(outcomes[1].result, outcomes[2].result);
    }

    #[test]
    fn communication_volume_scales_with_parameters_per_update() {
        let (net, train, held) = setup(7);
        let cfg = SgdConfig {
            epochs: 1,
            minibatch: 64,
            ..Default::default()
        };
        let out = train_parallel_sgd(&net, &train, &held, &cfg, 4);
        let p = net.num_params() as u64;
        // Recursive doubling with 4 ranks: log2(4) = 2 rounds, each
        // sending the full gradient (4 bytes/param) plus the loss
        // scalar allreduce.
        let expected_min = out.updates as u64 * 2 * 4 * p;
        let sent = out.traces[0].collective.bytes_sent;
        assert!(
            sent >= expected_min,
            "rank 0 sent {sent} bytes, expected at least {expected_min}"
        );
        // The ratio bytes-per-frame is enormous — the paper's point.
        let frames_total = (train.frames() * cfg.epochs) as u64;
        assert!(
            sent / frames_total > p / 100,
            "comm/compute ratio too good to be true"
        );
    }

    #[test]
    fn single_rank_degenerates_to_serial() {
        let (net, train, held) = setup(9);
        let cfg = SgdConfig {
            epochs: 1,
            minibatch: 40,
            ..Default::default()
        };
        let mut serial_net = net.clone();
        train_sgd(
            &mut serial_net,
            &GemmContext::sequential(),
            &train,
            &held,
            &cfg,
        );
        let out = train_parallel_sgd(&net, &train, &held, &cfg, 1);
        // One rank: same frame order, same arithmetic.
        assert_eq!(out.network.to_flat(), serial_net.to_flat());
    }
}
