//! # pdnn-baselines — the trainers the paper compares against
//!
//! * [`sgd`] — serial minibatch SGD with momentum: "the most popular
//!   methodology to train DNNs" (paper Section II.A), executed on one
//!   multi-core machine.
//! * [`parallel_sgd`] — synchronous data-parallel SGD, implemented to
//!   *measure* the communication pathology the paper cites as the
//!   reason distributed SGD loses to serial SGD: a Θ(parameters)
//!   allreduce per O(hundreds-of-frames) minibatch.
//! * [`adpsgd`] — asynchronous decentralized parallel SGD (Lian et
//!   al. 2018): masterless first-order training via neighbor-pair
//!   weight averaging, the gossip counterpart to the masterless
//!   allreduce sync modes in `pdnn-core`.
//! * [`pretrain`] — greedy discriminative layer-wise pretraining (the
//!   paper's refs [6][8] pipeline), producing the deep-network
//!   initialization Hessian-free training fine-tunes.

pub mod adpsgd;
pub mod parallel_sgd;
pub mod pretrain;
pub mod sgd;

pub use adpsgd::{train_adpsgd, AdpsgdOutput};
pub use parallel_sgd::{train_parallel_sgd, ParallelSgdOutput};
pub use pretrain::{discriminative_pretrain, PretrainConfig};
pub use sgd::{evaluate, train_sgd, EpochStats, SgdConfig};
