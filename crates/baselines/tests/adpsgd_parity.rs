//! Convergence parity: decentralized ADPSGD vs the paper's
//! synchronous distributed Hessian-free trainer (ISSUE 9 acceptance:
//! ADPSGD's held-out loss within 5% of sync HF on the seed speech
//! task).
//!
//! Both trainers start from the same initialization and are scored by
//! the same evaluator on the same held-out shard, so the comparison
//! is units-identical: mean per-frame cross-entropy.

use pdnn_baselines::sgd::{evaluate, SgdConfig};
use pdnn_baselines::train_adpsgd;
use pdnn_core::{train_distributed, DistributedConfig, Objective};
use pdnn_dnn::{Activation, Network};
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_tensor::gemm::GemmContext;
use pdnn_util::Prng;

#[test]
fn adpsgd_reaches_heldout_parity_with_sync_hf() {
    let corpus = Corpus::generate(CorpusSpec::tiny(17));
    let (train_ids, held_ids) = corpus.split_heldout(0.25);
    let train = corpus.shard(&train_ids);
    let held = corpus.shard(&held_ids);
    let mut rng = Prng::new(1);
    let net0 = Network::new(
        &[corpus.spec().feature_dim, 12, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );

    // Sync HF: the paper's master/worker second-order trainer.
    let mut hf_config = DistributedConfig {
        workers: 3,
        ..DistributedConfig::default()
    };
    hf_config.hf.max_iters = 8;
    let hf = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &hf_config)
        .expect("sync HF training failed");

    // ADPSGD: decentralized gossip SGD, enough epochs that the
    // first-order method has a fair shot at the same optimum.
    let sgd_config = SgdConfig {
        epochs: 60,
        minibatch: 16,
        learning_rate: 0.3,
        lr_decay: 0.96,
        ..Default::default()
    };
    let adp = train_adpsgd(&net0, &train, &held, &sgd_config, 4);

    let ctx = GemmContext::sequential();
    let (hf_loss, hf_acc) = evaluate(&hf.network, &ctx, &held);
    let (adp_loss, adp_acc) = evaluate(&adp.network, &ctx, &held);
    eprintln!("held-out loss: sync HF {hf_loss:.4} (acc {hf_acc:.3}), ADPSGD {adp_loss:.4} (acc {adp_acc:.3})");
    assert!(hf_loss.is_finite() && adp_loss.is_finite());
    // Parity: the decentralized first-order baseline lands within 5%
    // of the second-order trainer's held-out loss (better is fine).
    assert!(
        adp_loss <= hf_loss * 1.05,
        "ADPSGD held-out loss {adp_loss} more than 5% above sync HF {hf_loss}"
    );
}
