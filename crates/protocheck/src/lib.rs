//! # pdnn-protocheck
//!
//! Communication-protocol checker and schedule-perturbation race
//! detector for the distributed HF layer (ISSUE 3 tentpole).
//!
//! **Pass 1 (static)** extracts a per-role model of every
//! communication call site in `crates/core/src/distributed.rs` and
//! `crates/mpisim/src/collectives.rs` ([`extract`]) and validates it
//! ([`check`]) against four protocol rules: rank-consistent collective
//! ordering (`p1-collective-order`), matched send/recv tag and payload
//! pairs (`p2-tag-match`), no unconsumed messages at the shutdown
//! barrier (`p3-unconsumed-message`), and command-space integrity
//! (`p4-command-space`). Findings reuse `pdnn-lint`'s diagnostic and
//! suppression machinery — a `// pdnn-lint: allow(p2-tag-match): why`
//! comment waives a protocheck finding exactly like a lint one.
//!
//! **Pass 2 (dynamic)** replays a small training job under K seeded
//! schedule perturbations with vector-clock happens-before tracking
//! ([`dynamic`]), asserting bit-identical weights and byte-identical
//! telemetry for every seed.
//!
//! The **mutation self-test** ([`mutate`]) proves the static rules
//! have teeth: seventeen seeded protocol mutations must each be
//! flagged by the expected rule while the unmutated workspace stays
//! clean.

pub mod check;
pub mod dynamic;
pub mod extract;
pub mod model;
pub mod mutate;
pub mod report;

use pdnn_lint::source::SourceFile;
use pdnn_lint::{Finding, MetaDiag};
use std::fs;
use std::io;
use std::path::Path;

/// Result of the static pass over a workspace root.
pub struct StaticOutcome {
    /// The extracted protocol model (inputs to the mutation self-test).
    pub model: model::Model,
    /// Findings that survived suppression filtering.
    pub findings: Vec<Finding>,
    /// Suppressed findings with the waiver reason.
    pub suppressed: Vec<(Finding, String)>,
    /// Suppression-machinery diagnostics (unused protocheck waivers).
    pub meta: Vec<MetaDiag>,
}

fn load(root: &Path, rel: &str) -> io::Result<SourceFile> {
    let raw = fs::read_to_string(root.join(rel))?;
    Ok(SourceFile::parse(rel, &raw))
}

/// Run the static pass: extract the model from the two protocol
/// surfaces under `root` and check it.
pub fn run_static(root: &Path) -> io::Result<StaticOutcome> {
    let distributed = load(root, extract::DISTRIBUTED_PATH)?;
    let collectives = load(root, extract::COLLECTIVES_PATH)?;
    let model = extract::extract(&distributed, &collectives);
    let mut findings = check::check(&model);

    let file_for = |path: &str| -> &SourceFile {
        if path == extract::COLLECTIVES_PATH {
            &collectives
        } else {
            &distributed
        }
    };
    for f in &mut findings {
        // `raw_line` is 0-indexed; finding lines are 1-based.
        f.snippet = file_for(&f.path)
            .raw_line(f.line.saturating_sub(1))
            .trim()
            .to_string();
    }

    // Suppression filtering, reusing pdnn-lint's directive syntax.
    // Only protocheck's own (p-prefixed) rules are considered here;
    // pdnn-lint owns the rest, including unused-waiver errors for
    // its rules (it skips p-rules for exactly this hand-off).
    let mut suppressed = Vec::new();
    let mut meta = Vec::new();
    for file in [&distributed, &collectives] {
        let (sups, _lint_meta) = pdnn_lint::suppressions(file);
        for sup in sups.iter().filter(|s| s.rule.starts_with('p')) {
            let mut used = false;
            findings.retain(|f| {
                let hit = f.path == file.path && f.rule == sup.rule && f.line == sup.target_line;
                if hit {
                    used = true;
                    suppressed.push((
                        f.clone(),
                        sup.reason
                            .clone()
                            .unwrap_or_else(|| "(no reason)".to_string()),
                    ));
                }
                !hit
            });
            if !used {
                meta.push(MetaDiag {
                    path: file.path.clone(),
                    line: sup.comment_line,
                    message: format!(
                        "{}:{}: allow({}) suppresses nothing: protocheck \
                         reports no `{}` finding on line {}",
                        file.path, sup.comment_line, sup.rule, sup.rule, sup.target_line
                    ),
                });
            }
        }
    }

    Ok(StaticOutcome {
        model,
        findings,
        suppressed,
        meta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> std::path::PathBuf {
        // crates/protocheck -> crates -> repo root
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(Path::to_path_buf)
            .unwrap_or_default()
    }

    #[test]
    fn workspace_protocol_is_clean() {
        let outcome = run_static(&workspace_root()).expect("protocol surfaces readable");
        let rendered: Vec<String> = outcome.findings.iter().map(|f| format!("{f}")).collect();
        assert!(
            outcome.findings.is_empty(),
            "unexpected protocol findings:\n{}",
            rendered.join("\n")
        );
        assert!(outcome.meta.is_empty());
    }

    #[test]
    fn extracted_model_matches_the_protocol_shape() {
        let outcome = run_static(&workspace_root()).expect("protocol surfaces readable");
        let m = &outcome.model;
        // Eight commands (incl. the recovery-path CMD_LOAD_DATA) + the
        // data-load tag.
        assert_eq!(
            m.consts
                .iter()
                .filter(|(n, _, _)| n.starts_with("CMD_"))
                .count(),
            8,
            "{:?}",
            m.consts
        );
        assert_eq!(m.const_value("TAG_LOAD_DATA"), Some(17));
        // Every command the master issues has a worker arm.
        for cmd in &m.commands {
            assert!(cmd.worker.is_some(), "{} has no worker arm", cmd.name);
        }
        assert!(m.command("CMD_GRADIENT").is_some());
        assert!(m.dispatch.is_some(), "worker dispatch bcast not found");
        assert!(m.helper_header_bcast.is_some(), "command helper not found");
        assert!(m.worker_catchall);
        assert_eq!(m.startup_sends.len(), 2);
        assert_eq!(m.startup_recvs.len(), 2);
        // The collective algorithms were all modeled — the masterless
        // ring and binomial-tree tag windows now live in the shared
        // `ring_exchange` / `tree_exchange` bodies (the dispatchers
        // hold no send/recv sites of their own) — plus the
        // peer-coordinated recovery sub-protocol from distributed.rs,
        // whose symmetric fns fall under the same p2 pairing rule.
        for name in [
            "bcast",
            "reduce",
            "allreduce",
            "allreduce_rabenseifner",
            "ring_exchange",
            "tree_exchange",
            "barrier",
            "agree_membership",
            "recover",
        ] {
            assert!(
                m.collective_fns.iter().any(|f| f.name == name),
                "collective `{name}` not extracted"
            );
        }
    }

    #[test]
    fn mutation_selftest_catches_every_mutation() {
        let outcome = run_static(&workspace_root()).expect("protocol surfaces readable");
        let results = mutate::selftest(&outcome.model);
        assert!(results.len() >= 12);
        let missed: Vec<_> = results
            .iter()
            .filter(|r| !r.flagged)
            .map(|r| {
                format!(
                    "{} (expected {}, fired {:?})",
                    r.name, r.expected_rule, r.fired_rules
                )
            })
            .collect();
        assert!(
            missed.is_empty(),
            "uncaught mutations:\n{}",
            missed.join("\n")
        );
    }
}
