//! Machine-readable report (`results/protocheck_report.json`).
//!
//! Hand-rolled JSON, like `pdnn_lint::report` — the workspace has no
//! serde. Sections are optional so the CLI can run any subset of the
//! passes; absent passes serialize as `null`.

use crate::dynamic::DynamicOutcome;
use crate::mutate::MutationResult;
use pdnn_lint::report::{json_escape, push_findings, push_str_list};
use pdnn_lint::Finding;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Everything one CLI invocation learned.
pub struct Report<'a> {
    pub static_findings: Option<&'a [Finding]>,
    pub suppressed: usize,
    pub mutation_results: Option<&'a [MutationResult]>,
    pub dynamic: Option<&'a DynamicOutcome>,
}

/// Render the report as a JSON string.
pub fn render(report: &Report<'_>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"pdnn-protocheck\",\n");
    out.push_str("  \"static\": ");
    match report.static_findings {
        Some(findings) => {
            let _ = write!(
                out,
                "{{\"findings\": {}, \"suppressed\": {}, \"violations\": ",
                findings.len(),
                report.suppressed
            );
            push_findings(&mut out, findings);
            out.push('}');
        }
        None => out.push_str("null"),
    }
    out.push_str(",\n  \"mutation_selftest\": ");
    match report.mutation_results {
        Some(results) => {
            let caught = results.iter().filter(|r| r.flagged).count();
            let _ = write!(
                out,
                "{{\"mutations\": {}, \"caught\": {}, \"results\": [",
                results.len(),
                caught
            );
            for (i, r) in results.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let fired: Vec<String> = r.fired_rules.iter().map(|s| s.to_string()).collect();
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"expected\":\"{}\",\"flagged\":{},\"fired\":",
                    json_escape(r.name),
                    json_escape(r.expected_rule),
                    r.flagged,
                );
                push_str_list(&mut out, &fired);
                out.push('}');
            }
            out.push_str("]}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\n  \"dynamic\": ");
    match report.dynamic {
        Some(d) => {
            let mut seeds = String::new();
            for (i, s) in d.seeds_run.iter().enumerate() {
                if i > 0 {
                    seeds.push(',');
                }
                let _ = write!(seeds, "{s}");
            }
            let mut hb = String::new();
            for (i, (seed, rank, what)) in d.hb_violations.iter().enumerate() {
                if i > 0 {
                    hb.push(',');
                }
                let _ = write!(
                    hb,
                    "{{\"seed\":{seed},\"rank\":{rank},\"violation\":\"{}\"}}",
                    json_escape(what)
                );
            }
            let _ = write!(
                out,
                "{{\"ok\": {}, \"seeds\": [{}], \"hb_violations\": [{}], \
                 \"weight_divergence\": {:?}, \"telemetry_divergence\": {:?}}}",
                d.ok(),
                seeds,
                hb,
                d.weight_divergence,
                d.telemetry_divergence,
            );
        }
        None => out.push_str("null"),
    }
    out.push_str("\n}\n");
    out
}

/// Write the report under `<root>/results/protocheck_report.json`.
pub fn write(root: &Path, report: &Report<'_>) -> io::Result<()> {
    pdnn_lint::report::write_results(root, "protocheck_report.json", &render(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynamicOutcome;

    #[test]
    fn renders_all_sections() {
        let findings = vec![Finding {
            rule: "p1-collective-order",
            path: "crates/core/src/distributed.rs".to_string(),
            line: 7,
            col: 1,
            message: "master \"quoted\" mismatch".to_string(),
            snippet: String::new(),
        }];
        let muts = vec![MutationResult {
            name: "m01",
            expected_rule: "p1-collective-order",
            flagged: true,
            fired_rules: vec!["p1-collective-order"],
        }];
        let dynamic = DynamicOutcome {
            seeds_run: vec![1, 2],
            hb_violations: vec![(2, 1, "RecvBeforeSend".to_string())],
            weight_divergence: vec![],
            telemetry_divergence: vec![2],
        };
        let json = render(&Report {
            static_findings: Some(&findings),
            suppressed: 1,
            mutation_results: Some(&muts),
            dynamic: Some(&dynamic),
        });
        assert!(json.contains("\"tool\": \"pdnn-protocheck\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"caught\": 1"));
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"seed\":2"));
    }

    #[test]
    fn absent_passes_serialize_as_null() {
        let json = render(&Report {
            static_findings: None,
            suppressed: 0,
            mutation_results: None,
            dynamic: None,
        });
        assert!(json.contains("\"static\": null"));
        assert!(json.contains("\"mutation_selftest\": null"));
        assert!(json.contains("\"dynamic\": null"));
    }
}
