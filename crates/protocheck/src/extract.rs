//! Pass-1 extraction: reduce the protocol source files to a
//! [`Model`].
//!
//! The extractor is lexical, like `pdnn-lint` itself: it works on the
//! masked view of each file ([`pdnn_lint::source::SourceFile`]), so
//! comments and string literals can never fool it. It understands
//! exactly the idioms the distributed trainer uses — `comm.bcast`,
//! `comm.reduce`, `comm.send`, `comm.recv_vec::<T>`, `comm.recv`,
//! `comm.barrier`, and the `.command(vec![CMD_*])` header marker — and
//! infers buffer element kinds from `let` statements, struct fields,
//! and function-parameter signatures.

use crate::model::{CollectiveFn, CommandSpec, ElemKind, Model, Op, Peer, SeqOp, Site};
use pdnn_lint::source::{find_word, is_ident_char, match_brace, SourceFile};
use std::ops::Range;

/// The master/worker command loop.
pub const DISTRIBUTED_PATH: &str = "crates/core/src/distributed.rs";
/// The collective algorithms whose internal tags must pair up.
pub const COLLECTIVES_PATH: &str = "crates/mpisim/src/collectives.rs";

/// One `.name(args)` communication call site in the masked text.
#[derive(Clone, Debug)]
struct Call {
    name: &'static str,
    /// Byte offset of the method name.
    offset: usize,
    /// Turbofish type argument (`recv_vec::<u64>` → `"u64"`).
    turbofish: Option<String>,
    /// Top-level argument texts, trimmed.
    args: Vec<String>,
}

/// A `fn` item with signature and body byte ranges.
#[derive(Clone, Debug)]
struct FnSpan {
    name: String,
    /// `fn` keyword offset (for line mapping).
    offset: usize,
    /// Signature text range (`fn` keyword to the body `{`).
    sig: Range<usize>,
    body: Range<usize>,
}

const OP_NAMES: &[&str] = &[
    "bcast",
    "reduce",
    "send",
    "recv_vec_timeout",
    "recv_vec",
    "recv_timeout",
    "recv",
    "barrier",
    "command",
];

fn site(file: &SourceFile, offset: usize) -> Site {
    Site::new(&file.path, file.line_of(offset) + 1)
}

/// Scan `range` of the masked text for communication method calls.
fn scan_calls(file: &SourceFile, range: Range<usize>) -> Vec<Call> {
    let text = &file.masked;
    let b = text.as_bytes();
    let mut out = Vec::new();
    for &name in OP_NAMES {
        let mut from = range.start;
        while let Some(pos) = find_word(text, name, from) {
            if pos >= range.end {
                break;
            }
            from = pos + name.len();
            if pos == 0 || b[pos - 1] != b'.' {
                continue;
            }
            let mut j = pos + name.len();
            // Optional turbofish `::<T>`.
            let mut turbofish = None;
            if text[j..].starts_with("::<") {
                let mut depth = 0i32;
                let mut k = j + 2;
                while k < b.len() {
                    match b[k] {
                        b'<' => depth += 1,
                        b'>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if k >= b.len() {
                    continue;
                }
                turbofish = Some(text[j + 3..k].trim().to_string());
                j = k + 1;
            }
            while j < b.len() && (b[j] as char).is_whitespace() {
                j += 1;
            }
            if j >= b.len() || b[j] != b'(' {
                continue;
            }
            let Some(args) = parse_args(text, j) else {
                continue;
            };
            out.push(Call {
                name,
                offset: pos,
                turbofish,
                args,
            });
        }
    }
    out.sort_by_key(|c| c.offset);
    out
}

/// Parse a balanced argument list starting at the `(` at `open`;
/// returns the top-level comma-split argument texts.
fn parse_args(text: &str, open: usize) -> Option<Vec<String>> {
    let b = text.as_bytes();
    let mut depth = 0i32;
    let mut args = Vec::new();
    let mut start = open + 1;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    let last = text[start..i].trim();
                    if !last.is_empty() {
                        args.push(last.to_string());
                    }
                    return Some(args);
                }
            }
            b',' if depth == 1 => {
                args.push(text[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Split `text` on commas at bracket depth zero.
fn split_top_commas(text: &str) -> Vec<String> {
    let b = text.as_bytes();
    let mut depth = 0i32;
    let mut out = Vec::new();
    let mut start = 0;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                out.push(text[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = text[start..].trim();
    if !last.is_empty() {
        out.push(last.to_string());
    }
    out
}

/// Find every `fn` item inside `region` (signature + body ranges).
fn fns_in(text: &str, region: Range<usize>) -> Vec<FnSpan> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut from = region.start;
    while let Some(pos) = find_word(text, "fn", from) {
        if pos >= region.end {
            break;
        }
        from = pos + 2;
        let mut j = pos + 2;
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < b.len() && is_ident_char(b[j] as char) {
            j += 1;
        }
        if j == name_start {
            continue; // `fn` pointer type
        }
        let name = text[name_start..j].to_string();
        // Parameter list: first `(` after the name (generics contain
        // no parens in this codebase), then its matching `)`.
        let Some(open_paren) = text[j..].find('(').map(|p| j + p) else {
            continue;
        };
        let mut depth = 0i32;
        let mut k = open_paren;
        let mut close_paren = None;
        while k < b.len() {
            match b[k] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        close_paren = Some(k);
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let Some(close_paren) = close_paren else {
            continue;
        };
        // Body: first `{` at paren depth zero after the params (the
        // return type may contain `()` but never braces).
        let mut depth = 0i32;
        let mut k = close_paren + 1;
        let mut body = None;
        while k < b.len() && k < region.end {
            match b[k] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                b'{' if depth == 0 => {
                    if let Some(close) = match_brace(text, k) {
                        body = Some((k, close));
                    }
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some((open, close)) = body else {
            continue;
        };
        out.push(FnSpan {
            name,
            offset: pos,
            sig: pos..open,
            body: open + 1..close,
        });
        from = close;
    }
    out
}

/// Byte range of the block following the first occurrence of `pat`.
fn block_after(text: &str, pat: &str) -> Option<Range<usize>> {
    let pos = text.find(pat)?;
    let open = text[pos..].find('{').map(|p| pos + p)?;
    let close = match_brace(text, open)?;
    Some(open + 1..close)
}

// ---------------------------------------------------------------
// Kind / length inference
// ---------------------------------------------------------------

/// Does `text` mention `tok` (`f32`/`f64`/`u64`) as a type or literal
/// suffix? Word-boundary on the right; on the left either a
/// non-identifier character or a digit/`.` (so `0.0f32` counts).
fn has_type_token(text: &str, tok: &str) -> bool {
    let b = text.as_bytes();
    let mut i = 0;
    while let Some(p) = text[i..].find(tok).map(|p| i + p) {
        i = p + 1;
        let end = p + tok.len();
        if end < b.len() && is_ident_char(b[end] as char) {
            continue;
        }
        if p == 0 {
            return true;
        }
        let prev = b[p - 1] as char;
        if !is_ident_char(prev) || prev.is_ascii_digit() || prev == '.' {
            return true;
        }
    }
    false
}

/// The unique element-kind hint in `text`, or `Unknown` when zero or
/// several hints appear.
fn kind_hint(text: &str) -> ElemKind {
    match (
        has_type_token(text, "f32"),
        has_type_token(text, "f64"),
        has_type_token(text, "u64"),
    ) {
        (true, false, false) => ElemKind::F32,
        (false, true, false) => ElemKind::F64,
        (false, false, true) => ElemKind::U64,
        _ => ElemKind::Unknown,
    }
}

/// Statically-known element count of the first `vec![..]` in `text`.
fn vec_len(text: &str) -> Option<usize> {
    let open = text.find("vec![")? + 4;
    let b = text.as_bytes();
    let mut depth = 0i32;
    let mut close = None;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'[' | b'(' | b'{' => depth += 1,
            b']' | b')' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let inner = &text[open + 1..close?];
    // `[expr; N]` repeat form: countable only for integer N.
    let semi = {
        let bi = inner.as_bytes();
        let mut depth = 0i32;
        let mut found = None;
        for (i, &c) in bi.iter().enumerate() {
            match c {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth == 0 => {
                    found = Some(i);
                    break;
                }
                _ => {}
            }
        }
        found
    };
    if let Some(s) = semi {
        return inner[s + 1..].trim().parse::<usize>().ok();
    }
    if inner.trim().is_empty() {
        return Some(0);
    }
    Some(split_top_commas(inner).len())
}

/// A `let` statement in `body` whose binding pattern names `ident`.
#[derive(Clone)]
struct LetStmt {
    /// Whole statement text (`let` through `;`).
    text: String,
    /// Offset of the `let` keyword.
    offset: usize,
    /// Right-hand side text (after the `=`).
    rhs: String,
}

/// All `let` statements before `upto` in `body` that bind `ident`,
/// source order.
fn lets_binding(text: &str, body: &Range<usize>, upto: usize, ident: &str) -> Vec<LetStmt> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut from = body.start;
    while let Some(pos) = find_word(text, "let", from) {
        if pos >= upto || pos >= body.end {
            break;
        }
        from = pos + 3;
        // Pattern runs to the first top-level `=` (not ==, =>, <=…).
        let mut i = pos + 3;
        let mut depth = 0i32;
        let mut eq = None;
        while i < body.end {
            match b[i] {
                b'(' | b'[' | b'{' | b'<' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'>' if i > 0 && b[i - 1] != b'-' && b[i - 1] != b'=' => depth -= 1,
                b'=' if depth <= 0 => {
                    let next = b.get(i + 1).copied().unwrap_or(0);
                    let prev = b[i - 1];
                    if next != b'=' && prev != b'=' && prev != b'!' && prev != b'<' && prev != b'>'
                    {
                        eq = Some(i);
                        break;
                    }
                }
                b';' if depth <= 0 => break,
                _ => {}
            }
            i += 1;
        }
        let Some(eq) = eq else {
            continue;
        };
        let pattern = &text[pos + 3..eq];
        if find_word(pattern, ident, 0).is_none() {
            continue;
        }
        // Statement ends at the `;` at bracket depth zero after `=`.
        let mut depth = 0i32;
        let mut j = eq + 1;
        let mut end = None;
        while j < body.end {
            match b[j] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth == 0 => {
                    end = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(end) = end else {
            continue;
        };
        out.push(LetStmt {
            text: text[pos..=end].to_string(),
            offset: pos,
            rhs: text[eq + 1..end].trim().to_string(),
        });
        from = end;
    }
    out
}

/// Leading identifier of an expression (after `&`/`mut`), or `None`
/// for macro invocations and non-ident starts.
fn root_ident(expr: &str) -> Option<(String, String)> {
    let mut e = expr.trim();
    loop {
        if let Some(r) = e.strip_prefix('&') {
            e = r.trim_start();
        } else if let Some(r) = e.strip_prefix("mut ") {
            e = r.trim_start();
        } else {
            break;
        }
    }
    let b = e.as_bytes();
    let mut j = 0;
    while j < b.len() && is_ident_char(b[j] as char) {
        j += 1;
    }
    if j == 0 {
        return None;
    }
    let name = e[..j].to_string();
    if b.get(j) == Some(&b'!') {
        return None; // macro call like vec![..]
    }
    Some((name, e[j..].to_string()))
}

/// Look up a struct-field type hint: first `field:` occurrence in the
/// file with a recognizable element kind nearby.
fn field_kind(file: &SourceFile, field: &str) -> ElemKind {
    let text = &file.masked;
    let b = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = find_word(text, field, from) {
        from = pos + field.len();
        let mut j = pos + field.len();
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
        if b.get(j) != Some(&b':') {
            continue;
        }
        // Type text runs to the end of the field declaration.
        let mut depth = 0i32;
        let mut k = j + 1;
        while k < b.len() {
            match b[k] {
                b'<' | b'(' | b'[' => depth += 1,
                b'>' | b')' | b']' => depth -= 1,
                b',' | b';' | b'\n' | b'}' if depth <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        let hint = kind_hint(&text[j + 1..k]);
        if hint != ElemKind::Unknown {
            return hint;
        }
    }
    ElemKind::Unknown
}

/// Type hint of a function parameter named `ident`.
fn param_kind(sig_text: &str, ident: &str) -> ElemKind {
    let b = sig_text.as_bytes();
    let mut from = 0;
    while let Some(pos) = find_word(sig_text, ident, from) {
        from = pos + ident.len();
        let mut j = pos + ident.len();
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
        if b.get(j) != Some(&b':') {
            continue;
        }
        // Type runs to the next top-level `,` or `)`.
        let mut depth = 0i32;
        let mut k = j + 1;
        while k < b.len() {
            match b[k] {
                b'(' | b'[' | b'<' => depth += 1,
                b']' | b'>' => depth -= 1,
                b')' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                b',' if depth <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        return kind_hint(&sig_text[j + 1..k]);
    }
    ElemKind::Unknown
}

/// Infer the element kind and static length of the buffer named
/// `ident` at `call_offset`, from its `let` chain, struct fields, or
/// the enclosing function's parameters.
fn buffer_kind(
    file: &SourceFile,
    f: &FnSpan,
    call_offset: usize,
    ident: &str,
    depth: usize,
) -> (ElemKind, Option<usize>) {
    if depth > 3 {
        return (ElemKind::Unknown, None);
    }
    let text = &file.masked;
    let lets = lets_binding(text, &f.body, call_offset, ident);
    let mut len = None;
    // Newest binding first: the closest `let` is authoritative for
    // length; for the kind, walk outward until a hint resolves.
    for stmt in lets.iter().rev() {
        if len.is_none() {
            len = vec_len(&stmt.text);
        }
        let k = kind_hint(&stmt.text);
        if k != ElemKind::Unknown {
            return (k, len);
        }
        if let Some((root, rest)) = root_ident(&stmt.rhs) {
            if root == "self" {
                if let Some((field, _)) = root_ident(rest.trim_start_matches('.')) {
                    let k = field_kind(file, &field);
                    if k != ElemKind::Unknown {
                        return (k, len);
                    }
                }
            } else if root != ident {
                let (k, inner_len) = buffer_kind(file, f, stmt.offset, &root, depth + 1);
                if k != ElemKind::Unknown {
                    return (k, len.or(inner_len));
                }
            }
        }
    }
    let k = param_kind(&text[f.sig.clone()], ident);
    (k, len)
}

// ---------------------------------------------------------------
// Per-call op construction
// ---------------------------------------------------------------

fn resolve_rank(expr: &str, consts: &[(String, u64, Site)]) -> Option<usize> {
    let e = expr.trim();
    if let Ok(n) = e.parse::<usize>() {
        return Some(n);
    }
    consts
        .iter()
        .find(|(name, _, _)| name == e)
        .map(|(_, v, _)| *v as usize)
}

fn resolve_tag(expr: &str, consts: &[(String, u64, Site)]) -> Option<u64> {
    let e = expr.trim();
    if let Ok(n) = e.parse::<u64>() {
        return Some(n);
    }
    consts
        .iter()
        .find(|(name, _, _)| name == e)
        .map(|(_, v, _)| *v)
}

fn peer_of(expr: &str, consts: &[(String, u64, Site)]) -> Peer {
    let e = expr.trim();
    if e == "Src::Any" {
        return Peer::AnySource;
    }
    let inner = e
        .strip_prefix("Src::Of(")
        .and_then(|r| r.strip_suffix(')'))
        .unwrap_or(e);
    match resolve_rank(inner, consts) {
        Some(r) => Peer::Rank(r),
        None => Peer::EachWorker,
    }
}

fn payload_kind(expr: &str) -> ElemKind {
    let e = expr.trim();
    if e.starts_with("Payload::U64") {
        ElemKind::U64
    } else if e.starts_with("Payload::F32") {
        ElemKind::F32
    } else if e.starts_with("Payload::F64") {
        ElemKind::F64
    } else if e.starts_with("Payload::Empty") {
        ElemKind::Empty
    } else {
        ElemKind::Unknown
    }
}

fn turbofish_kind(t: &Option<String>) -> ElemKind {
    match t.as_deref() {
        Some("f32") => ElemKind::F32,
        Some("f64") => ElemKind::F64,
        Some("u64") => ElemKind::U64,
        _ => ElemKind::Unknown,
    }
}

/// Build a model [`Op`] from a call site, or `None` for non-op calls
/// (`command` markers are handled by the caller).
fn op_of(
    file: &SourceFile,
    f: &FnSpan,
    call: &Call,
    consts: &[(String, u64, Site)],
) -> Option<SeqOp> {
    let op = match call.name {
        "bcast" => {
            let (kind, len) = buffer_of(file, f, call, 0);
            Op::Bcast {
                root: call.args.get(1).and_then(|a| resolve_rank(a, consts)),
                kind,
                len,
            }
        }
        "reduce" => {
            let (kind, len) = buffer_of(file, f, call, 0);
            Op::Reduce {
                root: call.args.get(2).and_then(|a| resolve_rank(a, consts)),
                kind,
                len,
            }
        }
        "barrier" => Op::Barrier,
        "send" => Op::Send {
            to: call
                .args
                .first()
                .map(|a| peer_of(a, consts))
                .unwrap_or(Peer::AnySource),
            tag: call.args.get(1).and_then(|a| resolve_tag(a, consts)),
            kind: call
                .args
                .get(2)
                .map(|a| payload_kind(a))
                .unwrap_or(ElemKind::Unknown),
        },
        "recv_vec" | "recv" | "recv_vec_timeout" | "recv_timeout" => Op::Recv {
            from: call
                .args
                .first()
                .map(|a| peer_of(a, consts))
                .unwrap_or(Peer::AnySource),
            tag: call.args.get(1).and_then(|a| resolve_tag(a, consts)),
            kind: if call.name.starts_with("recv_vec") {
                turbofish_kind(&call.turbofish)
            } else {
                ElemKind::Unknown
            },
        },
        _ => return None,
    };
    Some(SeqOp {
        op,
        site: site(file, call.offset),
    })
}

fn buffer_of(file: &SourceFile, f: &FnSpan, call: &Call, arg: usize) -> (ElemKind, Option<usize>) {
    let Some(expr) = call.args.get(arg) else {
        return (ElemKind::Unknown, None);
    };
    let Some((ident, _)) = root_ident(expr) else {
        return (ElemKind::Unknown, None);
    };
    if ident == "self" {
        let rest = expr.trim().trim_start_matches(['&', ' ']).trim_start();
        if let Some(field_part) = rest.strip_prefix("self.") {
            if let Some((field, _)) = root_ident(field_part) {
                return (field_kind(file, &field), None);
            }
        }
        return (ElemKind::Unknown, None);
    }
    buffer_kind(file, f, call.offset, &ident, 0)
}

// ---------------------------------------------------------------
// distributed.rs structure
// ---------------------------------------------------------------

fn scan_consts(file: &SourceFile) -> Vec<(String, u64, Site)> {
    let mut out = Vec::new();
    for (i, line) in file.masked.lines().enumerate() {
        if file.test_lines.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = line.trim();
        let Some(rest) = t.strip_prefix("const ") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if !(name.starts_with("CMD_") || name.starts_with("TAG_")) {
            continue;
        }
        let Some((_ty, value)) = rest.split_once('=') else {
            continue;
        };
        if let Ok(v) = value.trim().trim_end_matches(';').trim().parse::<u64>() {
            out.push((name.to_string(), v, Site::new(&file.path, i + 1)));
        }
    }
    out
}

/// Parse a `.command(vec![CMD_X, ..])` marker: command name and
/// header word count.
fn command_marker(call: &Call) -> Option<(String, usize)> {
    let arg = call.args.first()?;
    let inner = arg.strip_prefix("vec!")?.trim();
    let inner = inner.strip_prefix('[')?.strip_suffix(']')?;
    let elems = split_top_commas(inner);
    let first = elems.first()?;
    let (name, _) = root_ident(first)?;
    Some((name, elems.len()))
}

/// One parsed worker match arm.
struct Arm {
    pattern: String,
    pattern_offset: usize,
    body: Range<usize>,
}

/// Split the arms of the `match` block spanning `open+1..close`.
fn parse_arms(text: &str, open: usize, close: usize) -> Vec<Arm> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        while i < close && (b[i] as char).is_whitespace() {
            i += 1;
        }
        if i >= close {
            break;
        }
        let pat_start = i;
        // Pattern runs to `=>` at depth zero.
        let mut depth = 0i32;
        let mut arrow = None;
        while i < close {
            match b[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'=' if depth == 0 && b.get(i + 1) == Some(&b'>') => {
                    arrow = Some(i);
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let Some(arrow) = arrow else {
            break;
        };
        let pattern = text[pat_start..arrow].trim().to_string();
        let pattern_offset = pat_start;
        i = arrow + 2;
        while i < close && (b[i] as char).is_whitespace() {
            i += 1;
        }
        if i < close && b[i] == b'{' {
            let Some(block_close) = match_brace(text, i) else {
                break;
            };
            out.push(Arm {
                pattern,
                pattern_offset,
                body: i + 1..block_close,
            });
            i = block_close + 1;
            if i < close && b[i] == b',' {
                i += 1;
            }
        } else {
            let body_start = i;
            let mut depth = 0i32;
            while i < close {
                match b[i] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' | b'}' => depth -= 1,
                    b',' if depth == 0 => break,
                    _ => {}
                }
                i += 1;
            }
            out.push(Arm {
                pattern,
                pattern_offset,
                body: body_start..i,
            });
            i += 1;
        }
    }
    out
}

fn find_or_insert<'m>(model: &'m mut Model, name: &str, anchor: &Site) -> &'m mut CommandSpec {
    if let Some(i) = model.commands.iter().position(|c| c.name == name) {
        return &mut model.commands[i];
    }
    let value = model.const_value(name);
    model.commands.push(CommandSpec {
        name: name.to_string(),
        value,
        header_len: None,
        master: None,
        worker: None,
        master_site: anchor.clone(),
        worker_site: anchor.clone(),
    });
    let last = model.commands.len() - 1;
    &mut model.commands[last]
}

/// Extract master-side command sequences from `MasterProblem`.
///
/// The `HfProblem` impl delegates the wire work to fallible `try_*`
/// helpers on the inherent impl, so both regions are scanned; the
/// `command` header helper is modeled separately
/// ([`extract_command_helper`]) and skipped here.
fn extract_master_impl(file: &SourceFile, model: &mut Model) {
    let inherent = block_after(&file.masked, "impl MasterProblem");
    let trait_impl = block_after(&file.masked, "impl HfProblem for MasterProblem");
    let mut fns = Vec::new();
    for region in [inherent, trait_impl].into_iter().flatten() {
        fns.extend(fns_in(&file.masked, region));
    }
    for f in fns {
        if f.name == "command" {
            continue;
        }
        let mut current: Option<String> = None;
        for call in scan_calls(file, f.body.clone()) {
            if call.name == "command" {
                let marker_site = site(file, call.offset);
                if let Some((name, header_len)) = command_marker(&call) {
                    let spec = find_or_insert(model, &name, &marker_site);
                    spec.header_len = Some(header_len);
                    spec.master = Some(Vec::new());
                    spec.master_site = marker_site;
                    current = Some(name);
                }
                continue;
            }
            let Some(seq_op) = op_of(file, &f, &call, &model.consts) else {
                continue;
            };
            match &current {
                Some(name) => {
                    let anchor = seq_op.site.clone();
                    if let Some(spec) = model.command_mut(name) {
                        if let Some(seq) = spec.master.as_mut() {
                            seq.push(seq_op);
                        }
                    } else {
                        let spec = find_or_insert(model, name, &anchor);
                        spec.master = Some(vec![seq_op]);
                    }
                }
                None => model.orphan_master_ops.push(seq_op),
            }
        }
    }
}

/// Extract the `command` helper's header broadcast.
fn extract_command_helper(file: &SourceFile, model: &mut Model) {
    let Some(region) = block_after(&file.masked, "impl MasterProblem") else {
        return;
    };
    for f in fns_in(&file.masked, region.clone()) {
        if f.name != "command" {
            continue;
        }
        for call in scan_calls(file, f.body.clone()) {
            if call.name == "bcast" {
                model.helper_header_bcast = op_of(file, &f, &call, &model.consts);
                return;
            }
        }
    }
}

/// Extract the master's startup sends and shutdown sequence from the
/// rank-0 branch of the world closure.
fn extract_master_branch(file: &SourceFile, model: &mut Model) {
    let Some(region) = block_after(&file.masked, "if comm.rank() == 0") else {
        return;
    };
    // A pseudo-fn spanning the branch, for buffer inference.
    let f = FnSpan {
        name: "master_branch".to_string(),
        offset: region.start,
        sig: region.start..region.start,
        body: region.clone(),
    };
    let mut after_shutdown = false;
    for call in scan_calls(file, region.clone()) {
        if call.name == "command" {
            let marker_site = site(file, call.offset);
            if let Some((name, header_len)) = command_marker(&call) {
                let spec = find_or_insert(model, &name, &marker_site);
                spec.header_len = Some(header_len);
                if spec.master.is_none() {
                    spec.master = Some(Vec::new());
                }
                spec.master_site = marker_site;
                after_shutdown = true;
            }
            continue;
        }
        let Some(seq_op) = op_of(file, &f, &call, &model.consts) else {
            continue;
        };
        if after_shutdown {
            model.shutdown_master.push(seq_op);
        } else if matches!(seq_op.op, Op::Send { .. }) {
            model.startup_sends.push(seq_op);
        } else {
            model.orphan_master_ops.push(seq_op);
        }
    }
}

/// Extract the worker loop: startup receives, dispatch broadcast,
/// per-command arms, catch-all, and the post-loop shutdown sequence.
fn extract_worker(file: &SourceFile, model: &mut Model) {
    let text = &file.masked;
    let Some(f) = fns_in(text, 0..text.len())
        .into_iter()
        .find(|f| f.name == "worker_loop")
    else {
        return;
    };
    model.worker_match_site = site(file, f.offset);
    let Some(loop_kw) = find_word(text, "loop", f.body.start).filter(|&p| p < f.body.end) else {
        return;
    };
    let Some(loop_open) = text[loop_kw..].find('{').map(|p| loop_kw + p) else {
        return;
    };
    let Some(loop_close) = match_brace(text, loop_open) else {
        return;
    };

    // Startup receives: every op before the loop.
    for call in scan_calls(file, f.body.start..loop_kw) {
        if let Some(seq_op) = op_of(file, &f, &call, &model.consts) {
            model.startup_recvs.push(seq_op);
        }
    }

    // Dispatch: the header broadcast between `loop {` and `match`.
    let Some(match_kw) = find_word(text, "match", loop_open).filter(|&p| p < loop_close) else {
        return;
    };
    model.worker_match_site = site(file, match_kw);
    for call in scan_calls(file, loop_open + 1..match_kw) {
        if call.name == "bcast" && model.dispatch.is_none() {
            model.dispatch = op_of(file, &f, &call, &model.consts);
        }
    }

    // Arms.
    let Some(match_open) = text[match_kw..].find('{').map(|p| match_kw + p) else {
        return;
    };
    let Some(match_close) = match_brace(text, match_open) else {
        return;
    };
    for arm in parse_arms(text, match_open, match_close) {
        let pat = arm.pattern.as_str();
        let is_cmd = pat.starts_with("CMD_") && pat.bytes().all(|c| is_ident_char(c as char));
        if is_cmd {
            let mut seq = Vec::new();
            for call in scan_calls(file, arm.body.clone()) {
                if let Some(seq_op) = op_of(file, &f, &call, &model.consts) {
                    seq.push(seq_op);
                }
            }
            let arm_site = site(file, arm.pattern_offset);
            let spec = find_or_insert(model, pat, &arm_site);
            spec.worker = Some(seq);
            spec.worker_site = arm_site;
        } else if pat == "_" || pat.bytes().all(|c| is_ident_char(c as char)) {
            model.worker_catchall = true;
        }
    }

    // Shutdown: ops after the loop closes.
    for call in scan_calls(file, loop_close + 1..f.body.end) {
        if let Some(seq_op) = op_of(file, &f, &call, &model.consts) {
            model.shutdown_worker.push(seq_op);
        }
    }
}

// ---------------------------------------------------------------
// collectives.rs tag pairing
// ---------------------------------------------------------------

fn extract_collectives(file: &SourceFile, model: &mut Model) {
    let text = &file.masked;
    for f in fns_in(text, 0..text.len()) {
        let line = file.line_of(f.offset);
        if file.test_lines.get(line).copied().unwrap_or(false) {
            continue;
        }
        let mut send_tags = Vec::new();
        let mut recv_tags = Vec::new();
        for call in scan_calls(file, f.body.clone()) {
            let tag_expr = call
                .args
                .get(1)
                .map(|a| a.chars().filter(|c| !c.is_whitespace()).collect::<String>());
            let Some(tag) = tag_expr else {
                continue;
            };
            match call.name {
                "send" => send_tags.push(tag),
                "recv" | "recv_vec" | "recv_timeout" | "recv_vec_timeout" => recv_tags.push(tag),
                _ => {}
            }
        }
        if send_tags.is_empty() && recv_tags.is_empty() {
            continue;
        }
        model.collective_fns.push(CollectiveFn {
            name: f.name.clone(),
            site: site(file, f.offset),
            send_tags,
            recv_tags,
        });
    }
}

// ---------------------------------------------------------------
// masterless recovery sub-protocol (distributed.rs)
// ---------------------------------------------------------------

/// The peer-coordinated recovery fns (membership agreement, re-shard
/// replay) are symmetric sub-protocols living in `distributed.rs`:
/// every participant both sends and receives on the same tag set
/// within one fn, unlike the master/worker role split where send and
/// recv sites pair up *across* fns. Any fn with both send and recv
/// sites is therefore modeled like a collective and held to the same
/// p2 tag-pairing rule.
fn extract_decentral_recovery(file: &SourceFile, model: &mut Model) {
    let text = &file.masked;
    for f in fns_in(text, 0..text.len()) {
        let line = file.line_of(f.offset);
        if file.test_lines.get(line).copied().unwrap_or(false) {
            continue;
        }
        let mut send_tags = Vec::new();
        let mut recv_tags = Vec::new();
        for call in scan_calls(file, f.body.clone()) {
            let tag_expr = call
                .args
                .get(1)
                .map(|a| a.chars().filter(|c| !c.is_whitespace()).collect::<String>());
            let Some(tag) = tag_expr else {
                continue;
            };
            match call.name {
                "send" => send_tags.push(tag),
                "recv" | "recv_vec" | "recv_timeout" | "recv_vec_timeout" => recv_tags.push(tag),
                _ => {}
            }
        }
        if send_tags.is_empty() || recv_tags.is_empty() {
            continue;
        }
        model.collective_fns.push(CollectiveFn {
            name: f.name.clone(),
            site: site(file, f.offset),
            send_tags,
            recv_tags,
        });
    }
}

/// Extract the full protocol model from the two source files.
pub fn extract(distributed: &SourceFile, collectives: &SourceFile) -> Model {
    let mut model = Model {
        consts: scan_consts(distributed),
        worker_match_site: Site::new(&distributed.path, 1),
        ..Model::default()
    };
    extract_command_helper(distributed, &mut model);
    extract_master_impl(distributed, &mut model);
    extract_master_branch(distributed, &mut model);
    extract_worker(distributed, &mut model);
    extract_collectives(collectives, &mut model);
    extract_decentral_recovery(distributed, &mut model);
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/core/src/distributed.rs", src)
    }

    #[test]
    fn const_scan_reads_cmd_and_tag_values() {
        let f = parse("const CMD_A: u64 = 3;\nconst TAG_X: u64 = 17;\nconst OTHER: usize = 9;\n");
        let consts = scan_consts(&f);
        assert_eq!(consts.len(), 2);
        assert_eq!(consts[0].0, "CMD_A");
        assert_eq!(consts[0].1, 3);
        assert_eq!(consts[1].1, 17);
    }

    #[test]
    fn call_scanner_parses_turbofish_and_args() {
        let f = parse("fn w(comm: &mut Comm) {\n    let v = comm.recv_vec::<u64>(Src::Of(0), TAG_X);\n    comm.send(w + 1, 17, Payload::U64(ids));\n}\n");
        let calls = scan_calls(&f, 0..f.masked.len());
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].name, "recv_vec");
        assert_eq!(calls[0].turbofish.as_deref(), Some("u64"));
        assert_eq!(calls[0].args, vec!["Src::Of(0)", "TAG_X"]);
        assert_eq!(calls[1].name, "send");
        assert_eq!(calls[1].args[2], "Payload::U64(ids)");
    }

    #[test]
    fn kind_hints_cover_literal_suffixes_and_types() {
        assert_eq!(
            kind_hint("let mut v: Vec<f32> = Vec::new();"),
            ElemKind::F32
        );
        assert_eq!(kind_hint("let m = vec![0.0f64; 2];"), ElemKind::F64);
        assert_eq!(kind_hint("let h = vec![0u64; 1];"), ElemKind::U64);
        assert_eq!(kind_hint("let a = x as f32 + y as f64;"), ElemKind::Unknown);
        assert_eq!(kind_hint("let z = frames;"), ElemKind::Unknown);
    }

    #[test]
    fn vec_len_counts_elements_and_repeats() {
        assert_eq!(vec_len("let m = vec![0.0f64; 2];"), Some(2));
        assert_eq!(vec_len("let m = vec![a, b.c() as f64, d];"), Some(3));
        assert_eq!(vec_len("let m = vec![frames];"), Some(1));
        assert_eq!(vec_len("let g = vec![0.0f32; n.params()];"), None);
        assert_eq!(vec_len("let v = Vec::new();"), None);
    }

    #[test]
    fn buffer_kind_follows_let_chain_to_params() {
        let src =
            "fn g(v: &[f32]) {\n    let mut buf = v.to_vec();\n    comm.bcast(&mut buf, 0);\n}\n";
        let f = parse(src);
        let fns = fns_in(&f.masked, 0..f.masked.len());
        let call = &scan_calls(&f, fns[0].body.clone())[0];
        let (kind, len) = buffer_of(&f, &fns[0], call, 0);
        assert_eq!(kind, ElemKind::F32);
        assert_eq!(len, None);
    }

    #[test]
    fn arm_parser_splits_block_and_expression_arms() {
        let src = "match h {\n    CMD_A => break,\n    CMD_B => {\n        x();\n    }\n    other => y(),\n}\n";
        let f = parse(src);
        let open = f.masked.find('{').unwrap();
        let close = match_brace(&f.masked, open).unwrap();
        let arms = parse_arms(&f.masked, open, close);
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].pattern, "CMD_A");
        assert_eq!(arms[1].pattern, "CMD_B");
        assert_eq!(arms[2].pattern, "other");
    }

    #[test]
    fn extracts_miniature_protocol_end_to_end() {
        let dist = parse(
            "const CMD_STOP: u64 = 0;\nconst CMD_GO: u64 = 1;\nconst TAG_D: u64 = 9;\n\
             struct MasterProblem { theta: Vec<f32> }\n\
             impl MasterProblem {\n    fn command(&mut self, header: Vec<u64>) {\n        let mut buf = header;\n        comm_ok(self.comm.bcast(&mut buf, 0), \"hdr\");\n    }\n}\n\
             impl HfProblem for MasterProblem {\n    fn go(&mut self) {\n        self.command(vec![CMD_GO]);\n        let mut g = vec![0.0f32; self.theta.len()];\n        comm_ok(self.comm.reduce(&mut g, ReduceOp::Sum, 0), \"r\");\n    }\n}\n\
             fn worker_loop(comm: &mut Comm) {\n    let ids = comm.recv_vec::<u64>(Src::Of(0), TAG_D);\n    loop {\n        let mut header = vec![0u64; 1];\n        comm.bcast(&mut header, 0);\n        match header[0] {\n            CMD_STOP => break,\n            CMD_GO => {\n                let mut g = vec![0.0f32; 4];\n                comm.reduce(&mut g, ReduceOp::Sum, 0);\n            }\n            other => panic(),\n        }\n    }\n    comm.barrier();\n}\n\
             fn train_impl() {\n    let body = |comm| {\n        if comm.rank() == 0 {\n            for w in 0..n {\n                comm.send(w + 1, TAG_D, Payload::U64(ids));\n            }\n            problem.command(vec![CMD_STOP]);\n            comm.barrier();\n        }\n    };\n}\n",
        );
        let coll = SourceFile::parse(
            "crates/mpisim/src/collectives.rs",
            "impl Comm {\n    pub fn bcast<T: CollElem>(&mut self, b: &mut Vec<T>) -> R {\n        comm.send(dst, tag, T::wrap(b.clone()))?;\n        let v = comm.recv_vec::<T>(Src::Of(s), tag)?;\n        Ok(())\n    }\n}\n",
        );
        let m = extract(&dist, &coll);
        assert_eq!(m.consts.len(), 3);
        let go = m.command("CMD_GO").expect("CMD_GO spec");
        assert_eq!(go.value, Some(1));
        let master = go.master.as_ref().expect("master seq");
        assert_eq!(master.len(), 1);
        assert!(matches!(
            master[0].op,
            Op::Reduce {
                root: Some(0),
                kind: ElemKind::F32,
                len: None
            }
        ));
        let worker = go.worker.as_ref().expect("worker seq");
        assert_eq!(worker.len(), 1);
        // `vec![0.0f32; 4]` has a statically countable length.
        assert!(
            matches!(
                worker[0].op,
                Op::Reduce {
                    root: Some(0),
                    kind: ElemKind::F32,
                    len: Some(4)
                }
            ),
            "{:?}",
            worker[0].op
        );
        let stop = m.command("CMD_STOP").expect("CMD_STOP spec");
        assert_eq!(stop.worker.as_deref(), Some(&[][..]));
        assert!(stop.master.is_some());
        assert!(m.worker_catchall);
        assert_eq!(m.startup_sends.len(), 1);
        assert!(matches!(
            m.startup_sends[0].op,
            Op::Send {
                to: Peer::EachWorker,
                tag: Some(9),
                kind: ElemKind::U64
            }
        ));
        assert_eq!(m.startup_recvs.len(), 1);
        assert!(matches!(
            m.startup_recvs[0].op,
            Op::Recv {
                from: Peer::Rank(0),
                tag: Some(9),
                kind: ElemKind::U64
            }
        ));
        assert!(matches!(
            m.dispatch.as_ref().map(|d| &d.op),
            Some(Op::Bcast {
                root: Some(0),
                kind: ElemKind::U64,
                len: Some(1)
            })
        ));
        assert!(matches!(
            m.helper_header_bcast.as_ref().map(|d| &d.op),
            Some(Op::Bcast {
                root: Some(0),
                kind: ElemKind::U64,
                ..
            })
        ));
        assert_eq!(m.shutdown_master.len(), 1);
        assert_eq!(m.shutdown_worker.len(), 1);
        assert_eq!(m.collective_fns.len(), 1);
        assert_eq!(m.collective_fns[0].send_tags, vec!["tag"]);
        assert_eq!(m.collective_fns[0].recv_tags, vec!["tag"]);
    }
}
