//! CLI: `pdnn-protocheck [--static] [--mutations] [--dynamic K]
//! [--workers N] [--iters I] [root]`.
//!
//! With no pass flags, runs all three (static, mutation self-test, and
//! a small dynamic sweep). Writes `results/protocheck_report.json`
//! under the workspace root and exits nonzero when any pass fails.

use pdnn_protocheck::dynamic::{self, DynamicConfig};
use pdnn_protocheck::{mutate, report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    run_static: bool,
    run_mutations: bool,
    run_dynamic: bool,
    dynamic: DynamicConfig,
    root: PathBuf,
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut cli = Cli {
        run_static: false,
        run_mutations: false,
        run_dynamic: false,
        dynamic: DynamicConfig::default(),
        root: PathBuf::from("."),
    };
    let mut any_flag = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--static" => {
                cli.run_static = true;
                any_flag = true;
            }
            "--mutations" => {
                cli.run_mutations = true;
                any_flag = true;
            }
            "--dynamic" => {
                cli.run_dynamic = true;
                any_flag = true;
                let k = args.next().ok_or("--dynamic needs a seed count")?;
                cli.dynamic.seeds = k.parse().map_err(|_| format!("bad seed count `{k}`"))?;
            }
            "--workers" => {
                let n = args.next().ok_or("--workers needs a count")?;
                cli.dynamic.workers = n.parse().map_err(|_| format!("bad worker count `{n}`"))?;
            }
            "--iters" => {
                let i = args.next().ok_or("--iters needs a count")?;
                cli.dynamic.max_iters = i
                    .parse()
                    .map_err(|_| format!("bad iteration count `{i}`"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: pdnn-protocheck [--static] [--mutations] [--dynamic K] \
                     [--workers N] [--iters I] [root]"
                        .to_string(),
                )
            }
            other if !other.starts_with('-') => cli.root = PathBuf::from(other),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !any_flag {
        cli.run_static = true;
        cli.run_mutations = true;
        cli.run_dynamic = true;
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut failed = false;

    // Static extraction is also the mutation baseline, so run it
    // whenever either pass is requested.
    let static_outcome = if cli.run_static || cli.run_mutations {
        match pdnn_protocheck::run_static(&cli.root) {
            Ok(outcome) => Some(outcome),
            Err(err) => {
                eprintln!(
                    "error: cannot read protocol surfaces under {:?}: {err}",
                    cli.root
                );
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    if cli.run_static {
        let outcome = static_outcome.as_ref().expect("static pass ran");
        for finding in &outcome.findings {
            println!("{finding}\n");
        }
        for diag in &outcome.meta {
            println!("{diag}\n");
        }
        for (finding, reason) in &outcome.suppressed {
            println!(
                "note: suppressed {} at {}:{} ({reason})",
                finding.rule, finding.path, finding.line
            );
        }
        let n = outcome.findings.len();
        println!(
            "protocheck static: {} finding(s), {} suppressed, {} commands modeled",
            n,
            outcome.suppressed.len(),
            outcome.model.commands.len()
        );
        if n > 0 || !outcome.meta.is_empty() {
            failed = true;
        }
    }

    let mutation_results = if cli.run_mutations {
        let outcome = static_outcome.as_ref().expect("static pass ran");
        let results = mutate::selftest(&outcome.model);
        let caught = results.iter().filter(|r| r.flagged).count();
        for r in results.iter().filter(|r| !r.flagged) {
            println!(
                "MISSED {}: expected {} but only {:?} fired",
                r.name, r.expected_rule, r.fired_rules
            );
        }
        println!("protocheck mutations: {caught}/{} caught", results.len());
        if caught != results.len() {
            failed = true;
        }
        Some(results)
    } else {
        None
    };

    let dynamic_outcome = if cli.run_dynamic {
        let outcome = dynamic::run(&cli.dynamic);
        for (seed, rank, what) in &outcome.hb_violations {
            println!("HB VIOLATION seed {seed} rank {rank}: {what}");
        }
        for seed in &outcome.weight_divergence {
            println!("WEIGHT DIVERGENCE under seed {seed}");
        }
        for seed in &outcome.telemetry_divergence {
            println!("TELEMETRY DIVERGENCE under seed {seed}");
        }
        println!(
            "protocheck dynamic: {} seed(s) x {} worker(s) x {} iter(s): {}",
            outcome.seeds_run.len(),
            cli.dynamic.workers,
            cli.dynamic.max_iters,
            if outcome.ok() {
                "schedule-independent"
            } else {
                "FAILED"
            }
        );
        if !outcome.ok() {
            failed = true;
        }
        Some(outcome)
    } else {
        None
    };

    let report = report::Report {
        static_findings: static_outcome
            .as_ref()
            .filter(|_| cli.run_static)
            .map(|o| o.findings.as_slice()),
        suppressed: static_outcome
            .as_ref()
            .map(|o| o.suppressed.len())
            .unwrap_or(0),
        mutation_results: mutation_results.as_deref(),
        dynamic: dynamic_outcome.as_ref(),
    };
    if let Err(err) = report::write(&cli.root, &report) {
        eprintln!("error: cannot write protocheck report: {err}");
        return ExitCode::from(2);
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
