//! Pass 2: schedule-perturbation race detection.
//!
//! Runs one deterministic baseline training job, then replays the same
//! job under K seeded schedule perturbations
//! ([`pdnn_core::train_distributed_perturbed`]). Message delivery and
//! rank progress are jittered within MPI-legal reorderings while a
//! vector-clock tracker watches for happens-before violations. A
//! schedule-independent protocol must produce, for every seed:
//!
//! * zero happens-before violations,
//! * bit-identical final weights, and
//! * byte-identical telemetry JSONL on every rank (after stripping the
//!   one `"type":"schedule"` line that records the seed itself).

use pdnn_core::{
    train_distributed_deterministic, train_distributed_perturbed, DistributedConfig, Objective,
    TrainOutput,
};
use pdnn_dnn::{Activation, Network};
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_util::Prng;

/// Size of the dynamic sweep.
#[derive(Clone, Debug)]
pub struct DynamicConfig {
    /// Number of perturbation seeds (seeds `1..=seeds`).
    pub seeds: u64,
    /// Worker ranks (world size `workers + 1`).
    pub workers: usize,
    /// HF iterations per run.
    pub max_iters: usize,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            seeds: 4,
            workers: 3,
            max_iters: 1,
        }
    }
}

/// Result of the perturbation sweep.
#[derive(Clone, Debug)]
pub struct DynamicOutcome {
    /// Seeds that were exercised, in order.
    pub seeds_run: Vec<u64>,
    /// Happens-before violations as `(seed, rank, description)`.
    pub hb_violations: Vec<(u64, usize, String)>,
    /// Seeds whose final weights differed bitwise from the baseline.
    pub weight_divergence: Vec<u64>,
    /// Seeds whose telemetry JSONL differed bytewise from the baseline.
    pub telemetry_divergence: Vec<u64>,
}

impl DynamicOutcome {
    /// True when every seed reproduced the baseline exactly with no
    /// happens-before violations.
    pub fn ok(&self) -> bool {
        self.hb_violations.is_empty()
            && self.weight_divergence.is_empty()
            && self.telemetry_divergence.is_empty()
    }
}

/// Weights as exact bit patterns (no float comparison).
fn weight_bits(out: &TrainOutput) -> Vec<u32> {
    out.network.to_flat().iter().map(|w| w.to_bits()).collect()
}

/// All-rank telemetry JSONL with the schedule-seed stamp removed, so
/// perturbed runs can be byte-compared against the unseeded baseline.
fn telemetry_fingerprint(out: &TrainOutput) -> String {
    let mut dump = String::new();
    dump.push_str(&pdnn_obs::jsonl::to_jsonl_string(0, &out.master_telemetry));
    for (w, t) in out.worker_telemetries.iter().enumerate() {
        dump.push_str(&pdnn_obs::jsonl::to_jsonl_string(w as u64 + 1, t));
    }
    dump.lines()
        .filter(|l| !l.contains("\"type\":\"schedule\""))
        .fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        })
}

/// Run the full sweep. Deterministic end to end: the corpus, the
/// initial network, and every schedule seed are fixed.
pub fn run(config: &DynamicConfig) -> DynamicOutcome {
    let corpus = Corpus::generate(CorpusSpec::tiny(3));
    let mut rng = Prng::new(1);
    let net0 = Network::new(
        &[corpus.spec().feature_dim, 12, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let train_config = DistributedConfig {
        workers: config.workers,
        hf: {
            let mut hf = pdnn_core::HfConfig::small_task();
            hf.max_iters = config.max_iters;
            hf
        },
        ..DistributedConfig::default()
    };

    let baseline =
        train_distributed_deterministic(&net0, &corpus, &Objective::CrossEntropy, &train_config)
            // pdnn-lint: allow(l3-no-unwrap): the checker's fixed tiny corpus cannot hit the fault paths (no fault plan, non-empty shards); an error here is a harness bug worth a loud stop
            .expect("baseline training failed");
    let baseline_weights = weight_bits(&baseline);
    let baseline_telemetry = telemetry_fingerprint(&baseline);

    let mut outcome = DynamicOutcome {
        seeds_run: Vec::new(),
        hb_violations: baseline
            .hb_violations
            .iter()
            .map(|(rank, v)| (0, *rank, format!("{v:?}")))
            .collect(),
        weight_divergence: Vec::new(),
        telemetry_divergence: Vec::new(),
    };

    for seed in 1..=config.seeds {
        let out = train_distributed_perturbed(
            &net0,
            &corpus,
            &Objective::CrossEntropy,
            &train_config,
            seed,
        )
        // pdnn-lint: allow(l3-no-unwrap): same fixed corpus as the baseline — a training error is a harness bug, not a checkable divergence
        .expect("perturbed training failed");
        outcome.seeds_run.push(seed);
        outcome.hb_violations.extend(
            out.hb_violations
                .iter()
                .map(|(rank, v)| (seed, *rank, format!("{v:?}"))),
        );
        if weight_bits(&out) != baseline_weights {
            outcome.weight_divergence.push(seed);
        }
        if telemetry_fingerprint(&out) != baseline_telemetry {
            outcome.telemetry_divergence.push(seed);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_schedule_independent() {
        let outcome = run(&DynamicConfig {
            seeds: 2,
            workers: 2,
            max_iters: 1,
        });
        assert_eq!(outcome.seeds_run, vec![1, 2]);
        assert!(
            outcome.ok(),
            "hb={:?} weights={:?} telemetry={:?}",
            outcome.hb_violations,
            outcome.weight_divergence,
            outcome.telemetry_divergence
        );
    }
}
