//! The extracted communication-protocol model.
//!
//! Pass 1 of `pdnn-protocheck` reduces the distributed trainer's two
//! protocol surfaces — the master/worker command loop in
//! `crates/core/src/distributed.rs` and the collective algorithms in
//! `crates/mpisim/src/collectives.rs` — to the declarative model in
//! this module. The checker ([`crate::check`]) then validates the
//! model instead of the source text, and the mutation self-test
//! ([`crate::mutate`]) perturbs the model to prove each rule actually
//! fires.

use std::fmt;

/// Where a model element came from (for rustc-style diagnostics).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Site {
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
}

impl Site {
    pub fn new(path: &str, line: usize) -> Site {
        Site {
            path: path.to_string(),
            line,
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.path, self.line)
    }
}

/// Payload element kind of a communication buffer, as inferred from
/// the source. `Unknown` means inference was ambiguous; checks only
/// compare kinds when both sides are known.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElemKind {
    F32,
    F64,
    U64,
    Empty,
    Unknown,
}

impl ElemKind {
    /// Two kinds are compatible when either is unknown or they match.
    pub fn compatible(self, other: ElemKind) -> bool {
        matches!(self, ElemKind::Unknown) || matches!(other, ElemKind::Unknown) || self == other
    }

    pub fn name(self) -> &'static str {
        match self {
            ElemKind::F32 => "f32",
            ElemKind::F64 => "f64",
            ElemKind::U64 => "u64",
            ElemKind::Empty => "empty",
            ElemKind::Unknown => "?",
        }
    }
}

/// The peer of a point-to-point operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Peer {
    /// A literal or const-resolvable rank.
    Rank(usize),
    /// `Src::Any`.
    AnySource,
    /// A loop-dependent expression covering every worker (`w + 1`).
    EachWorker,
}

impl fmt::Display for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Peer::Rank(r) => write!(f, "rank {r}"),
            Peer::AnySource => write!(f, "any source"),
            Peer::EachWorker => write!(f, "each worker"),
        }
    }
}

/// One communication operation, as issued by one role.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// `comm.bcast(&mut buf, root)`.
    Bcast {
        root: Option<usize>,
        kind: ElemKind,
        /// Statically-known element count, when the buffer came from a
        /// countable `vec![..]`.
        len: Option<usize>,
    },
    /// `comm.reduce(&mut buf, op, root)`.
    Reduce {
        root: Option<usize>,
        kind: ElemKind,
        len: Option<usize>,
    },
    /// `comm.barrier()`.
    Barrier,
    /// `comm.send(to, tag, payload)`.
    Send {
        to: Peer,
        tag: Option<u64>,
        kind: ElemKind,
    },
    /// `comm.recv(src, tag)` / `comm.recv_vec::<T>(src, tag)`.
    Recv {
        from: Peer,
        tag: Option<u64>,
        kind: ElemKind,
    },
}

impl Op {
    /// Short operation-category name for diagnostics.
    pub fn category(&self) -> &'static str {
        match self {
            Op::Bcast { .. } => "bcast",
            Op::Reduce { .. } => "reduce",
            Op::Barrier => "barrier",
            Op::Send { .. } => "send",
            Op::Recv { .. } => "recv",
        }
    }
}

/// An operation plus where it was issued.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqOp {
    pub op: Op,
    pub site: Site,
}

/// One protocol command: the master's post-header sequence and the
/// worker arm's sequence, which rule p1 requires to be collectively
/// identical.
#[derive(Clone, Debug)]
pub struct CommandSpec {
    /// Const name (`CMD_GRADIENT`).
    pub name: String,
    /// Declared opcode value; `None` when the master issues a command
    /// whose const the extractor could not resolve.
    pub value: Option<u64>,
    /// Number of `u64` header words the master broadcasts.
    pub header_len: Option<usize>,
    /// Master-side sequence after the header broadcast; `None` when
    /// the master never issues this command.
    pub master: Option<Vec<SeqOp>>,
    /// Worker-arm sequence; `None` when the worker has no arm.
    pub worker: Option<Vec<SeqOp>>,
    /// Site of the master's `.command(..)` call (or const decl).
    pub master_site: Site,
    /// Site of the worker's match arm (or the match itself).
    pub worker_site: Site,
}

/// One collective algorithm in `collectives.rs`: the normalized tag
/// expressions of its internal sends and receives.
#[derive(Clone, Debug)]
pub struct CollectiveFn {
    pub name: String,
    pub site: Site,
    /// Whitespace-stripped tag expressions, e.g. `"tag+1"`.
    pub send_tags: Vec<String>,
    pub recv_tags: Vec<String>,
}

/// The whole extracted protocol model.
#[derive(Clone, Debug, Default)]
pub struct Model {
    /// `const CMD_* / TAG_*: u64 = n;` declarations, source order.
    pub consts: Vec<(String, u64, Site)>,
    /// Per-command specs, source order of first appearance.
    pub commands: Vec<CommandSpec>,
    /// Master point-to-point sends before the command loop starts.
    pub startup_sends: Vec<SeqOp>,
    /// Worker point-to-point receives before its command loop.
    pub startup_recvs: Vec<SeqOp>,
    /// Master-side ops after the `SHUTDOWN` command is issued.
    pub shutdown_master: Vec<SeqOp>,
    /// Worker-side ops after the command loop exits.
    pub shutdown_worker: Vec<SeqOp>,
    /// The worker's header broadcast at the top of its loop.
    pub dispatch: Option<SeqOp>,
    /// The master's header broadcast inside the `command` helper.
    pub helper_header_bcast: Option<SeqOp>,
    /// Master-side ops found in a protocol method *before* its
    /// `.command(..)` header marker (always a bug — the worker cannot
    /// know a command is in flight yet).
    pub orphan_master_ops: Vec<SeqOp>,
    /// Does the worker match have a catch-all arm for unknown opcodes?
    pub worker_catchall: bool,
    /// Site of the worker's `match` (anchor for p4 findings).
    pub worker_match_site: Site,
    /// Collective algorithms with their internal tag usage.
    pub collective_fns: Vec<CollectiveFn>,
}

impl Model {
    /// Look up a declared const value by name.
    pub fn const_value(&self, name: &str) -> Option<u64> {
        self.consts
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, v, _)| *v)
    }

    /// Mutable access to one command spec by name (used by the
    /// mutation self-test).
    pub fn command_mut(&mut self, name: &str) -> Option<&mut CommandSpec> {
        self.commands.iter_mut().find(|c| c.name == name)
    }

    pub fn command(&self, name: &str) -> Option<&CommandSpec> {
        self.commands.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_compatibility() {
        assert!(ElemKind::F32.compatible(ElemKind::F32));
        assert!(ElemKind::F32.compatible(ElemKind::Unknown));
        assert!(ElemKind::Unknown.compatible(ElemKind::U64));
        assert!(!ElemKind::F32.compatible(ElemKind::F64));
        assert_eq!(ElemKind::F64.name(), "f64");
    }

    #[test]
    fn site_displays_as_path_line() {
        let s = Site::new("crates/core/src/distributed.rs", 42);
        assert_eq!(s.to_string(), "crates/core/src/distributed.rs:42");
    }

    #[test]
    fn model_lookups() {
        let mut m = Model::default();
        m.consts.push(("CMD_X".into(), 7, Site::new("f.rs", 1)));
        m.commands.push(CommandSpec {
            name: "CMD_X".into(),
            value: Some(7),
            header_len: Some(1),
            master: Some(vec![]),
            worker: Some(vec![]),
            master_site: Site::new("f.rs", 2),
            worker_site: Site::new("f.rs", 3),
        });
        assert_eq!(m.const_value("CMD_X"), Some(7));
        assert!(m.const_value("CMD_Y").is_none());
        assert!(m.command("CMD_X").is_some());
        assert!(m.command_mut("CMD_X").is_some());
    }
}
