//! Mutation self-test: seeded protocol mutations that each rule must
//! catch.
//!
//! Rather than trusting that the checker *would* flag a broken
//! protocol, this module clones the extracted clean [`Model`], applies
//! one deliberate protocol bug at a time (reordered collectives,
//! mismatched tags, dropped barriers, undeclared opcodes, …), and
//! asserts the expected rule fires. A mutation may legitimately
//! trigger additional rules (e.g. removing a worker receive skews both
//! the p1 sequence and the p3 count balance); the requirement is only
//! that the *expected* rule appears.

use crate::check::{self, P1, P2, P3, P4};
use crate::model::{CommandSpec, ElemKind, Model, Op, Peer, SeqOp, Site};

/// One seeded protocol mutation.
pub struct Mutation {
    /// Stable name, e.g. `m01-swap-gradient-reduces`.
    pub name: &'static str,
    /// The rule that must flag this mutation.
    pub expected_rule: &'static str,
    /// What the mutation simulates breaking.
    pub describes: &'static str,
    apply: fn(&mut Model),
}

/// Outcome of running one mutation through the checker.
pub struct MutationResult {
    pub name: &'static str,
    pub expected_rule: &'static str,
    /// Did the expected rule fire?
    pub flagged: bool,
    /// Every rule that fired, for the report.
    pub fired_rules: Vec<&'static str>,
}

fn seq(op: Op) -> SeqOp {
    SeqOp {
        op,
        site: Site::new("crates/core/src/distributed.rs", 0),
    }
}

fn swap_master_ops(m: &mut Model, cmd: &str) {
    if let Some(c) = m.command_mut(cmd) {
        if let Some(master) = c.master.as_mut() {
            if master.len() >= 2 {
                master.swap(0, 1);
            }
        }
    }
}

fn drop_master_op(m: &mut Model, cmd: &str) {
    if let Some(c) = m.command_mut(cmd) {
        if let Some(master) = c.master.as_mut() {
            master.pop();
        }
    }
}

fn drop_worker_op(m: &mut Model, cmd: &str) {
    if let Some(c) = m.command_mut(cmd) {
        if let Some(worker) = c.worker.as_mut() {
            worker.pop();
        }
    }
}

fn retag_first_recv(m: &mut Model, new_tag: u64) {
    if let Some(r) = m.startup_recvs.first_mut() {
        if let Op::Recv { tag, .. } = &mut r.op {
            *tag = Some(new_tag);
        }
    }
}

fn rekind_first_send(m: &mut Model, new_kind: ElemKind) {
    if let Some(s) = m.startup_sends.first_mut() {
        if let Op::Send { kind, .. } = &mut s.op {
            *kind = new_kind;
        }
    }
}

fn set_worker_op(m: &mut Model, cmd: &str, idx: usize, op: Op) {
    if let Some(c) = m.command_mut(cmd) {
        if let Some(worker) = c.worker.as_mut() {
            if let Some(slot) = worker.get_mut(idx) {
                slot.op = op;
            }
        }
    }
}

fn set_master_op(m: &mut Model, cmd: &str, idx: usize, op: Op) {
    if let Some(c) = m.command_mut(cmd) {
        if let Some(master) = c.master.as_mut() {
            if let Some(slot) = master.get_mut(idx) {
                slot.op = op;
            }
        }
    }
}

/// The full mutation suite. Every protocol rule is covered by several
/// distinct mutations.
pub fn mutations() -> Vec<Mutation> {
    vec![
        Mutation {
            name: "m01-swap-gradient-master-ops",
            expected_rule: P1,
            describes: "master issues the GRADIENT reduces in reverse order",
            apply: |m| swap_master_ops(m, "CMD_GRADIENT"),
        },
        Mutation {
            name: "m02-drop-gradient-master-reduce",
            expected_rule: P1,
            describes: "master forgets the GRADIENT metadata reduce",
            apply: |m| drop_master_op(m, "CMD_GRADIENT"),
        },
        Mutation {
            name: "m03-drop-heldout-worker-reduce",
            expected_rule: P1,
            describes: "worker HELDOUT arm forgets its reduce",
            apply: |m| drop_worker_op(m, "CMD_HELDOUT"),
        },
        Mutation {
            name: "m04-set-theta-worker-wrong-root",
            expected_rule: P1,
            describes: "worker receives the theta broadcast from root 1",
            apply: |m| {
                set_worker_op(
                    m,
                    "CMD_SET_THETA",
                    0,
                    Op::Bcast {
                        root: Some(1),
                        kind: ElemKind::F32,
                        len: None,
                    },
                )
            },
        },
        Mutation {
            name: "m05-set-theta-master-wrong-kind",
            expected_rule: P1,
            describes: "master broadcasts theta as f64 while workers expect f32",
            apply: |m| {
                set_master_op(
                    m,
                    "CMD_SET_THETA",
                    0,
                    Op::Bcast {
                        root: Some(0),
                        kind: ElemKind::F64,
                        len: None,
                    },
                )
            },
        },
        Mutation {
            name: "m06-gradient-meta-len-skew",
            expected_rule: P1,
            describes: "worker reduces a 3-element metadata buffer against the master's 2",
            apply: |m| {
                set_worker_op(
                    m,
                    "CMD_GRADIENT",
                    1,
                    Op::Reduce {
                        root: Some(0),
                        kind: ElemKind::F64,
                        len: Some(3),
                    },
                )
            },
        },
        Mutation {
            name: "m07-dispatch-kind-mismatch",
            expected_rule: P1,
            describes: "worker dispatch receives the command header as f32",
            apply: |m| {
                if let Some(d) = m.dispatch.as_mut() {
                    if let Op::Bcast { kind, .. } = &mut d.op {
                        *kind = ElemKind::F32;
                    }
                }
            },
        },
        Mutation {
            name: "m08-load-data-recv-wrong-tag",
            expected_rule: P2,
            describes: "worker listens for the data shard on tag 18 instead of TAG_LOAD_DATA",
            apply: |m| retag_first_recv(m, 18),
        },
        Mutation {
            name: "m09-load-data-send-wrong-kind",
            expected_rule: P2,
            describes: "master ships the shard descriptor as f32 instead of u64",
            apply: |m| rekind_first_send(m, ElemKind::F32),
        },
        Mutation {
            name: "m10-allreduce-internal-tag-skew",
            expected_rule: P2,
            describes: "allreduce's gather phase receives on tag+3 while sending on tag+1",
            apply: |m| {
                if let Some(f) = m.collective_fns.iter_mut().find(|f| f.name == "allreduce") {
                    if let Some(t) = f.recv_tags.first_mut() {
                        *t = "tag+3".to_string();
                    }
                }
            },
        },
        Mutation {
            name: "m11-drop-one-load-data-recv",
            expected_rule: P3,
            describes: "worker consumes only one of the two startup messages",
            apply: |m| {
                m.startup_recvs.pop();
            },
        },
        Mutation {
            name: "m12-worker-skips-shutdown-barrier",
            expected_rule: P3,
            describes: "worker loop returns without joining the shutdown barrier",
            apply: |m| m.shutdown_worker.clear(),
        },
        Mutation {
            name: "m13-extra-unconsumed-send",
            expected_rule: P3,
            describes: "master sends a third startup message no worker ever receives",
            apply: |m| {
                m.startup_sends.push(seq(Op::Send {
                    to: Peer::EachWorker,
                    tag: Some(17),
                    kind: ElemKind::U64,
                }))
            },
        },
        Mutation {
            name: "m14-remove-fisher-worker-arm",
            expected_rule: P4,
            describes: "worker match loses its CMD_FISHER arm",
            apply: |m| {
                if let Some(c) = m.command_mut("CMD_FISHER") {
                    c.worker = None;
                }
            },
        },
        Mutation {
            name: "m15-master-issues-undeclared-opcode",
            expected_rule: P4,
            describes: "master issues an opcode with no const declaration",
            apply: |m| {
                m.commands.push(CommandSpec {
                    name: "CMD_ROGUE".to_string(),
                    value: None,
                    header_len: Some(1),
                    master: Some(vec![]),
                    worker: None,
                    master_site: Site::new("crates/core/src/distributed.rs", 0),
                    worker_site: Site::new("crates/core/src/distributed.rs", 0),
                })
            },
        },
        Mutation {
            name: "m16-duplicate-opcode-value",
            expected_rule: P4,
            describes: "CMD_FISHER's opcode collides with CMD_GRADIENT's",
            apply: |m| {
                let grad = m.const_value("CMD_GRADIENT");
                if let (Some(v), Some(slot)) = (
                    grad,
                    m.consts.iter_mut().find(|(n, _, _)| n == "CMD_FISHER"),
                ) {
                    slot.1 = v;
                }
            },
        },
        Mutation {
            name: "m17-worker-drops-catchall",
            expected_rule: P4,
            describes: "worker match silently ignores unknown opcodes",
            apply: |m| m.worker_catchall = false,
        },
        Mutation {
            name: "m18-load-data-replay-kind-skew",
            expected_rule: P1,
            describes:
                "worker receives the re-shard replay ids as f32 against the master's u64 fan-out",
            apply: |m| {
                set_worker_op(
                    m,
                    "CMD_LOAD_DATA",
                    0,
                    Op::Recv {
                        from: Peer::Rank(0),
                        tag: Some(17),
                        kind: ElemKind::F32,
                    },
                )
            },
        },
    ]
}

/// Run the whole mutation suite against a clean model.
///
/// Also verifies the precondition that the *unmutated* model is clean;
/// if it is not, every result is reported unflagged so the caller
/// fails loudly instead of crediting rules that fire on the baseline.
pub fn selftest(clean: &Model) -> Vec<MutationResult> {
    let baseline_dirty = !check::check(clean).is_empty();
    mutations()
        .into_iter()
        .map(|mutation| {
            let mut mutant = clean.clone();
            (mutation.apply)(&mut mutant);
            let findings = check::check(&mutant);
            let mut fired: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
            fired.sort_unstable();
            fired.dedup();
            MutationResult {
                name: mutation.name,
                expected_rule: mutation.expected_rule,
                flagged: !baseline_dirty && fired.contains(&mutation.expected_rule),
                fired_rules: fired,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_large_and_covers_every_rule() {
        let muts = mutations();
        assert!(
            muts.len() >= 12,
            "need >= 12 mutations, have {}",
            muts.len()
        );
        for rule in [P1, P2, P3, P4] {
            assert!(
                muts.iter().any(|m| m.expected_rule == rule),
                "no mutation targets {rule}"
            );
        }
        // Names must be unique (they key the JSON report).
        let mut names: Vec<_> = muts.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), muts.len());
    }

    #[test]
    fn dirty_baseline_never_credits_mutations() {
        // A model that already violates p4 (no catch-all) must not
        // report any mutation as flagged.
        let dirty = Model::default();
        let results = selftest(&dirty);
        assert!(results.iter().all(|r| !r.flagged));
    }
}
