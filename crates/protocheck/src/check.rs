//! Protocol-model validation: rules p1–p4.
//!
//! Each rule consumes the extracted [`Model`] and emits
//! [`pdnn_lint::Finding`]s using the protocheck rule ids registered in
//! `pdnn_lint::rules::PROTOCHECK_RULES`:
//!
//! * **p1-collective-order** — for every command, master and worker
//!   must issue the same collective sequence (same ops, roots,
//!   element kinds, and statically-known lengths); the command-header
//!   broadcast pair must agree too, and no master op may precede its
//!   command header.
//! * **p2-tag-match** — point-to-point send tags must have matching
//!   receives with compatible payload kinds (and vice versa); inside
//!   each collective algorithm the internal send/recv tag expressions
//!   must pair up.
//! * **p3-unconsumed-message** — per-tag send and recv site counts
//!   must balance, and both roles must close the protocol with the
//!   shutdown barrier, so no message can be left in flight at exit.
//! * **p4-command-space** — opcode constants must be unique, every
//!   command must have a worker arm, the master may only issue
//!   declared opcodes, and the worker must have a catch-all arm.

use crate::model::{ElemKind, Model, Op, Peer, SeqOp, Site};
use pdnn_lint::Finding;
use std::collections::BTreeMap;

pub const P1: &str = "p1-collective-order";
pub const P2: &str = "p2-tag-match";
pub const P3: &str = "p3-unconsumed-message";
pub const P4: &str = "p4-command-space";

fn finding(rule: &'static str, site: &Site, message: String) -> Finding {
    Finding {
        rule,
        path: site.path.clone(),
        line: site.line,
        col: 1,
        message,
        snippet: String::new(),
    }
}

fn describe(op: &Op) -> String {
    match op {
        Op::Bcast { root, kind, len } => format!(
            "bcast(root {}, {}, len {})",
            root.map_or("?".to_string(), |r| r.to_string()),
            kind.name(),
            len.map_or("?".to_string(), |l| l.to_string()),
        ),
        Op::Reduce { root, kind, len } => format!(
            "reduce(root {}, {}, len {})",
            root.map_or("?".to_string(), |r| r.to_string()),
            kind.name(),
            len.map_or("?".to_string(), |l| l.to_string()),
        ),
        Op::Barrier => "barrier".to_string(),
        Op::Send { to, tag, kind } => format!(
            "send(to {to}, tag {}, {})",
            tag.map_or("?".to_string(), |t| t.to_string()),
            kind.name(),
        ),
        Op::Recv { from, tag, kind } => format!(
            "recv(from {from}, tag {}, {})",
            tag.map_or("?".to_string(), |t| t.to_string()),
            kind.name(),
        ),
    }
}

/// Why two same-position ops disagree, if they do. Roots, kinds, and
/// lengths are only compared when both sides are statically known.
fn op_mismatch(master: &Op, worker: &Op) -> Option<String> {
    // Master send fanned out to each worker paired with a worker
    // receive from rank 0 is a p2p rendezvous (the LOAD_DATA replay),
    // not a category skew: check tag and kind agreement instead.
    if let (
        Op::Send {
            to: Peer::EachWorker,
            tag: t1,
            kind: k1,
        },
        Op::Recv {
            from: Peer::Rank(0),
            tag: t2,
            kind: k2,
        },
    ) = (master, worker)
    {
        if let (Some(a), Some(b)) = (t1, t2) {
            if a != b {
                return Some(format!("rendezvous tag disagrees: master {a}, worker {b}"));
            }
        }
        if !k1.compatible(*k2) {
            return Some(format!(
                "rendezvous element kind disagrees: master {}, worker {}",
                k1.name(),
                k2.name()
            ));
        }
        return None;
    }
    if master.category() != worker.category() {
        return Some(format!(
            "master issues a {} where the worker issues a {}",
            master.category(),
            worker.category()
        ));
    }
    let (roots, kinds, lens) = match (master, worker) {
        (
            Op::Bcast {
                root: r1,
                kind: k1,
                len: l1,
            },
            Op::Bcast {
                root: r2,
                kind: k2,
                len: l2,
            },
        )
        | (
            Op::Reduce {
                root: r1,
                kind: k1,
                len: l1,
            },
            Op::Reduce {
                root: r2,
                kind: k2,
                len: l2,
            },
        ) => ((*r1, *r2), (*k1, *k2), (*l1, *l2)),
        (
            Op::Send {
                tag: t1, kind: k1, ..
            },
            Op::Send {
                tag: t2, kind: k2, ..
            },
        )
        | (
            Op::Recv {
                tag: t1, kind: k1, ..
            },
            Op::Recv {
                tag: t2, kind: k2, ..
            },
        ) => (
            (t1.map(|t| t as usize), t2.map(|t| t as usize)),
            (*k1, *k2),
            (None, None),
        ),
        _ => return None, // barriers
    };
    if let (Some(a), Some(b)) = roots {
        if a != b {
            return Some(format!("root/tag disagrees: master {a}, worker {b}"));
        }
    }
    if !kinds.0.compatible(kinds.1) {
        return Some(format!(
            "element kind disagrees: master {}, worker {}",
            kinds.0.name(),
            kinds.1.name()
        ));
    }
    if let (Some(a), Some(b)) = lens {
        if a != b {
            return Some(format!(
                "payload length disagrees: master {a} element(s), worker {b}"
            ));
        }
    }
    None
}

fn check_p1(model: &Model, out: &mut Vec<Finding>) {
    for op in &model.orphan_master_ops {
        out.push(finding(
            P1,
            &op.site,
            format!(
                "master issues {} before any `.command(..)` header; the \
                 worker cannot know a command is in flight yet",
                describe(&op.op)
            ),
        ));
    }
    for cmd in &model.commands {
        let (Some(master), Some(worker)) = (&cmd.master, &cmd.worker) else {
            continue;
        };
        if master.len() != worker.len() {
            out.push(finding(
                P1,
                &cmd.master_site,
                format!(
                    "{}: master issues {} collective op(s) after the header \
                     but the worker arm issues {} — the roles will deadlock \
                     or cross-match ([{}] vs [{}])",
                    cmd.name,
                    master.len(),
                    worker.len(),
                    seq_names(master),
                    seq_names(worker),
                ),
            ));
            continue;
        }
        for (m, w) in master.iter().zip(worker.iter()) {
            if let Some(why) = op_mismatch(&m.op, &w.op) {
                out.push(finding(
                    P1,
                    &m.site,
                    format!(
                        "{}: {} (master {} at {}, worker {} at {})",
                        cmd.name,
                        why,
                        describe(&m.op),
                        m.site,
                        describe(&w.op),
                        w.site,
                    ),
                ));
            }
        }
    }
    // The command-header pair itself.
    match (&model.helper_header_bcast, &model.dispatch) {
        (Some(helper), Some(dispatch)) => {
            if let Some(why) = op_mismatch(&helper.op, &dispatch.op) {
                out.push(finding(
                    P1,
                    &helper.site,
                    format!(
                        "command header broadcast disagrees with the worker \
                         dispatch receive: {} ({} vs {} at {})",
                        why,
                        describe(&helper.op),
                        describe(&dispatch.op),
                        dispatch.site,
                    ),
                ));
            }
        }
        (Some(helper), None) => out.push(finding(
            P1,
            &helper.site,
            "master broadcasts command headers but the worker loop has no \
             dispatch broadcast to receive them"
                .to_string(),
        )),
        _ => {}
    }
}

fn seq_names(seq: &[SeqOp]) -> String {
    seq.iter()
        .map(|s| s.op.category())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Per-tag p2p accounting over the startup phase.
#[derive(Default)]
struct TagUse {
    send_kinds: Vec<(ElemKind, Site)>,
    recv_kinds: Vec<(ElemKind, Site)>,
}

fn tag_table(model: &Model) -> BTreeMap<u64, TagUse> {
    let mut tags: BTreeMap<u64, TagUse> = BTreeMap::new();
    for s in &model.startup_sends {
        if let Op::Send {
            tag: Some(t), kind, ..
        } = &s.op
        {
            tags.entry(*t)
                .or_default()
                .send_kinds
                .push((*kind, s.site.clone()));
        }
    }
    for r in &model.startup_recvs {
        if let Op::Recv {
            tag: Some(t), kind, ..
        } = &r.op
        {
            tags.entry(*t)
                .or_default()
                .recv_kinds
                .push((*kind, r.site.clone()));
        }
    }
    tags
}

fn check_p2(model: &Model, out: &mut Vec<Finding>) {
    for (tag, uses) in tag_table(model) {
        match (uses.send_kinds.first(), uses.recv_kinds.first()) {
            (Some((_, site)), None) => out.push(finding(
                P2,
                site,
                format!(
                    "tag {tag} is sent but never received: the worker loop \
                     has no matching recv for this tag"
                ),
            )),
            (None, Some((_, site))) => out.push(finding(
                P2,
                site,
                format!(
                    "tag {tag} is received but never sent: the recv will \
                     block forever"
                ),
            )),
            _ => {}
        }
        for (sk, s_site) in &uses.send_kinds {
            for (rk, r_site) in &uses.recv_kinds {
                if !sk.compatible(*rk) {
                    out.push(finding(
                        P2,
                        s_site,
                        format!(
                            "tag {tag}: sender payload kind {} does not match \
                             receiver kind {} at {}",
                            sk.name(),
                            rk.name(),
                            r_site,
                        ),
                    ));
                }
            }
        }
    }
    // Collective internals: per algorithm, the multiset of send-tag
    // expressions must equal the recv-tag expressions.
    for f in &model.collective_fns {
        let mut sends: Vec<&str> = f.send_tags.iter().map(String::as_str).collect();
        let mut recvs: Vec<&str> = f.recv_tags.iter().map(String::as_str).collect();
        sends.sort_unstable();
        sends.dedup();
        recvs.sort_unstable();
        recvs.dedup();
        if sends != recvs {
            out.push(finding(
                P2,
                &f.site,
                format!(
                    "collective `{}` sends on tag expression(s) [{}] but \
                     receives on [{}]; unmatched tags strand messages in the \
                     inbox",
                    f.name,
                    sends.join(", "),
                    recvs.join(", "),
                ),
            ));
        }
    }
}

fn check_p3(model: &Model, out: &mut Vec<Finding>) {
    for (tag, uses) in tag_table(model) {
        let (ns, nr) = (uses.send_kinds.len(), uses.recv_kinds.len());
        if ns != nr && ns > 0 && nr > 0 {
            let site = if ns > nr {
                &uses.send_kinds[0].1
            } else {
                &uses.recv_kinds[0].1
            };
            out.push(finding(
                P3,
                site,
                format!(
                    "tag {tag}: {ns} send site(s) per worker but {nr} recv \
                     site(s); the surplus messages sit unconsumed at the \
                     shutdown barrier"
                ),
            ));
        }
    }
    let master_barrier = model
        .shutdown_master
        .iter()
        .any(|s| matches!(s.op, Op::Barrier));
    let worker_barrier = model
        .shutdown_worker
        .iter()
        .any(|s| matches!(s.op, Op::Barrier));
    if !worker_barrier {
        out.push(finding(
            P3,
            &model.worker_match_site,
            "worker loop exits without the shutdown barrier; the master can \
             tear the world down while messages are still in flight"
                .to_string(),
        ));
    }
    if !master_barrier {
        let site = model
            .command("CMD_SHUTDOWN")
            .map(|c| c.master_site.clone())
            .unwrap_or_else(|| model.worker_match_site.clone());
        out.push(finding(
            P3,
            &site,
            "master never joins the shutdown barrier; workers blocked in it \
             will never exit"
                .to_string(),
        ));
    }
}

fn check_p4(model: &Model, out: &mut Vec<Finding>) {
    // Unique opcode values.
    let cmds: Vec<_> = model
        .consts
        .iter()
        .filter(|(n, _, _)| n.starts_with("CMD_"))
        .collect();
    for (i, (name, value, site)) in cmds.iter().enumerate() {
        if let Some((prev, _, _)) = cmds[..i].iter().find(|(_, v, _)| v == value) {
            out.push(finding(
                P4,
                site,
                format!(
                    "opcode value {value} of `{name}` duplicates `{prev}`; \
                     the worker match can only dispatch one of them"
                ),
            ));
        }
    }
    // Every declared command must have a worker arm.
    for (name, _, site) in &cmds {
        let handled = model
            .command(name)
            .map(|c| c.worker.is_some())
            .unwrap_or(false);
        if !handled {
            out.push(finding(
                P4,
                site,
                format!(
                    "`{name}` is declared but the worker match has no arm for \
                     it; issuing it would hit the catch-all and abort"
                ),
            ));
        }
    }
    // The master may only issue declared opcodes.
    for cmd in &model.commands {
        if cmd.master.is_some() && cmd.value.is_none() {
            out.push(finding(
                P4,
                &cmd.master_site,
                format!(
                    "master issues `{}` but no `const {}: u64 = ..;` opcode \
                     is declared",
                    cmd.name, cmd.name
                ),
            ));
        }
    }
    if !model.worker_catchall {
        out.push(finding(
            P4,
            &model.worker_match_site,
            "worker command match has no catch-all arm; an unknown opcode \
             would fall through silently instead of failing loudly"
                .to_string(),
        ));
    }
}

/// Run every protocol rule over the model.
pub fn check(model: &Model) -> Vec<Finding> {
    let mut out = Vec::new();
    check_p1(model, &mut out);
    check_p2(model, &mut out);
    check_p3(model, &mut out);
    check_p4(model, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CommandSpec, Peer};

    fn s(line: usize) -> Site {
        Site::new("crates/core/src/distributed.rs", line)
    }

    fn cmd(name: &str, value: u64, master: Vec<Op>, worker: Vec<Op>) -> CommandSpec {
        CommandSpec {
            name: name.to_string(),
            value: Some(value),
            header_len: Some(1),
            master: Some(
                master
                    .into_iter()
                    .map(|op| SeqOp { op, site: s(10) })
                    .collect(),
            ),
            worker: Some(
                worker
                    .into_iter()
                    .map(|op| SeqOp { op, site: s(20) })
                    .collect(),
            ),
            master_site: s(10),
            worker_site: s(20),
        }
    }

    fn base_model() -> Model {
        let mut m = Model {
            worker_match_site: s(50),
            worker_catchall: true,
            ..Model::default()
        };
        m.consts.push(("CMD_GO".to_string(), 1, s(1)));
        m.commands.push(cmd(
            "CMD_GO",
            1,
            vec![Op::Reduce {
                root: Some(0),
                kind: ElemKind::F32,
                len: None,
            }],
            vec![Op::Reduce {
                root: Some(0),
                kind: ElemKind::F32,
                len: None,
            }],
        ));
        m.shutdown_master.push(SeqOp {
            op: Op::Barrier,
            site: s(60),
        });
        m.shutdown_worker.push(SeqOp {
            op: Op::Barrier,
            site: s(61),
        });
        m
    }

    #[test]
    fn clean_model_has_no_findings() {
        assert!(check(&base_model()).is_empty());
    }

    #[test]
    fn sequence_length_mismatch_is_p1() {
        let mut m = base_model();
        if let Some(c) = m.command_mut("CMD_GO") {
            c.worker = Some(vec![]);
        }
        let f = check(&m);
        assert!(f.iter().any(|f| f.rule == P1), "{f:?}");
    }

    #[test]
    fn kind_mismatch_is_p1_but_unknown_is_compatible() {
        let mut m = base_model();
        if let Some(c) = m.command_mut("CMD_GO") {
            if let Some(w) = c.worker.as_mut() {
                w[0].op = Op::Reduce {
                    root: Some(0),
                    kind: ElemKind::F64,
                    len: None,
                };
            }
        }
        assert!(check(&m).iter().any(|f| f.rule == P1));
        let mut m = base_model();
        if let Some(c) = m.command_mut("CMD_GO") {
            if let Some(w) = c.worker.as_mut() {
                w[0].op = Op::Reduce {
                    root: Some(0),
                    kind: ElemKind::Unknown,
                    len: None,
                };
            }
        }
        assert!(check(&m).is_empty());
    }

    #[test]
    fn one_sided_tag_is_p2_and_count_skew_is_p3() {
        let mut m = base_model();
        m.startup_sends.push(SeqOp {
            op: Op::Send {
                to: Peer::EachWorker,
                tag: Some(17),
                kind: ElemKind::U64,
            },
            site: s(30),
        });
        let f = check(&m);
        assert!(f.iter().any(|f| f.rule == P2), "{f:?}");

        let mut m = base_model();
        for _ in 0..2 {
            m.startup_sends.push(SeqOp {
                op: Op::Send {
                    to: Peer::EachWorker,
                    tag: Some(17),
                    kind: ElemKind::U64,
                },
                site: s(30),
            });
        }
        m.startup_recvs.push(SeqOp {
            op: Op::Recv {
                from: Peer::Rank(0),
                tag: Some(17),
                kind: ElemKind::U64,
            },
            site: s(31),
        });
        let f = check(&m);
        assert!(f.iter().any(|f| f.rule == P3), "{f:?}");
        assert!(f.iter().all(|f| f.rule != P2), "{f:?}");
    }

    #[test]
    fn missing_barrier_missing_arm_and_duplicate_opcode() {
        let mut m = base_model();
        m.shutdown_worker.clear();
        assert!(check(&m).iter().any(|f| f.rule == P3));

        let mut m = base_model();
        m.consts.push(("CMD_EXTRA".to_string(), 9, s(2)));
        assert!(check(&m).iter().any(|f| f.rule == P4));

        let mut m = base_model();
        m.consts.push(("CMD_DUP".to_string(), 1, s(2)));
        m.commands.push(cmd("CMD_DUP", 1, vec![], vec![]));
        assert!(check(&m).iter().any(|f| f.rule == P4));

        let mut m = base_model();
        m.worker_catchall = false;
        assert!(check(&m).iter().any(|f| f.rule == P4));
    }

    #[test]
    fn collective_tag_asymmetry_is_p2() {
        let mut m = base_model();
        m.collective_fns.push(crate::model::CollectiveFn {
            name: "allreduce".to_string(),
            site: Site::new("crates/mpisim/src/collectives.rs", 200),
            send_tags: vec!["tag+1".to_string()],
            recv_tags: vec!["tag+3".to_string()],
        });
        let f = check(&m);
        assert!(f
            .iter()
            .any(|f| f.rule == P2 && f.path.contains("collectives")));
    }
}
