//! Integration test: the full protocheck contract from ISSUE 3.
//!
//! 1. The unmutated workspace produces **zero** static findings (no
//!    false positives) and the extracted model has the protocol shape
//!    documented in `PROTOCOL.md`.
//! 2. Every seeded protocol mutation is flagged by the expected rule.
//! 3. A 4-rank training job under K = 8 perturbed schedules produces
//!    byte-identical telemetry and bit-identical weights with zero
//!    happens-before violations.

use pdnn_protocheck::dynamic::{self, DynamicConfig};
use pdnn_protocheck::{model::Op, mutate, run_static};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_default()
}

#[test]
fn static_pass_is_clean_and_models_the_full_protocol() {
    let outcome = run_static(&workspace_root()).expect("protocol surfaces readable");
    assert!(
        outcome.findings.is_empty(),
        "false positives on the unmutated workspace:\n{}",
        outcome
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(outcome.meta.is_empty());
    assert!(outcome.suppressed.is_empty());

    let m = &outcome.model;
    // The seven HF commands, each with both a master sequence and a
    // worker arm.
    for name in [
        "CMD_SHUTDOWN",
        "CMD_SET_THETA",
        "CMD_GRADIENT",
        "CMD_SAMPLE",
        "CMD_GN",
        "CMD_HELDOUT",
        "CMD_FISHER",
    ] {
        let cmd = m.command(name).unwrap_or_else(|| panic!("{name} missing"));
        assert!(cmd.master.is_some(), "{name}: master never issues it");
        assert!(cmd.worker.is_some(), "{name}: no worker arm");
        assert!(cmd.value.is_some(), "{name}: opcode const not resolved");
    }
    // The GRADIENT exchange is the paper's core reduction: a gradient
    // reduce followed by a loss/frame-count metadata reduce.
    let grad = m.command("CMD_GRADIENT").expect("gradient spec");
    let master = grad.master.as_ref().expect("gradient master seq");
    assert_eq!(master.len(), 2);
    assert!(matches!(master[0].op, Op::Reduce { root: Some(0), .. }));
    assert!(matches!(
        master[1].op,
        Op::Reduce {
            root: Some(0),
            len: Some(2),
            ..
        }
    ));
    // Startup data-load handshake: two tagged sends per worker, two
    // matching receives.
    assert_eq!(m.startup_sends.len(), 2);
    assert_eq!(m.startup_recvs.len(), 2);
    assert_eq!(m.const_value("TAG_LOAD_DATA"), Some(17));
    // All eight collective algorithms were modeled with balanced
    // internal tags.
    assert!(m.collective_fns.len() >= 6, "{:?}", m.collective_fns.len());
}

#[test]
fn every_seeded_mutation_is_flagged() {
    let outcome = run_static(&workspace_root()).expect("protocol surfaces readable");
    let results = mutate::selftest(&outcome.model);
    assert!(
        results.len() >= 12,
        "ISSUE 3 requires >= 12 mutations, have {}",
        results.len()
    );
    let missed: Vec<String> = results
        .iter()
        .filter(|r| !r.flagged)
        .map(|r| {
            format!(
                "{}: expected {} but fired {:?}",
                r.name, r.expected_rule, r.fired_rules
            )
        })
        .collect();
    assert!(
        missed.is_empty(),
        "uncaught mutations:\n{}",
        missed.join("\n")
    );
}

#[test]
fn four_rank_train_is_schedule_independent_across_eight_seeds() {
    let outcome = dynamic::run(&DynamicConfig {
        seeds: 8,
        workers: 3,
        max_iters: 1,
    });
    assert_eq!(outcome.seeds_run.len(), 8);
    assert!(
        outcome.ok(),
        "hb={:?} weights={:?} telemetry={:?}",
        outcome.hb_violations,
        outcome.weight_divergence,
        outcome.telemetry_divergence
    );
}
