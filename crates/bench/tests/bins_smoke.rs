//! Smoke tests: every figure/table binary must run to completion and
//! emit its CSV. Fast configurations only — the full runs are
//! documented in EXPERIMENTS.md.

use std::process::Command;

fn run_bin(name: &str, args: &[&str]) -> String {
    let exe = match name {
        "fig1" => env!("CARGO_BIN_EXE_fig1"),
        "fig2_3" => env!("CARGO_BIN_EXE_fig2_3"),
        "fig4_5" => env!("CARGO_BIN_EXE_fig4_5"),
        "table1" => env!("CARGO_BIN_EXE_table1"),
        "comm_ablation" => env!("CARGO_BIN_EXE_comm_ablation"),
        "scaling" => env!("CARGO_BIN_EXE_scaling"),
        "energy" => env!("CARGO_BIN_EXE_energy"),
        "loadbalance" => env!("CARGO_BIN_EXE_loadbalance"),
        "lambda_rule" => env!("CARGO_BIN_EXE_lambda_rule"),
        "preconditioner" => env!("CARGO_BIN_EXE_preconditioner"),
        "parity" => env!("CARGO_BIN_EXE_parity"),
        "gemm_scaling" => env!("CARGO_BIN_EXE_gemm_scaling"),
        other => panic!("unknown bin {other}"),
    };
    let results = std::env::temp_dir().join(format!("pdnn-smoke-{}", std::process::id()));
    let out = Command::new(exe)
        .args(args)
        .env("PDNN_RESULTS_DIR", &results)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
    assert!(
        out.status.success(),
        "{name} failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn model_driven_bins_run() {
    // Pure model evaluation: all fast.
    assert!(run_bin("fig1", &["--hours", "50"]).contains("2048-2-32"));
    assert!(run_bin("fig1", &["--hours", "400"]).contains("8192-4-16"));
    assert!(run_bin("fig2_3", &[]).contains("gradient_loss"));
    assert!(run_bin("fig4_5", &[]).contains("collective"));
    assert!(run_bin("table1", &[]).contains("Cross-Entropy"));
    assert!(run_bin("comm_ablation", &[]).contains("socket"));
    assert!(run_bin("scaling", &[]).contains("efficiency"));
    assert!(run_bin("energy", &[]).contains("kWh"));
    assert!(run_bin("loadbalance", &[]).contains("sorted-LPT"));
}

#[test]
fn functional_training_bins_run() {
    // These actually train; keep them tiny.
    assert!(run_bin("lambda_rule", &["--iters", "3"]).contains("Martens"));
    assert!(run_bin("preconditioner", &["--iters", "3"]).contains("fisher"));
    assert!(run_bin("parity", &["--utterances", "40", "--iters", "3"]).contains("serial"));
}

#[test]
fn gemm_bin_runs() {
    let out = run_bin("gemm_scaling", &["--max-size", "128", "--threads", "1"]);
    assert!(out.contains("GFLOP/s"), "{out}");
}
