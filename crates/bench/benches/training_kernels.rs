//! Criterion benches for the training-phase kernels the paper's
//! Figures 2–3 attribute cycles to: gradient passes, Gauss–Newton
//! curvature products, held-out loss evaluations, and the MMI
//! sequence criterion's forward–backward.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pdnn_dnn::gauss_newton::{gn_product, Curvature};
use pdnn_dnn::loss::softmax_rows;
use pdnn_dnn::sequence::{mmi_batch, DenominatorGraph};
use pdnn_dnn::{Activation, FrameLoss, Network};
use pdnn_tensor::gemm::GemmContext;
use pdnn_tensor::Matrix;
use pdnn_util::Prng;

struct Setup {
    net: Network<f32>,
    ctx: GemmContext,
    x: Matrix<f32>,
    labels: Vec<u32>,
}

fn setup(frames: usize) -> Setup {
    let mut rng = Prng::new(5);
    let dims = [64usize, 256, 256, 64];
    let net = Network::new(&dims, Activation::Sigmoid, &mut rng);
    let x = Matrix::random_normal(frames, dims[0], 1.0, &mut rng);
    let labels: Vec<u32> = (0..frames).map(|_| rng.below(64) as u32).collect();
    Setup {
        net,
        ctx: GemmContext::sequential(),
        x,
        labels,
    }
}

fn bench_gradient(c: &mut Criterion) {
    let s = setup(512);
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.throughput(Throughput::Elements(s.x.rows() as u64));
    group.bench_function("gradient_loss", |b| {
        b.iter(|| {
            pdnn_dnn::backprop::loss_and_gradient(
                &s.net,
                &s.ctx,
                &s.x,
                &s.labels,
                None,
                FrameLoss::CrossEntropy,
            )
        })
    });
    group.bench_function("eval_heldout", |b| {
        b.iter(|| {
            let logits = s.net.logits(&s.ctx, &s.x);
            pdnn_dnn::loss::cross_entropy_loss_only(&logits, &s.labels)
        })
    });
    group.finish();
}

fn bench_curvature(c: &mut Criterion) {
    let s = setup(512);
    let cache = s.net.forward(&s.ctx, &s.x);
    let q = softmax_rows(cache.logits());
    let mut rng = Prng::new(6);
    let v: Vec<f32> = (0..s.net.num_params())
        .map(|_| rng.normal() as f32 * 0.01)
        .collect();
    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.throughput(Throughput::Elements(s.x.rows() as u64));
    group.bench_function("worker_curvature_product", |b| {
        b.iter(|| gn_product(&s.net, &s.ctx, &cache, Curvature::Fisher(&q), &v))
    });
    group.finish();
}

fn bench_sequence(c: &mut Criterion) {
    let states = 32;
    let frames = 256;
    let mut rng = Prng::new(7);
    let logits: Matrix<f32> = Matrix::random_normal(frames, states, 1.0, &mut rng);
    let align: Vec<u32> = (0..frames)
        .map(|_| rng.below(states as u64) as u32)
        .collect();
    let utt_lens = vec![64usize; 4];
    let graph = DenominatorGraph::uniform(states);
    let mut group = c.benchmark_group("sequence");
    group.sample_size(10);
    group.throughput(Throughput::Elements(frames as u64));
    group.bench_function("mmi_forward_backward", |b| {
        b.iter(|| mmi_batch(&logits, &align, &utt_lens, &graph))
    });
    group.finish();
}

criterion_group!(benches, bench_gradient, bench_curvature, bench_sequence);
criterion_main!(benches);
