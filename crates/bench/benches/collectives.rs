//! Criterion benches for the message-passing collectives (the
//! runtime standing in for MPI-on-BG/Q): broadcast, reduce, and
//! allreduce of parameter-sized vectors across thread-rank worlds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdnn_mpisim::{run_world, ReduceOp};

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives");
    group.sample_size(10);
    let elems = 100_000usize; // a 400 KB "model"
    group.throughput(Throughput::Bytes(4 * elems as u64));
    for &ranks in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("bcast", ranks), &ranks, |b, &r| {
            b.iter(|| {
                run_world(r, |comm| {
                    let mut buf = if comm.rank() == 0 {
                        vec![1.0f32; elems]
                    } else {
                        Vec::new()
                    };
                    comm.bcast(&mut buf, 0).unwrap();
                    buf.len()
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("reduce", ranks), &ranks, |b, &r| {
            b.iter(|| {
                run_world(r, |comm| {
                    let mut buf = vec![comm.rank() as f32; elems];
                    comm.reduce(&mut buf, ReduceOp::Sum, 0).unwrap();
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("allreduce", ranks), &ranks, |b, &r| {
            b.iter(|| {
                run_world(r, |comm| {
                    let mut buf = vec![comm.rank() as f32; elems];
                    comm.allreduce(&mut buf, ReduceOp::Sum).unwrap();
                })
            })
        });
        group.bench_with_input(
            BenchmarkId::new("allreduce_rabenseifner", ranks),
            &ranks,
            |b, &r| {
                b.iter(|| {
                    run_world(r, |comm| {
                        let mut buf = vec![comm.rank() as f32; elems];
                        comm.allreduce_rabenseifner(&mut buf, ReduceOp::Sum)
                            .unwrap();
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
