//! Criterion microbenches for the GEMM kernels (Section V.A).
//!
//! Covers the blocking ablation DESIGN.md calls out: default MC/KC/NC
//! vs deliberately bad block sizes, plus the naive reference and the
//! thread ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pdnn_tensor::gemm::{gemm_flops, Blocking, GemmContext, GemmOp, PackedB, Trans};
use pdnn_tensor::Matrix;
use pdnn_util::Prng;

fn square_inputs(n: usize) -> (Matrix<f32>, Matrix<f32>) {
    let mut rng = Prng::new(42);
    (
        Matrix::random_normal(n, n, 1.0, &mut rng),
        Matrix::random_normal(n, n, 1.0, &mut rng),
    )
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_kernels");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        let (a, b) = square_inputs(n);
        group.throughput(Throughput::Elements(gemm_flops(n, n, n)));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            let mut out = Matrix::zeros(n, n);
            bch.iter(|| GemmOp::<f32>::ab(&a, Trans::N, &b, Trans::N).run_reference(&mut out));
        });
        let ctx = GemmContext::sequential();
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            let mut out = Matrix::zeros(n, n);
            bch.iter(|| GemmOp::<f32>::ab(&a, Trans::N, &b, Trans::N).run(&ctx, &mut out));
        });
        // The weight-reuse path: B packed once outside the loop (the
        // paper's memory-reuse optimization).
        let packed = PackedB::new(&b, Trans::N, ctx.blocking());
        group.bench_with_input(BenchmarkId::new("prepacked", n), &n, |bch, _| {
            let mut out = Matrix::zeros(n, n);
            bch.iter(|| GemmOp::packed_b(&a, Trans::N, &packed).run(&ctx, &mut out));
        });
    }
    group.finish();
}

fn bench_blocking_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_blocking");
    group.sample_size(10);
    let n = 384;
    let (a, b) = square_inputs(n);
    group.throughput(Throughput::Elements(gemm_flops(n, n, n)));
    let variants = [
        ("default", Blocking::default()),
        (
            "tiny_blocks",
            Blocking {
                mc: 16,
                kc: 16,
                nc: 32,
            },
        ),
        (
            "tall_kc",
            Blocking {
                mc: 64,
                kc: 1024,
                nc: 256,
            },
        ),
    ];
    for (name, blocking) in variants {
        let ctx = GemmContext::sequential().with_blocking(blocking);
        group.bench_function(name, |bch| {
            let mut out = Matrix::zeros(n, n);
            bch.iter(|| GemmOp::<f32>::ab(&a, Trans::N, &b, Trans::N).run(&ctx, &mut out));
        });
    }
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_threads");
    group.sample_size(10);
    let n = 512;
    let (a, b) = square_inputs(n);
    group.throughput(Throughput::Elements(gemm_flops(n, n, n)));
    for &threads in &[1usize, 2, 4] {
        let ctx = GemmContext::threaded(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bch, _| {
            let mut out = Matrix::zeros(n, n);
            bch.iter(|| GemmOp::<f32>::ab(&a, Trans::N, &b, Trans::N).run(&ctx, &mut out));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_blocking_ablation,
    bench_threads
);
criterion_main!(benches);
