//! # pdnn-bench — benchmark harness
//!
//! One binary per paper table/figure (see DESIGN.md's per-experiment
//! index) plus criterion microbenches for the kernels:
//!
//! | target            | regenerates                                   |
//! |-------------------|-----------------------------------------------|
//! | `fig1`            | Figure 1(a)/(b): time per rank/thread config  |
//! | `fig2_3`          | Figures 2–3: cycle breakdowns                  |
//! | `fig4_5`          | Figures 4–5: MPI time breakdowns               |
//! | `table1`          | Table I: Xeon vs BG/Q speedups                 |
//! | `parity`          | "no loss in accuracy": serial vs distributed   |
//! | `loadbalance`     | Section V.C: partitioning strategies           |
//! | `gemm_scaling`    | Section V.A: measured GEMM throughput          |
//! | `comm_ablation`   | Section V.B: socket vs MPI weight sync         |
//! | `lambda_rule`     | DESIGN.md §2: Martens vs paper-literal λ rule  |
//!
//! Each binary prints the series and writes a CSV under `results/`
//! (override with `PDNN_RESULTS_DIR`).

use pdnn_util::report::{results_dir, Table};

/// Print a table and persist it as CSV; report where it went.
pub fn emit(table: &Table, name: &str) {
    print!("{}", table.render());
    match table.write_csv(results_dir(), name) {
        Ok(path) => println!("[csv] {}\n", path.display()),
        Err(e) => eprintln!("[csv] failed to write {name}: {e}\n"),
    }
}

/// Minimal flag parser: `--key value` pairs from `std::env::args`.
pub fn arg_value(key: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == key {
            return args.next();
        }
    }
    None
}

/// Parse `--key` as a number with a default.
pub fn arg_num<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg_value(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_csv() {
        std::env::set_var(
            "PDNN_RESULTS_DIR",
            std::env::temp_dir().join("pdnn-bench-test"),
        );
        let mut t = Table::new("t", &["a"]);
        t.row(&["1".into()]);
        emit(&t, "emit_test");
        let path = results_dir().join("emit_test.csv");
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
        std::env::remove_var("PDNN_RESULTS_DIR");
    }

    #[test]
    fn arg_num_falls_back_to_default() {
        assert_eq!(arg_num("--nonexistent-flag", 42usize), 42);
    }
}
