//! Energy comparison — the paper's conclusion cites BG/Q's Green500
//! leadership; this restates Table I in kilowatt-hours per completed
//! training run.

use pdnn_bench::emit;
use pdnn_perfmodel::{bgq_energy, xeon_energy, BgqRun, JobSpec};
use pdnn_util::report::Table;

fn main() {
    let mut t = Table::new(
        "Energy per completed training run",
        &["job", "system", "hours", "avg kW", "kWh"],
    );
    let run = BgqRun::new(4096, 4, 16);
    for (job_name, job) in [
        ("50-hour CE", JobSpec::ce_50h()),
        ("50-hour sequence", JobSpec::seq_50h()),
    ] {
        let b = bgq_energy(&job, &run);
        let x = xeon_energy(&job, 96);
        t.row(&[
            job_name.to_string(),
            "BG/Q 1024 nodes".to_string(),
            format!("{:.2}", b.hours),
            format!("{:.1}", b.kilowatts),
            format!("{:.0}", b.kwh),
        ]);
        t.row(&[
            job_name.to_string(),
            "Xeon cluster (96 procs)".to_string(),
            format!("{:.2}", x.hours),
            format!("{:.1}", x.kilowatts),
            format!("{:.0}", x.kwh),
        ]);
    }
    emit(&t, "energy");
    println!(
        "The rack draws ~4x the cluster's power but finishes ~5x sooner:\n\
         energy per training run favors BG/Q — the job-level restatement of\n\
         the paper's Green500 energy-efficiency claim."
    );
}
