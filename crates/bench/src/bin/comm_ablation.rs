//! Communication ablation (Section V.B): the cost of weight
//! synchronization under the three transports the paper discusses —
//! the original socket fan-out, commodity-cluster MPI, and BG/Q's
//! optimized torus collectives — across model sizes and rank counts.

use pdnn_bench::emit;
use pdnn_bgq::comm_model::{ethernet_1g, socket_1g, Network};
use pdnn_util::report::Table;

fn main() {
    let mut t = Table::new(
        "Weight-broadcast time by transport (seconds)",
        &[
            "params",
            "ranks",
            "BG/Q torus",
            "Ethernet MPI",
            "socket fan-out",
        ],
    );
    for &params in &[10_000_000u64, 50_000_000, 100_000_000] {
        let bytes = params * 4;
        for &ranks in &[96usize, 1024, 4096, 8192] {
            let nodes = (ranks / 4).max(1);
            let bgq = Network::bgq(nodes).bcast_time(bytes, ranks);
            let eth = ethernet_1g().bcast_time(bytes, ranks);
            let sock = socket_1g().bcast_time(bytes, ranks);
            t.row(&[
                pdnn_util::fmt_count(params),
                format!("{ranks}"),
                format!("{bgq:.3}"),
                format!("{eth:.1}"),
                format!("{sock:.0}"),
            ]);
        }
    }
    emit(&t, "comm_ablation");
    println!(
        "The socket transport serializes the fan-out (linear in ranks); the\n\
         paper replaced it with MPI_Bcast to exploit the optimized torus\n\
         collectives, whose cost is nearly independent of rank count."
    );
}
