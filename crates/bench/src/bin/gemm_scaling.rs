//! GEMM throughput study (Section V.A): the tuned blocked/packed
//! kernel vs the naive triple loop, across matrix sizes and thread
//! counts — the software reproduction of the paper's SGEMM tuning.
//!
//! `--max-size 1024` limits the sweep; `--threads "1,2,4,8"` sets the
//! thread ladder.

use pdnn_bench::{arg_num, arg_value, emit};
use pdnn_tensor::gemm::{gemm_flops, GemmContext, GemmOp, Trans};
use pdnn_tensor::Matrix;
use pdnn_util::report::Table;
use pdnn_util::Prng;
use std::time::Instant;

fn time_gemm(ctx: &GemmContext, a: &Matrix<f32>, b: &Matrix<f32>, reps: usize) -> f64 {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    // Warm up once.
    GemmOp::ab(a, Trans::N, b, Trans::N).run(ctx, &mut c);
    let start = Instant::now();
    for _ in 0..reps {
        GemmOp::ab(a, Trans::N, b, Trans::N).run(ctx, &mut c);
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let max_size: usize = arg_num("--max-size", 1024);
    let threads: Vec<usize> = arg_value("--threads")
        .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let mut rng = Prng::new(11);

    // Part 1: tuned vs naive across sizes (single thread).
    let mut t = Table::new(
        "SGEMM: blocked/packed kernel vs naive triple loop (1 thread)",
        &["n", "naive GFLOP/s", "tuned GFLOP/s", "speedup"],
    );
    let seq = GemmContext::sequential();
    let mut n = 64usize;
    while n <= max_size.min(512) {
        let a: Matrix<f32> = Matrix::random_normal(n, n, 1.0, &mut rng);
        let b: Matrix<f32> = Matrix::random_normal(n, n, 1.0, &mut rng);
        let flops = gemm_flops(n, n, n) as f64;
        let tuned_s = time_gemm(&seq, &a, &b, 3);
        let mut c = Matrix::zeros(n, n);
        let start = Instant::now();
        GemmOp::<f32>::ab(&a, Trans::N, &b, Trans::N).run_reference(&mut c);
        let naive_s = start.elapsed().as_secs_f64();
        t.row(&[
            format!("{n}"),
            format!("{:.2}", flops / naive_s / 1e9),
            format!("{:.2}", flops / tuned_s / 1e9),
            format!("{:.1}x", naive_s / tuned_s),
        ]);
        n *= 2;
    }
    emit(&t, "gemm_vs_naive");

    // Part 2: thread scaling of the tuned kernel (the paper's
    // OpenMP-threads dimension).
    let n = max_size;
    let a: Matrix<f32> = Matrix::random_normal(n, n, 1.0, &mut rng);
    let b: Matrix<f32> = Matrix::random_normal(n, n, 1.0, &mut rng);
    let flops = gemm_flops(n, n, n) as f64;
    let base = time_gemm(&GemmContext::sequential(), &a, &b, 3);
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if hw == 1 {
        println!(
            "NOTE: this machine exposes a single hardware thread; the ladder\n\
             below measures threading overhead, not scaling. Run on a\n\
             multi-core host to see the Section V.A parallel behaviour.\n"
        );
    }
    let mut t2 = Table::new(
        format!("SGEMM thread scaling, n = {n} ({hw} hardware threads available)"),
        &["threads", "GFLOP/s", "speedup", "efficiency"],
    );
    for &thr in &threads {
        let ctx = GemmContext::threaded(thr);
        let secs = time_gemm(&ctx, &a, &b, 3);
        let speedup = base / secs;
        t2.row(&[
            format!("{thr}"),
            format!("{:.2}", flops / secs / 1e9),
            format!("{speedup:.2}x"),
            format!("{:.0}%", 100.0 * speedup / thr as f64),
        ]);
    }
    emit(&t2, "gemm_thread_scaling");

    // Part 3: odd shapes — the paper's "matrices with dimensions that
    // do not lend themselves to full SIMDization".
    let mut t3 = Table::new(
        "SGEMM on awkward shapes (1 thread)",
        &["shape (m x k x n)", "GFLOP/s"],
    );
    for &(m, k, nn) in &[
        (1000usize, 440usize, 1024usize),
        (999, 441, 1023),
        (64, 10000, 64),
        (4096, 32, 4096),
    ] {
        let a: Matrix<f32> = Matrix::random_normal(m, k, 1.0, &mut rng);
        let b: Matrix<f32> = Matrix::random_normal(k, nn, 1.0, &mut rng);
        let secs = time_gemm(&seq, &a, &b, 2);
        t3.row(&[
            format!("{m} x {k} x {nn}"),
            format!("{:.2}", gemm_flops(m, nn, k) as f64 / secs / 1e9),
        ]);
    }
    emit(&t3, "gemm_odd_shapes");
}
