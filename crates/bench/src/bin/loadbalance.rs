//! Load-balance ablation (Section V.C): utterance-to-worker assignment
//! strategies, their imbalance factors at several scales, and the
//! modeled effect of imbalance on end-to-end training time.

use pdnn_bench::emit;
use pdnn_perfmodel::{bgq_time, BgqRun, JobSpec};
use pdnn_speech::{assignment_imbalance, partition, Strategy};
use pdnn_util::report::Table;
use pdnn_util::Prng;

fn synthetic_lengths(n: usize, sigma: f64, seed: u64) -> Vec<usize> {
    let mut rng = Prng::new(seed);
    (0..n)
        .map(|_| rng.log_normal(60.0f64.ln(), sigma).round().max(2.0) as usize)
        .collect()
}

fn main() {
    // Part 1: measured imbalance of each strategy as data scales.
    let mut t = Table::new(
        "Utterance partitioning: imbalance factor (max/mean frames per worker)",
        &[
            "utterances",
            "workers",
            "contiguous",
            "round-robin",
            "sorted-LPT",
        ],
    );
    for &(utts, workers) in &[(256usize, 16usize), (1024, 64), (8192, 256), (32768, 1024)] {
        let lens = synthetic_lengths(utts, 0.7, 99);
        let mut cells = vec![format!("{utts}"), format!("{workers}")];
        for strat in [
            Strategy::Contiguous,
            Strategy::RoundRobin,
            Strategy::SortedBalanced,
        ] {
            let imb = assignment_imbalance(&lens, &partition(&lens, workers, strat));
            cells.push(format!("{imb:.3}"));
        }
        t.row(&cells);
    }
    emit(&t, "loadbalance_imbalance");

    // Part 2: modeled end-to-end effect — every synchronous phase
    // waits for the slowest worker, so imbalance multiplies into
    // training time.
    let mut t2 = Table::new(
        "Modeled 50-hour training time vs load imbalance (4096-4-16)",
        &["assignment", "imbalance", "hours", "slowdown"],
    );
    let run = BgqRun::new(4096, 4, 16);
    // A 50-hour corpus at the synthetic median (~60 frames/utterance)
    // has ~300k utterances — ~70 per worker at 4096 ranks.
    let lens = synthetic_lengths(300_000, 0.7, 99);
    let base = {
        let mut job = JobSpec::ce_50h();
        job.imbalance = 1.0;
        bgq_time(&job, &run).total_hours()
    };
    for (name, strat) in [
        ("sorted-LPT (paper)", Strategy::SortedBalanced),
        ("round-robin", Strategy::RoundRobin),
        ("contiguous (naive)", Strategy::Contiguous),
    ] {
        let imb = assignment_imbalance(&lens, &partition(&lens, 4095, strat));
        let mut job = JobSpec::ce_50h();
        job.imbalance = imb;
        let hours = bgq_time(&job, &run).total_hours();
        t2.row(&[
            name.to_string(),
            format!("{imb:.3}"),
            format!("{hours:.2}"),
            format!("{:.2}x", hours / base),
        ]);
    }
    emit(&t2, "loadbalance_effect");
    println!(
        "The paper: \"distributing data evenly across compute nodes helps the\n\
         program proceed in a synchronized pace\" — the imbalance factor of the\n\
         naive assignments multiplies directly into every compute phase."
    );
}
