//! Training-step phase benchmark: the prepacked-weight / workspace-
//! arena hot path against the pack-per-call baseline, phase by phase.
//!
//! The baseline path is the plain `forward` / `backprop` /
//! `gn_product` API: every GEMM packs both operands on every call and
//! every intermediate buffer is a fresh allocation. The packed path
//! is the `_ws` API family: weights packed once per update
//! (`PackedWeights`), curvature-sample activations packed once per
//! solve (`PackedActivations`), and all scratch recycled through a
//! [`Workspace`] arena.
//!
//! Emits `BENCH_4.json` mapping each phase to
//! `{ns_per_frame, gflops, allocs}` for both paths, plus a
//! `gn_solve` section that amortizes the one-time pack builds over a
//! multi-iteration CG solve — the configuration the optimizer
//! actually runs — and reports the resulting speedup.
//!
//! Also sweeps every compute backend the host supports (scalar plus
//! whichever of AVX2/AVX-512/NEON runtime detection finds), timing the
//! packed forward and GN-product phases under each ISA, and emits the
//! per-ISA numbers as `BENCH_5.json` — the measured payoff of the
//! explicit SIMD microkernels, which are bit-identical to scalar by
//! contract and therefore free to enable.
//!
//! `--smoke` runs a seconds-scale configuration and asserts zero
//! per-iteration heap growth once the arena reaches steady state
//! (the allocation guarantee `scripts/verify.sh` gates on).
//! `--out PATH` overrides the phase JSON destination, `--out-isa PATH`
//! the per-ISA one, and `--backend NAME` forces the main measurement's
//! microkernel ISA (`scalar|avx2|avx512|neon|auto`).

use pdnn_bench::{arg_num, arg_value};
use pdnn_dnn::flops::{
    forward_flops_per_frame, gn_product_flops_per_frame, gradient_flops_per_frame,
};
use pdnn_dnn::gauss_newton::{gn_product, gn_product_ws, Curvature};
use pdnn_dnn::loss::{cross_entropy, softmax_rows};
use pdnn_dnn::{Activation, Network, PackedActivations, PackedWeights};
use pdnn_tensor::gemm::{available_isas, backend_for, BackendConfig, GemmContext, Isa};
use pdnn_tensor::{Matrix, Workspace};
use pdnn_util::Prng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapper counting calls and live bytes, so the
/// bench can report allocations per phase and the smoke gate can
/// assert the arena's zero-steady-state-growth property.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

// pdnn-lint: allow(l7-unsafe-outside-kernel): GlobalAlloc is an unsafe trait; this wrapper only counts and delegates to System
unsafe impl GlobalAlloc for CountingAlloc {
    // pdnn-lint: allow(l7-unsafe-outside-kernel): unsafe signature required by the GlobalAlloc trait; body delegates to System
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        System.alloc(layout)
    }

    // pdnn-lint: allow(l7-unsafe-outside-kernel): unsafe signature required by the GlobalAlloc trait; body delegates to System
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    // pdnn-lint: allow(l7-unsafe-outside-kernel): unsafe signature required by the GlobalAlloc trait; body delegates to System
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // pdnn-lint: allow(l7-unsafe-outside-kernel): unsafe signature required by the GlobalAlloc trait; body delegates to System
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One timed phase: mean seconds and allocator calls per iteration.
#[derive(Clone, Copy)]
struct PhaseMeasure {
    secs: f64,
    allocs: u64,
}

/// Measure two implementations of the same phase, interleaved: one
/// warmup call each, then `iters` rounds of (baseline rep, packed
/// rep), keeping each side's fastest rep.
///
/// Interleaving cancels slow machine drift (thermal throttling,
/// neighbors on a shared box) that back-to-back blocks would charge
/// entirely to whichever ran later, and the minimum is the
/// noise-robust per-rep estimate: interference only ever adds time,
/// so the fastest rep is the closest observation of the true cost.
/// Allocation counts come from the last round, i.e. steady state.
fn measure_pair(
    iters: usize,
    mut base: impl FnMut(),
    mut packed: impl FnMut(),
) -> (PhaseMeasure, PhaseMeasure) {
    base();
    packed();
    let mut best_base = f64::INFINITY;
    let mut best_packed = f64::INFINITY;
    let mut allocs_base = 0u64;
    let mut allocs_packed = 0u64;
    for _ in 0..iters {
        let c0 = ALLOC_CALLS.load(Ordering::Relaxed);
        let t0 = Instant::now();
        base();
        best_base = best_base.min(t0.elapsed().as_secs_f64());
        let c1 = ALLOC_CALLS.load(Ordering::Relaxed);
        let t1 = Instant::now();
        packed();
        best_packed = best_packed.min(t1.elapsed().as_secs_f64());
        allocs_base = c1 - c0;
        allocs_packed = ALLOC_CALLS.load(Ordering::Relaxed) - c1;
    }
    (
        PhaseMeasure {
            secs: best_base,
            allocs: allocs_base,
        },
        PhaseMeasure {
            secs: best_packed,
            allocs: allocs_packed,
        },
    )
}

/// Warmup once, then the fastest of `iters` reps of `f` (seconds).
fn measure_min(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// `{"ns_per_frame": .., "gflops": .., "allocs": ..}` for one phase.
fn phase_json(m: PhaseMeasure, frames: usize, flops_per_frame: u64) -> String {
    let ns_per_frame = m.secs * 1e9 / frames as f64;
    let gflops = flops_per_frame as f64 * frames as f64 / m.secs / 1e9;
    format!(
        "{{\"ns_per_frame\": {ns_per_frame:.1}, \"gflops\": {gflops:.3}, \"allocs\": {}}}",
        m.allocs
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_4.json".into());
    let out_isa_path = arg_value("--out-isa").unwrap_or_else(|| "BENCH_5.json".into());
    // Full mode mirrors a paper-shaped acoustic model on a per-rank
    // curvature shard; smoke mode shrinks everything to run in
    // seconds. The 8-frame default is the strong-scaling regime the
    // paper targets: at thousands of ranks the curvature sample
    // divides into single-digit frames per rank, which is exactly
    // where the per-call pack and allocation overheads the packed
    // path removes are the largest share of a CG iteration.
    let (dims, frames, cg_iters, reps): (Vec<usize>, usize, usize, usize) = if smoke {
        (vec![40, 64, 48], 32, 6, 3)
    } else {
        (
            vec![360, 512, 512, 2048],
            arg_num("--frames", 8),
            arg_num("--cg-iters", 25),
            arg_num("--reps", 16),
        )
    };

    let mut rng = Prng::new(4);
    let net: Network<f32> = Network::new(&dims, Activation::Sigmoid, &mut rng);
    let backend = BackendConfig::builder()
        .select_name(&arg_value("--backend").unwrap_or_else(|| "auto".into()))
        .build()
        .expect("invalid --backend")
        .resolve()
        .expect("backend resolution failed");
    let ctx = GemmContext::sequential().with_backend(backend);
    println!(
        "compute backend: dispatching {} microkernels",
        ctx.backend().isa()
    );
    let x: Matrix<f32> = Matrix::random_normal(frames, dims[0], 1.0, &mut rng);
    let classes = *dims.last().expect("dims nonempty") as u32;
    let labels: Vec<u32> = (0..frames)
        .map(|_| (rng.next_u64() % classes as u64) as u32)
        .collect();
    let v: Vec<f32> = (0..net.num_params())
        .map(|_| rng.normal() as f32 * 0.01)
        .collect();

    // Shared inputs for the gradient / GN phases, computed once: the
    // bench times the derivative passes, not the loss evaluation.
    let cache = net.forward(&ctx, &x);
    let dlogits = cross_entropy(cache.logits(), &labels).dlogits;
    let dist = softmax_rows(cache.logits());

    println!(
        "training_step: dims {dims:?}, {frames} frames, {cg_iters} CG iters, {reps} reps{}",
        if smoke { " [smoke]" } else { "" }
    );

    // One-time pack builds (amortized over the solve in `gn_solve`).
    let build_t0 = Instant::now();
    let packs = PackedWeights::new(&net, &ctx);
    let acts = PackedActivations::new(&cache, &ctx);
    let build_secs = build_t0.elapsed().as_secs_f64();

    // Each phase: baseline (pack-per-call GEMMs, fresh buffers every
    // call) vs packed (prepacked operands + workspace arena), reps
    // interleaved.
    let mut ws: Workspace<f32> = Workspace::new();
    let (base_fwd, packed_fwd) = measure_pair(
        reps,
        || {
            let c = net.forward(&ctx, &x);
            std::hint::black_box(&c);
        },
        || {
            let c = net.forward_ws(&ctx, &x, Some(&packs), &mut ws);
            c.give_back(&mut ws);
        },
    );
    let (base_grad, packed_grad) = measure_pair(
        reps,
        || {
            let g = pdnn_dnn::backprop::backprop(&net, &ctx, &cache, &dlogits);
            std::hint::black_box(&g);
        },
        || {
            let g = pdnn_dnn::backprop::backprop_ws(
                &net,
                &ctx,
                &cache,
                &dlogits,
                Some(&packs),
                &mut ws,
            );
            ws.give_vec(g);
        },
    );
    let (base_gn, packed_gn) = measure_pair(
        reps,
        || {
            let gv = gn_product(&net, &ctx, &cache, Curvature::Fisher(&dist), &v);
            std::hint::black_box(&gv);
        },
        || {
            let gv = gn_product_ws(
                &net,
                &ctx,
                &cache,
                Curvature::Fisher(&dist),
                &v,
                Some(&packs),
                Some(&acts),
                &mut ws,
            );
            ws.give_vec(gv);
        },
    );

    // The configuration that matters: one CG solve performs the pack
    // builds once and then `cg_iters` products against them.
    let base_solve = base_gn.secs * cg_iters as f64;
    let packed_solve = build_secs + packed_gn.secs * cg_iters as f64;
    let solve_speedup = base_solve / packed_solve;

    // Steady-state heap check: a full packed training step must not
    // grow the heap — every buffer comes from and returns to the
    // arena. One unmeasured combined step first: holding the forward
    // cache while backprop and the GN product draw their scratch is a
    // buffer-size mix the per-phase loops above never exercised, so
    // the arena hits its true high-water mark here, not inside the
    // measured window.
    {
        let c = net.forward_ws(&ctx, &x, Some(&packs), &mut ws);
        let g = pdnn_dnn::backprop::backprop_ws(&net, &ctx, &c, &dlogits, Some(&packs), &mut ws);
        let gv = gn_product_ws(
            &net,
            &ctx,
            &c,
            Curvature::Fisher(&dist),
            &v,
            Some(&packs),
            Some(&acts),
            &mut ws,
        );
        ws.give_vec(gv);
        ws.give_vec(g);
        c.give_back(&mut ws);
    }
    let live0 = LIVE_BYTES.load(Ordering::Relaxed);
    for _ in 0..3 {
        let c = net.forward_ws(&ctx, &x, Some(&packs), &mut ws);
        let g = pdnn_dnn::backprop::backprop_ws(&net, &ctx, &c, &dlogits, Some(&packs), &mut ws);
        let gv = gn_product_ws(
            &net,
            &ctx,
            &c,
            Curvature::Fisher(&dist),
            &v,
            Some(&packs),
            Some(&acts),
            &mut ws,
        );
        ws.give_vec(gv);
        ws.give_vec(g);
        c.give_back(&mut ws);
    }
    let heap_growth = LIVE_BYTES.load(Ordering::Relaxed) - live0;

    let fwd_flops = forward_flops_per_frame(&dims);
    let grad_flops = gradient_flops_per_frame(&dims);
    let gn_flops = gn_product_flops_per_frame(&dims, false);
    let dims_json = dims
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"training_step\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"dims\": [{dims_json}], \"frames\": {frames}, \"cg_iters\": {cg_iters}, \"reps\": {reps}, \"smoke\": {smoke}}},\n"
    ));
    json.push_str("  \"baseline\": {\n");
    json.push_str(&format!(
        "    \"forward\": {},\n",
        phase_json(base_fwd, frames, fwd_flops)
    ));
    json.push_str(&format!(
        "    \"gradient\": {},\n",
        phase_json(base_grad, frames, grad_flops)
    ));
    json.push_str(&format!(
        "    \"gn_product\": {}\n",
        phase_json(base_gn, frames, gn_flops)
    ));
    json.push_str("  },\n  \"packed\": {\n");
    json.push_str(&format!(
        "    \"forward\": {},\n",
        phase_json(packed_fwd, frames, fwd_flops)
    ));
    json.push_str(&format!(
        "    \"gradient\": {},\n",
        phase_json(packed_grad, frames, grad_flops)
    ));
    json.push_str(&format!(
        "    \"gn_product\": {}\n",
        phase_json(packed_gn, frames, gn_flops)
    ));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"speedup\": {{\"forward\": {:.3}, \"gradient\": {:.3}, \"gn_product\": {:.3}}},\n",
        base_fwd.secs / packed_fwd.secs,
        base_grad.secs / packed_grad.secs,
        base_gn.secs / packed_gn.secs,
    ));
    json.push_str(&format!(
        "  \"gn_solve\": {{\"cg_iters\": {cg_iters}, \"pack_build_ns\": {:.0}, \"baseline_ns\": {:.0}, \"packed_ns\": {:.0}, \"speedup\": {solve_speedup:.3}}},\n",
        build_secs * 1e9,
        base_solve * 1e9,
        packed_solve * 1e9,
    ));
    json.push_str(&format!(
        "  \"steady_state_heap_growth_bytes\": {heap_growth}\n}}\n"
    ));
    std::fs::write(&out_path, &json).expect("failed to write BENCH json");
    print!("{json}");
    println!("[json] {out_path}");
    println!(
        "GN solve ({cg_iters} products): baseline {:.1} ms, packed {:.1} ms (incl. {:.1} ms pack build) -> {solve_speedup:.2}x",
        base_solve * 1e3,
        packed_solve * 1e3,
        build_secs * 1e3,
    );

    // Per-ISA sweep: the packed forward and GN-product phases under
    // every backend runtime detection finds on this host. Because the
    // kernels are bit-identical by contract, the only thing that may
    // change between rows is time.
    let isa_reps = if smoke { 3 } else { reps };
    let mut isa_rows: Vec<(Isa, f64, f64)> = Vec::new();
    for isa in available_isas() {
        let ictx = GemmContext::sequential()
            .with_backend(backend_for(isa).expect("available ISA must resolve"));
        let ipacks = PackedWeights::new(&net, &ictx);
        let iacts = PackedActivations::new(&cache, &ictx);
        let fwd_secs = measure_min(isa_reps, || {
            let c = net.forward_ws(&ictx, &x, Some(&ipacks), &mut ws);
            c.give_back(&mut ws);
        });
        let gn_secs = measure_min(isa_reps, || {
            let gv = gn_product_ws(
                &net,
                &ictx,
                &cache,
                Curvature::Fisher(&dist),
                &v,
                Some(&ipacks),
                Some(&iacts),
                &mut ws,
            );
            ws.give_vec(gv);
        });
        isa_rows.push((isa, fwd_secs, gn_secs));
    }
    let gflops_of = |secs: f64, flops_per_frame: u64| -> f64 {
        flops_per_frame as f64 * frames as f64 / secs / 1e9
    };
    let scalar_row = isa_rows
        .iter()
        .find(|(isa, _, _)| *isa == Isa::Scalar)
        .copied()
        .expect("scalar backend is always available");
    let best_simd = isa_rows
        .iter()
        .filter(|(isa, _, _)| *isa != Isa::Scalar)
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .copied();

    let mut isa_json = String::from("{\n");
    isa_json.push_str("  \"bench\": \"training_step_isa\",\n");
    isa_json.push_str(&format!(
        "  \"config\": {{\"dims\": [{dims_json}], \"frames\": {frames}, \"reps\": {isa_reps}, \"smoke\": {smoke}}},\n"
    ));
    isa_json.push_str(&format!(
        "  \"dispatched_default\": \"{}\",\n",
        GemmContext::sequential().backend().isa()
    ));
    isa_json.push_str("  \"isas\": {\n");
    for (i, (isa, fwd_secs, gn_secs)) in isa_rows.iter().enumerate() {
        isa_json.push_str(&format!(
            "    \"{isa}\": {{\"forward_gflops\": {:.3}, \"gn_product_gflops\": {:.3}}}{}\n",
            gflops_of(*fwd_secs, fwd_flops),
            gflops_of(*gn_secs, gn_flops),
            if i + 1 < isa_rows.len() { "," } else { "" },
        ));
    }
    isa_json.push_str("  }");
    if let Some((isa, fwd_secs, gn_secs)) = best_simd {
        isa_json.push_str(&format!(
            ",\n  \"simd_vs_scalar\": {{\"isa\": \"{isa}\", \"forward_speedup\": {:.3}, \"gn_product_speedup\": {:.3}}}\n",
            scalar_row.1 / fwd_secs,
            scalar_row.2 / gn_secs,
        ));
    } else {
        isa_json.push('\n');
    }
    isa_json.push_str("}\n");
    std::fs::write(&out_isa_path, &isa_json).expect("failed to write ISA json");
    print!("{isa_json}");
    println!("[json] {out_isa_path}");

    if smoke {
        assert_eq!(
            heap_growth, 0,
            "arena steady state violated: heap grew by {heap_growth} bytes per 3 steps"
        );
        println!("smoke: steady-state heap growth 0 bytes — OK");
    }
}
