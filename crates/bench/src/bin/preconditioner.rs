//! Preconditioner ablation — the extension the paper defers ("it
//! currently does not use a preconditioner [25]"): Martens'
//! empirical-Fisher diagonal preconditioner for the inner CG solves.
//!
//! Reports total CG iterations (= curvature products = the dominant
//! communication volume at scale) and final quality with and without
//! preconditioning, across ξ exponents.

use pdnn_bench::{arg_num, emit};
use pdnn_core::config::Preconditioner;
use pdnn_core::{DnnProblem, HfConfig, HfOptimizer, Objective};
use pdnn_dnn::{Activation, Network};
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_tensor::gemm::GemmContext;
use pdnn_util::report::Table;
use pdnn_util::Prng;

fn main() {
    let iters: usize = arg_num("--iters", 8);
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 120,
        emission_noise: 0.8,
        ..CorpusSpec::tiny(321)
    });
    let (train_ids, held_ids) = corpus.split_heldout(0.2);

    let mut t = Table::new(
        "CG preconditioning ablation (Martens empirical-Fisher diagonal)",
        &[
            "preconditioner",
            "total CG iters",
            "final heldout loss",
            "final accuracy",
        ],
    );

    let variants = [
        ("none (paper)", Preconditioner::None),
        (
            "fisher ξ=0.5",
            Preconditioner::EmpiricalFisher { exponent: 0.5 },
        ),
        (
            "fisher ξ=0.75",
            Preconditioner::EmpiricalFisher { exponent: 0.75 },
        ),
        (
            "fisher ξ=1.0",
            Preconditioner::EmpiricalFisher { exponent: 1.0 },
        ),
    ];
    for (name, precond) in variants {
        let mut rng = Prng::new(6);
        let net: Network<f32> = Network::new(
            &[corpus.spec().feature_dim, 24, corpus.spec().states],
            Activation::Sigmoid,
            &mut rng,
        );
        let mut problem = DnnProblem::new(
            net,
            GemmContext::sequential(),
            corpus.shard(&train_ids),
            corpus.shard(&held_ids),
            Objective::CrossEntropy,
        );
        let cfg = HfConfig::small_task()
            .into_builder()
            .max_iters(iters)
            .preconditioner(precond)
            .build()
            .expect("invalid HF configuration");
        let stats = HfOptimizer::new(cfg).train(&mut problem);
        let total_cg: usize = stats.iter().map(|s| s.cg_iters).sum();
        let last = stats.iter().rev().find(|s| s.accepted);
        t.row(&[
            name.to_string(),
            format!("{total_cg}"),
            last.map(|s| format!("{:.4}", s.heldout_after))
                .unwrap_or_else(|| "n/a".into()),
            last.map(|s| format!("{:.3}", s.heldout_accuracy))
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    emit(&t, "preconditioner");
    println!(
        "Every CG iteration is a broadcast + Gauss-Newton product + reduction\n\
         across all ranks, so CG iterations map directly to communication and\n\
         curvature compute at scale — fewer is faster."
    );
}
