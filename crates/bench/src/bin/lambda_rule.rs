//! λ-rule ablation (DESIGN.md §2): the paper's Algorithm 1 as printed
//! *inverts* the Levenberg–Marquardt update relative to Martens
//! (2010). This bench trains the same task under both rules and shows
//! the literal rule is worse: λ drifts the wrong way, steps get
//! rejected, and the final held-out loss suffers.

use pdnn_bench::{arg_num, emit};
use pdnn_core::{DnnProblem, HfConfig, HfOptimizer, LambdaRule, Objective};
use pdnn_dnn::{Activation, Network};
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_tensor::gemm::GemmContext;
use pdnn_util::report::Table;
use pdnn_util::Prng;

fn main() {
    let iters: usize = arg_num("--iters", 10);
    let corpus = Corpus::generate(CorpusSpec {
        utterances: 96,
        ..CorpusSpec::tiny(555)
    });
    let (train_ids, held_ids) = corpus.split_heldout(0.2);

    let mut t = Table::new(
        "Levenberg-Marquardt rule ablation",
        &[
            "rule",
            "final heldout loss",
            "final accuracy",
            "accepted",
            "rejected",
            "final lambda",
        ],
    );

    for (name, rule) in [
        ("Martens (corrected)", LambdaRule::Martens),
        ("paper-literal (inverted)", LambdaRule::PaperLiteral),
    ] {
        let mut rng = Prng::new(3);
        let net: Network<f32> = Network::new(
            &[corpus.spec().feature_dim, 24, corpus.spec().states],
            Activation::Sigmoid,
            &mut rng,
        );
        let mut problem = DnnProblem::new(
            net,
            GemmContext::sequential(),
            corpus.shard(&train_ids),
            corpus.shard(&held_ids),
            Objective::CrossEntropy,
        );
        let cfg = HfConfig::small_task()
            .into_builder()
            .max_iters(iters)
            .lambda_rule(rule)
            .build()
            .expect("invalid HF configuration");
        let mut opt = HfOptimizer::new(cfg);
        let stats = opt.train(&mut problem);
        let last = stats.iter().rev().find(|s| s.accepted);
        let accepted = stats.iter().filter(|s| s.accepted).count();
        t.row(&[
            name.to_string(),
            last.map(|s| format!("{:.4}", s.heldout_after))
                .unwrap_or_else(|| "n/a".into()),
            last.map(|s| format!("{:.3}", s.heldout_accuracy))
                .unwrap_or_else(|| "n/a".into()),
            format!("{accepted}"),
            format!("{}", stats.len() - accepted),
            format!("{:.3}", opt.lambda()),
        ]);
    }
    emit(&t, "lambda_rule");
}
