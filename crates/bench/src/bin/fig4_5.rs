//! Figures 4 and 5 — master and worker MPI communication time, split
//! into collective and point-to-point classes.

use pdnn_bench::emit;
use pdnn_perfmodel::figures::{fig4, fig5};
use pdnn_perfmodel::JobSpec;

fn main() {
    let job = JobSpec::ce_50h();
    emit(&fig4(&job), "fig4_master_mpi");
    emit(&fig5(&job), "fig5_worker_mpi");
    println!(
        "Shapes to compare with the paper:\n\
         - the master spends most MPI time inside collectives (blocked\n\
           in MPI_Reduce while workers compute);\n\
         - master point-to-point time (load_data) grows with ranks;\n\
         - worker collective time grows with ranks (waiting on the\n\
           serial master between commands)."
    );
}
