//! Figures 4 and 5 — master and worker MPI communication time, split
//! into collective and point-to-point classes.
//!
//! Like `fig2_3`, the tables are rebuilt from the `pdnn-obs` JSONL
//! export (`fig4_5_telemetry.jsonl`) rather than straight from the
//! model, exercising the full telemetry round trip.

use pdnn_bench::emit;
use pdnn_obs::jsonl::{read_jsonl, write_jsonl};
use pdnn_perfmodel::figures::{fig4_from, fig5_from, phase_attribution};
use pdnn_perfmodel::JobSpec;
use pdnn_util::report::results_dir;

fn main() {
    let job = JobSpec::ce_50h();
    let telemetry = phase_attribution(&job);
    let path = results_dir().join("fig4_5_telemetry.jsonl");
    write_jsonl(&path, std::slice::from_ref(&telemetry)).expect("telemetry export failed");
    println!("[jsonl] {}\n", path.display());
    let ranks = read_jsonl(&path).expect("telemetry import failed");
    let parsed = &ranks[0].1;
    emit(&fig4_from(parsed), "fig4_master_mpi");
    emit(&fig5_from(parsed), "fig5_worker_mpi");
    println!(
        "Shapes to compare with the paper:\n\
         - the master spends most MPI time inside collectives (blocked\n\
           in MPI_Reduce while workers compute);\n\
         - master point-to-point time (load_data) grows with ranks;\n\
         - worker collective time grows with ranks (waiting on the\n\
           serial master between commands)."
    );
}
