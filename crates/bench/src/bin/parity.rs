//! Accuracy parity — the paper's "scales linearly up to 4096 processes
//! with no loss in accuracy" claim, tested functionally: the same
//! Hessian-free training run is executed serially and with 1–8 workers
//! over real message passing, and the final held-out loss/accuracy are
//! compared.
//!
//! `--utterances N` scales the corpus, `--iters K` the HF iterations.

use pdnn_bench::{arg_num, emit};
use pdnn_core::{
    train_distributed, DistributedConfig, DnnProblem, HfConfig, HfOptimizer, Objective,
};
use pdnn_dnn::{Activation, Network};
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_tensor::gemm::GemmContext;
use pdnn_util::report::Table;
use pdnn_util::Prng;

fn main() {
    let utterances: usize = arg_num("--utterances", 96);
    let iters: usize = arg_num("--iters", 8);

    let spec = CorpusSpec {
        utterances,
        ..CorpusSpec::tiny(1234)
    };
    let corpus = Corpus::generate(spec);
    let mut rng = Prng::new(7);
    let net0: Network<f32> = Network::new(
        &[corpus.spec().feature_dim, 24, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let hf = HfConfig::small_task()
        .into_builder()
        .max_iters(iters)
        .build()
        .expect("invalid HF configuration");

    let mut table = Table::new(
        "Accuracy parity: serial vs distributed Hessian-free training",
        &[
            "workers",
            "heldout loss",
            "frame accuracy",
            "accepted steps",
        ],
    );

    // Serial reference.
    let (train_ids, held_ids) = corpus.split_heldout(0.2);
    let mut problem = DnnProblem::new(
        net0.clone(),
        GemmContext::sequential(),
        corpus.shard(&train_ids),
        corpus.shard(&held_ids),
        Objective::CrossEntropy,
    );
    let stats = HfOptimizer::new(hf).train(&mut problem);
    let last = stats.iter().rev().find(|s| s.accepted).expect("no step");
    table.row(&[
        "serial".to_string(),
        format!("{:.4}", last.heldout_after),
        format!("{:.3}", last.heldout_accuracy),
        format!("{}", stats.iter().filter(|s| s.accepted).count()),
    ]);
    let serial_acc = last.heldout_accuracy;

    for workers in [1usize, 2, 4, 8] {
        let config = DistributedConfig {
            workers,
            hf,
            heldout_frac: 0.2,
            ..Default::default()
        };
        let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &config)
            .expect("training failed");
        let last = out
            .stats
            .iter()
            .rev()
            .find(|s| s.accepted)
            .expect("no accepted step");
        table.row(&[
            format!("{workers}"),
            format!("{:.4}", last.heldout_after),
            format!("{:.3}", last.heldout_accuracy),
            format!("{}", out.stats.iter().filter(|s| s.accepted).count()),
        ]);
        let delta = (last.heldout_accuracy - serial_acc).abs();
        assert!(
            delta < 0.05,
            "accuracy diverged with {workers} workers: {} vs serial {serial_acc}",
            last.heldout_accuracy
        );
    }

    emit(&table, "parity");
    println!("All worker counts match serial accuracy within 5 points — no loss in accuracy.");
}
