//! Table I — scaling-up performance: Intel Xeon cluster (96 processes)
//! vs BG/Q (4096 MPI ranks) for cross-entropy and sequence training.

use pdnn_bench::emit;
use pdnn_perfmodel::figures::table1;

fn main() {
    emit(&table1(), "table1");
    println!(
        "Paper values for comparison:\n\
         50-hour Cross-Entropy:  9 h vs 1.3 h  = 6.9x (12.6x freq-adjusted)\n\
         50-hour Sequence:      18.7 h vs 4.19 h = 4.5x (8.2x freq-adjusted)"
    );
}
