//! Figures 2 and 3 — master and worker cycle breakdowns per function
//! and counter category, for the three full-SMT configurations.
//!
//! The pipeline runs through the `pdnn-obs` telemetry export: the
//! model's phase attribution is written to `fig2_3_telemetry.jsonl`
//! under the results directory, read back, and the tables are built
//! from the parsed stream.

use pdnn_bench::emit;
use pdnn_obs::jsonl::{read_jsonl, write_jsonl};
use pdnn_perfmodel::figures::{fig2_from, fig3_from, phase_attribution};
use pdnn_perfmodel::JobSpec;
use pdnn_util::report::results_dir;

fn main() {
    let job = JobSpec::ce_50h();
    let telemetry = phase_attribution(&job);
    let path = results_dir().join("fig2_3_telemetry.jsonl");
    write_jsonl(&path, std::slice::from_ref(&telemetry)).expect("telemetry export failed");
    println!("[jsonl] {}\n", path.display());
    let ranks = read_jsonl(&path).expect("telemetry import failed");
    let parsed = &ranks[0].1;
    emit(&fig2_from(parsed), "fig2_master_cycles");
    emit(&fig3_from(parsed), "fig3_worker_cycles");
    println!(
        "Shapes to compare with the paper:\n\
         - master cycles concentrate in coordination/wait as ranks grow;\n\
         - worker gradient_loss cycles shrink with more ranks;\n\
         - worker_curvature_product varies (random curvature resample)."
    );
}
