//! Figures 2 and 3 — master and worker cycle breakdowns per function
//! and counter category, for the three full-SMT configurations.

use pdnn_bench::emit;
use pdnn_perfmodel::figures::{fig2, fig3};
use pdnn_perfmodel::JobSpec;

fn main() {
    let job = JobSpec::ce_50h();
    emit(&fig2(&job), "fig2_master_cycles");
    emit(&fig3(&job), "fig3_worker_cycles");
    println!(
        "Shapes to compare with the paper:\n\
         - master cycles concentrate in coordination/wait as ranks grow;\n\
         - worker gradient_loss cycles shrink with more ranks;\n\
         - worker_curvature_product varies (random curvature resample)."
    );
}
