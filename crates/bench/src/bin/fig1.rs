//! Figure 1 — execution time per rank/thread configuration.
//!
//! `cargo run -p pdnn-bench --bin fig1 -- --hours 50`  → Figure 1(a)
//! `cargo run -p pdnn-bench --bin fig1 -- --hours 400` → Figure 1(b)

use pdnn_bench::{arg_num, emit};
use pdnn_perfmodel::figures::{fig1, fig1a_configs, fig1b_configs};
use pdnn_perfmodel::JobSpec;

fn main() {
    let hours: f64 = arg_num("--hours", 50.0);
    let (job, configs, name) = if hours >= 100.0 {
        (JobSpec::ce_400h(), fig1b_configs(), "fig1b")
    } else {
        (JobSpec::ce_50h(), fig1a_configs(), "fig1a")
    };
    println!(
        "Modeling {:.0}-hour training data: {} frames, {} parameters\n",
        job.hours,
        pdnn_util::fmt_count(job.frames()),
        pdnn_util::fmt_count(job.params()),
    );
    emit(&fig1(&job, &configs), name);

    if hours >= 100.0 {
        let v = pdnn_perfmodel::figures::fig1_values(&job, &configs);
        let t4096 = v.iter().find(|(l, _)| l == "4096-4-16").unwrap().1;
        let t8192 = v.iter().find(|(l, _)| l == "8192-4-16").unwrap().1;
        println!(
            "Two racks (8192-4-16) vs one (4096-4-16): {:.0}% additional speedup (paper: 22%)",
            (t4096 / t8192 - 1.0) * 100.0
        );
        println!(
            "400-hour training completes in {:.1} h (paper: 6.3 h)",
            t8192 / 3600.0
        );
    }
}
