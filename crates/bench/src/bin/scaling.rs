//! Strong-scaling study — the paper's headline: "performance on BG/Q
//! scales linearly up to 4096 processes … Beyond that, although we
//! see a significant speed up, the speed improvements are sub-linear."

use pdnn_bench::{arg_num, emit};
use pdnn_perfmodel::figures::{
    scaling_curve, sync_crossover_rank, sync_crossover_table, INT8_PAYLOAD_FACTOR,
};
use pdnn_perfmodel::JobSpec;

fn main() {
    let hours: f64 = arg_num("--hours", 400.0);
    let job = if hours >= 100.0 {
        JobSpec::ce_400h()
    } else {
        JobSpec::ce_50h()
    };
    let ranks = [256usize, 512, 1024, 2048, 4096, 8192];
    emit(&scaling_curve(&job, &ranks), "scaling");
    emit(&pdnn_perfmodel::figures::billions_table(), "billions");
    println!(
        "Efficiency decays as the serial master share (CG vector arithmetic,\n\
         per-rank coordination) stops shrinking while worker compute halves —\n\
         the Amdahl mechanism behind the paper's sub-linear regime past 4096."
    );

    // Masterless sync moves the byte hotspot off rank 0: the
    // master-centric curve grows with log2(ranks), the ring curves do
    // not, and wire compression shifts the crossover to smaller
    // worlds (measured counterpart: BENCH_6.json).
    let sync_ranks = [2usize, 4, 8, 16, 64, 256, 1024, 4096];
    emit(&sync_crossover_table(&job, &sync_ranks), "sync_crossover");
    let at = |factor: f64| {
        sync_crossover_rank(&job, factor, 2.0, &sync_ranks)
            .map(|p| format!("P={p}"))
            .unwrap_or_else(|| "beyond the sweep".into())
    };
    println!(
        "2x rank-0 byte-reduction crossover: plain ring at {}, ring+int8 at {}",
        at(1.0),
        at(INT8_PAYLOAD_FACTOR)
    );
}
