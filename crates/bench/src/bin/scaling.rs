//! Strong-scaling study — the paper's headline: "performance on BG/Q
//! scales linearly up to 4096 processes … Beyond that, although we
//! see a significant speed up, the speed improvements are sub-linear."

use pdnn_bench::{arg_num, emit};
use pdnn_perfmodel::figures::scaling_curve;
use pdnn_perfmodel::JobSpec;

fn main() {
    let hours: f64 = arg_num("--hours", 400.0);
    let job = if hours >= 100.0 {
        JobSpec::ce_400h()
    } else {
        JobSpec::ce_50h()
    };
    let ranks = [256usize, 512, 1024, 2048, 4096, 8192];
    emit(&scaling_curve(&job, &ranks), "scaling");
    emit(&pdnn_perfmodel::figures::billions_table(), "billions");
    println!(
        "Efficiency decays as the serial master share (CG vector arithmetic,\n\
         per-rank coordination) stops shrinking while worker compute halves —\n\
         the Amdahl mechanism behind the paper's sub-linear regime past 4096."
    );
}
