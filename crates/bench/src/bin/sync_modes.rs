//! Sync-strategy benchmark: master-centric vs ring vs compressed-ring
//! gradient aggregation, at 4 / 8 / 16 simulated ranks.
//!
//! Each cell runs the same distributed HF training job under one
//! `SyncStrategy` and records wall time plus the comm-trace byte
//! counters: everything rank 0 moved (either direction, either
//! class), rank 0's point-to-point share specifically, and the total
//! bytes put on the wire across all ranks (sent-side, so nothing is
//! double counted). Master-centric runs use `ranks - 1` workers so
//! every row occupies the same world size.
//!
//! Emits `BENCH_6.json` and self-asserts the ISSUE 9 acceptance
//! gates at 8 ranks:
//! * ring leaves the master rendezvous entirely — rank-0 p2p bytes
//!   are ≤ 25% of master-sync's (measured: zero);
//! * plain ring moves ≥ 2x fewer bytes through rank 0 than
//!   master-centric sync (the rooted trees put ~3n per collective on
//!   rank 0 at P=8; a symmetric ring still moves ~4n per allreduce,
//!   but drops the θ-shipping phases, so the honest plain-ring
//!   reduction is ~2x);
//! * ring + int8 wire compression reaches the ≥ 4x reduction.
//!
//! `--smoke` shrinks the corpus and iteration count to run in
//! seconds; `--out PATH` overrides the JSON destination.

use pdnn_bench::arg_value;
use pdnn_core::{train_distributed, DistributedConfig, Objective, SyncStrategy, TrainOutput};
use pdnn_dnn::{Activation, Network};
use pdnn_mpisim::WireCodec;
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_util::Prng;
use std::time::Instant;

/// One (world size, sync mode) measurement.
struct ModeRow {
    label: &'static str,
    wall_ms: f64,
    rank0_bytes: u64,
    rank0_p2p_bytes: u64,
    wire_bytes: u64,
}

/// All bytes rank 0 moved, in either direction, either class.
fn rank0_bytes(out: &TrainOutput) -> u64 {
    let t = &out.master_trace;
    t.p2p.bytes_sent + t.p2p.bytes_received + t.collective.bytes_sent + t.collective.bytes_received
}

/// Rank 0's point-to-point share (the master-rendezvous signature).
fn rank0_p2p_bytes(out: &TrainOutput) -> u64 {
    out.master_trace.p2p.bytes_sent + out.master_trace.p2p.bytes_received
}

/// Total bytes on the wire across the world: sent side only, so each
/// message is counted once.
fn wire_bytes(out: &TrainOutput) -> u64 {
    let sent = |t: &pdnn_mpisim::CommTrace| t.p2p.bytes_sent + t.collective.bytes_sent;
    sent(&out.master_trace) + out.worker_traces.iter().map(sent).sum::<u64>()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_6.json".into());

    // Smoke shrinks the task, not the world: the byte-ratio gates are
    // properties of the communication pattern at P=8, so every world
    // size runs in both modes.
    let (spec, hidden, iters) = if smoke {
        (CorpusSpec::tiny(7), 12usize, 2usize)
    } else {
        (CorpusSpec::default(), 32usize, 3usize)
    };
    let corpus = Corpus::generate(spec);
    let mut rng = Prng::new(2);
    let net0: Network<f32> = Network::new(
        &[corpus.spec().feature_dim, hidden, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    println!(
        "sync_modes: {} utterances, {} states, hidden {hidden}, {iters} HF iters{}",
        corpus.spec().utterances,
        corpus.spec().states,
        if smoke { " [smoke]" } else { "" }
    );

    let run = |sync: SyncStrategy, workers: usize, codec: WireCodec| -> (f64, TrainOutput) {
        let mut config = DistributedConfig {
            workers,
            sync,
            ..DistributedConfig::default()
        };
        config.wire_codec = codec;
        config.hf.max_iters = iters;
        let t0 = Instant::now();
        let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &config)
            .expect("training run failed");
        (t0.elapsed().as_secs_f64() * 1e3, out)
    };

    let world_sizes: [usize; 3] = [4, 8, 16];
    let mut tables: Vec<(usize, Vec<ModeRow>)> = Vec::new();
    for ranks in world_sizes {
        let mut rows = Vec::new();
        for (label, sync, workers, codec) in [
            ("master", SyncStrategy::Master, ranks - 1, WireCodec::None),
            ("ring", SyncStrategy::Ring, ranks, WireCodec::None),
            ("ring_int8", SyncStrategy::Ring, ranks, WireCodec::Int8),
        ] {
            let (wall_ms, out) = run(sync, workers, codec);
            let row = ModeRow {
                label,
                wall_ms,
                rank0_bytes: rank0_bytes(&out),
                rank0_p2p_bytes: rank0_p2p_bytes(&out),
                wire_bytes: wire_bytes(&out),
            };
            println!(
                "  P={ranks:>2} {label:<9} wall {:>8.1} ms  rank0 {:>9} B (p2p {:>8} B)  wire {:>10} B",
                row.wall_ms, row.rank0_bytes, row.rank0_p2p_bytes, row.wire_bytes
            );
            rows.push(row);
        }
        tables.push((ranks, rows));
    }

    // Acceptance gates, evaluated at the 8-rank table.
    let table8 = &tables
        .iter()
        .find(|(ranks, _)| *ranks == 8)
        .expect("8-rank table present")
        .1;
    let by = |label: &str| -> &ModeRow {
        table8
            .iter()
            .find(|r| r.label == label)
            .expect("mode row present")
    };
    let (master, ring, ring_i8) = (by("master"), by("ring"), by("ring_int8"));
    let gate_p2p = master.rank0_p2p_bytes > 0 && ring.rank0_p2p_bytes * 4 <= master.rank0_p2p_bytes;
    let gate_ring_2x = ring.rank0_bytes * 2 <= master.rank0_bytes;
    let gate_int8_4x = ring_i8.rank0_bytes * 4 <= master.rank0_bytes;

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"sync_modes\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"utterances\": {}, \"states\": {}, \"feature_dim\": {}, \"hidden\": {hidden}, \"hf_iters\": {iters}, \"smoke\": {smoke}}},\n",
        corpus.spec().utterances,
        corpus.spec().states,
        corpus.spec().feature_dim,
    ));
    json.push_str("  \"worlds\": [\n");
    for (wi, (ranks, rows)) in tables.iter().enumerate() {
        json.push_str(&format!("    {{\"ranks\": {ranks}, \"modes\": {{\n"));
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "      \"{}\": {{\"wall_ms\": {:.1}, \"rank0_bytes\": {}, \"rank0_p2p_bytes\": {}, \"wire_bytes\": {}}}{}\n",
                r.label,
                r.wall_ms,
                r.rank0_bytes,
                r.rank0_p2p_bytes,
                r.wire_bytes,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        let m = rows
            .iter()
            .find(|r| r.label == "master")
            .expect("master row");
        let reduction = |r: &ModeRow| m.rank0_bytes as f64 / r.rank0_bytes.max(1) as f64;
        let ring_row = rows.iter().find(|r| r.label == "ring").expect("ring row");
        let i8_row = rows
            .iter()
            .find(|r| r.label == "ring_int8")
            .expect("ring_int8 row");
        json.push_str(&format!(
            "    }}, \"rank0_reduction\": {{\"ring\": {:.2}, \"ring_int8\": {:.2}}}}}{}\n",
            reduction(ring_row),
            reduction(i8_row),
            if wi + 1 < tables.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"gates_at_8_ranks\": {{\"ring_rank0_p2p_le_quarter_of_master\": {gate_p2p}, \"ring_rank0_ge_2x_reduction\": {gate_ring_2x}, \"ring_int8_rank0_ge_4x_reduction\": {gate_int8_4x}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("failed to write BENCH json");
    print!("{json}");
    println!("[json] {out_path}");

    assert!(
        gate_p2p,
        "ring rank-0 p2p bytes {} exceed 25% of master's {}",
        ring.rank0_p2p_bytes, master.rank0_p2p_bytes
    );
    assert!(
        gate_ring_2x,
        "ring rank-0 bytes {} not ≥2x below master {}",
        ring.rank0_bytes, master.rank0_bytes
    );
    assert!(
        gate_int8_4x,
        "compressed-ring rank-0 bytes {} not ≥4x below master {}",
        ring_i8.rank0_bytes, master.rank0_bytes
    );
    println!("gates at 8 ranks: all hold — OK");
}
