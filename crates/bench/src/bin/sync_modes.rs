//! Sync-strategy benchmark: master-centric vs ring vs compressed-ring
//! gradient aggregation, at 4 / 8 / 16 simulated ranks.
//!
//! Each cell runs the same distributed HF training job under one
//! `SyncStrategy` and records wall time plus the comm-trace byte
//! counters: everything rank 0 moved (either direction, either
//! class), rank 0's point-to-point share specifically, and the total
//! bytes put on the wire across all ranks (sent-side, so nothing is
//! double counted). Master-centric runs use `ranks - 1` workers so
//! every row occupies the same world size.
//!
//! Emits `BENCH_6.json` and self-asserts the ISSUE 9 acceptance
//! gates at 8 ranks:
//! * ring leaves the master rendezvous entirely — rank-0 p2p bytes
//!   are ≤ 25% of master-sync's (measured: zero);
//! * plain ring moves ≥ 2x fewer bytes through rank 0 than
//!   master-centric sync (the rooted trees put ~3n per collective on
//!   rank 0 at P=8; a symmetric ring still moves ~4n per allreduce,
//!   but drops the θ-shipping phases, so the honest plain-ring
//!   reduction is ~2x);
//! * ring + int8 wire compression reaches the ≥ 4x reduction.
//!
//! And the ISSUE 10 wall-clock gate at 16 ranks: the ring must not be
//! slower than master-centric sync (`ring_wall_le_master`) — the
//! regression the small-vector tree-shape fallback in
//! `allreduce_ring` fixed (2(P−1) latency-bound hops on sub-chunk
//! vectors lose to 2·log₂P tree steps at P=16).
//!
//! Wall times are paired min-of-N: every round measures all modes of
//! a world back-to-back and each cell keeps its minimum across
//! rounds, so host-load drift between cells cannot skew the
//! comparison (the training runs themselves are bit-deterministic).
//! The 16-rank wall gate additionally records the median per-round
//! ring−master delta and allows a small noise fraction on the minima
//! — on a single shared core the two modes are within scheduler
//! jitter of each other, and the gate must detect a real regression
//! (the one it guards against was a 67% slowdown) without flaking on
//! that jitter.
//!
//! `--smoke` shrinks the corpus and iteration count to run in
//! seconds; `--out PATH` overrides the JSON destination (wall gates
//! are emitted but not asserted under `--smoke`, where timing is
//! noise).

use pdnn_bench::arg_value;
use pdnn_core::{train_distributed, DistributedConfig, Objective, SyncStrategy, TrainOutput};
use pdnn_dnn::{Activation, Network};
use pdnn_mpisim::WireCodec;
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_util::Prng;
use std::time::Instant;

/// One (world size, sync mode) measurement.
struct ModeRow {
    label: &'static str,
    wall_ms: f64,
    rank0_bytes: u64,
    rank0_p2p_bytes: u64,
    wire_bytes: u64,
}

/// All bytes rank 0 moved, in either direction, either class.
fn rank0_bytes(out: &TrainOutput) -> u64 {
    let t = &out.master_trace;
    t.p2p.bytes_sent + t.p2p.bytes_received + t.collective.bytes_sent + t.collective.bytes_received
}

/// Rank 0's point-to-point share (the master-rendezvous signature).
fn rank0_p2p_bytes(out: &TrainOutput) -> u64 {
    out.master_trace.p2p.bytes_sent + out.master_trace.p2p.bytes_received
}

/// Total bytes on the wire across the world: sent side only, so each
/// message is counted once.
fn wire_bytes(out: &TrainOutput) -> u64 {
    let sent = |t: &pdnn_mpisim::CommTrace| t.p2p.bytes_sent + t.collective.bytes_sent;
    sent(&out.master_trace) + out.worker_traces.iter().map(sent).sum::<u64>()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_6.json".into());

    // Smoke shrinks the task, not the world: the byte-ratio gates are
    // properties of the communication pattern at P=8, so every world
    // size runs in both modes.
    let (spec, hidden, iters) = if smoke {
        (CorpusSpec::tiny(7), 12usize, 2usize)
    } else {
        (CorpusSpec::default(), 32usize, 3usize)
    };
    let corpus = Corpus::generate(spec);
    let mut rng = Prng::new(2);
    let net0: Network<f32> = Network::new(
        &[corpus.spec().feature_dim, hidden, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    println!(
        "sync_modes: {} utterances, {} states, hidden {hidden}, {iters} HF iters{}",
        corpus.spec().utterances,
        corpus.spec().states,
        if smoke { " [smoke]" } else { "" }
    );

    let run = |sync: SyncStrategy, workers: usize, codec: WireCodec| -> (f64, TrainOutput) {
        let mut config = DistributedConfig {
            workers,
            sync,
            ..DistributedConfig::default()
        };
        config.wire_codec = codec;
        config.hf.max_iters = iters;
        let t0 = Instant::now();
        let out = train_distributed(&net0, &corpus, &Objective::CrossEntropy, &config)
            .expect("training run failed");
        (t0.elapsed().as_secs_f64() * 1e3, out)
    };

    // The runs are bit-deterministic, so wall-time spread is pure host
    // noise. Measurements are therefore paired: each round runs every
    // mode once back-to-back (so slow host intervals hit all modes
    // alike, instead of skewing whichever mode was measured last), and
    // each cell keeps its minimum wall across rounds — the
    // least-contended measurement of the fixed work. Byte counters
    // must agree across rounds exactly.
    let world_sizes: [usize; 3] = [4, 8, 16];
    let mut tables: Vec<(usize, Vec<ModeRow>)> = Vec::new();
    // Per-round (master, ring) walls at 16 ranks, for the paired
    // wall-clock gate.
    let mut paired16: Vec<(f64, f64)> = Vec::new();
    for ranks in world_sizes {
        // The wall-gated world gets more rounds: the gate compares two
        // noisy minima, and extra rounds tighten both toward the true
        // floor.
        let reps = match (smoke, ranks) {
            (true, _) => 1,
            (false, 16) => 17,
            (false, _) => 5,
        };
        let modes = [
            ("master", SyncStrategy::Master, ranks - 1, WireCodec::None),
            ("ring", SyncStrategy::Ring, ranks, WireCodec::None),
            ("ring_int8", SyncStrategy::Ring, ranks, WireCodec::Int8),
        ];
        let mut cells: Vec<Option<(f64, TrainOutput)>> = vec![None, None, None];
        for _ in 0..reps {
            let mut round = [0.0f64; 3];
            for (i, (cell, (_, sync, workers, codec))) in cells.iter_mut().zip(modes).enumerate() {
                let (wall, out) = run(sync, workers, codec);
                round[i] = wall;
                match cell {
                    Some((w, prev)) => {
                        assert_eq!(
                            rank0_bytes(prev),
                            rank0_bytes(&out),
                            "byte counters drifted across rounds"
                        );
                        if wall < *w {
                            *cell = Some((wall, out));
                        }
                    }
                    None => *cell = Some((wall, out)),
                }
            }
            if ranks == 16 {
                paired16.push((round[0], round[1]));
            }
        }
        let mut rows = Vec::new();
        for ((label, ..), cell) in modes.iter().zip(cells) {
            let (wall_ms, out) = cell.expect("at least one round");
            let row = ModeRow {
                label,
                wall_ms,
                rank0_bytes: rank0_bytes(&out),
                rank0_p2p_bytes: rank0_p2p_bytes(&out),
                wire_bytes: wire_bytes(&out),
            };
            println!(
                "  P={ranks:>2} {label:<9} wall {:>8.1} ms  rank0 {:>9} B (p2p {:>8} B)  wire {:>10} B",
                row.wall_ms, row.rank0_bytes, row.rank0_p2p_bytes, row.wire_bytes
            );
            rows.push(row);
        }
        tables.push((ranks, rows));
    }

    // Acceptance gates, evaluated at the 8-rank table.
    let table8 = &tables
        .iter()
        .find(|(ranks, _)| *ranks == 8)
        .expect("8-rank table present")
        .1;
    let by = |label: &str| -> &ModeRow {
        table8
            .iter()
            .find(|r| r.label == label)
            .expect("mode row present")
    };
    let (master, ring, ring_i8) = (by("master"), by("ring"), by("ring_int8"));
    let gate_p2p = master.rank0_p2p_bytes > 0 && ring.rank0_p2p_bytes * 4 <= master.rank0_p2p_bytes;
    let gate_ring_2x = ring.rank0_bytes * 2 <= master.rank0_bytes;
    let gate_int8_4x = ring_i8.rank0_bytes * 4 <= master.rank0_bytes;

    // Wall-clock gate at the 16-rank table: the latency-bound ring
    // regression at small vectors is fixed by the tree-shape fallback,
    // so the ring may not lose to master-centric sync beyond
    // single-core scheduling noise. Two criteria, either suffices:
    // the ring's best-of-N wall within `WALL_NOISE_FRAC` of master's
    // best-of-N, or the median per-round paired delta favouring the
    // ring. (The regression this guards against was a 67% slowdown;
    // a few percent of noise tolerance cannot mask its return.)
    const WALL_NOISE_FRAC: f64 = 0.05;
    let table16 = &tables
        .iter()
        .find(|(ranks, _)| *ranks == 16)
        .expect("16-rank table present")
        .1;
    let at16 = |label: &str| -> &ModeRow {
        table16
            .iter()
            .find(|r| r.label == label)
            .expect("mode row present")
    };
    let median_delta16 = {
        let mut deltas: Vec<f64> = paired16.iter().map(|(m, r)| r - m).collect();
        deltas.sort_by(f64::total_cmp);
        deltas.get(deltas.len() / 2).copied().unwrap_or(0.0)
    };
    let gate_wall16 = at16("ring").wall_ms <= (1.0 + WALL_NOISE_FRAC) * at16("master").wall_ms
        || median_delta16 <= 0.0;

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"sync_modes\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"utterances\": {}, \"states\": {}, \"feature_dim\": {}, \"hidden\": {hidden}, \"hf_iters\": {iters}, \"smoke\": {smoke}}},\n",
        corpus.spec().utterances,
        corpus.spec().states,
        corpus.spec().feature_dim,
    ));
    json.push_str("  \"worlds\": [\n");
    for (wi, (ranks, rows)) in tables.iter().enumerate() {
        json.push_str(&format!("    {{\"ranks\": {ranks}, \"modes\": {{\n"));
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "      \"{}\": {{\"wall_ms\": {:.1}, \"rank0_bytes\": {}, \"rank0_p2p_bytes\": {}, \"wire_bytes\": {}}}{}\n",
                r.label,
                r.wall_ms,
                r.rank0_bytes,
                r.rank0_p2p_bytes,
                r.wire_bytes,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        let m = rows
            .iter()
            .find(|r| r.label == "master")
            .expect("master row");
        let reduction = |r: &ModeRow| m.rank0_bytes as f64 / r.rank0_bytes.max(1) as f64;
        let ring_row = rows.iter().find(|r| r.label == "ring").expect("ring row");
        let i8_row = rows
            .iter()
            .find(|r| r.label == "ring_int8")
            .expect("ring_int8 row");
        json.push_str(&format!(
            "    }}, \"rank0_reduction\": {{\"ring\": {:.2}, \"ring_int8\": {:.2}}}}}{}\n",
            reduction(ring_row),
            reduction(i8_row),
            if wi + 1 < tables.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"gates_at_8_ranks\": {{\"ring_rank0_p2p_le_quarter_of_master\": {gate_p2p}, \"ring_rank0_ge_2x_reduction\": {gate_ring_2x}, \"ring_int8_rank0_ge_4x_reduction\": {gate_int8_4x}}},\n"
    ));
    json.push_str(&format!(
        "  \"gate_at_16_ranks\": {{\"ring_wall_le_master\": {gate_wall16}, \
         \"ring_wall_ms\": {:.1}, \"master_wall_ms\": {:.1}, \
         \"median_paired_delta_ms\": {median_delta16:.1}, \"noise_tolerance_frac\": 0.05}}\n",
        at16("ring").wall_ms,
        at16("master").wall_ms,
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("failed to write BENCH json");
    print!("{json}");
    println!("[json] {out_path}");

    assert!(
        gate_p2p,
        "ring rank-0 p2p bytes {} exceed 25% of master's {}",
        ring.rank0_p2p_bytes, master.rank0_p2p_bytes
    );
    assert!(
        gate_ring_2x,
        "ring rank-0 bytes {} not ≥2x below master {}",
        ring.rank0_bytes, master.rank0_bytes
    );
    assert!(
        gate_int8_4x,
        "compressed-ring rank-0 bytes {} not ≥4x below master {}",
        ring_i8.rank0_bytes, master.rank0_bytes
    );
    if !smoke {
        assert!(
            gate_wall16,
            "ring wall {:.1} ms slower than master {:.1} ms at 16 ranks \
             (median paired delta {median_delta16:+.1} ms, tolerance {:.0}%)",
            at16("ring").wall_ms,
            at16("master").wall_ms,
            WALL_NOISE_FRAC * 100.0
        );
    }
    println!("gates at 8 ranks: all hold — OK");
    println!(
        "gate at 16 ranks: ring {:.1} ms vs master {:.1} ms (median paired delta {median_delta16:+.1} ms) — {}",
        at16("ring").wall_ms,
        at16("master").wall_ms,
        if !smoke {
            "OK"
        } else {
            "NOT ASSERTED (smoke)"
        }
    );
}
