//! One-command reproduction: regenerate every model-driven table and
//! figure of the paper into `results/` (override with
//! `PDNN_RESULTS_DIR`).
//!
//! Functional experiments that train for real (`parity`,
//! `lambda_rule`, `preconditioner`, `gemm_scaling`) are separate
//! binaries — run them individually; this driver covers everything
//! that evaluates in milliseconds.

use pdnn_bench::emit;
use pdnn_perfmodel::figures;
use pdnn_perfmodel::JobSpec;

fn main() {
    let ce50 = JobSpec::ce_50h();
    let ce400 = JobSpec::ce_400h();

    println!("Regenerating all model-driven paper targets...\n");
    emit(&figures::fig1(&ce50, &figures::fig1a_configs()), "fig1a");
    emit(&figures::fig1(&ce400, &figures::fig1b_configs()), "fig1b");
    emit(&figures::fig2(&ce50), "fig2_master_cycles");
    emit(&figures::fig3(&ce50), "fig3_worker_cycles");
    emit(&figures::fig4(&ce50), "fig4_master_mpi");
    emit(&figures::fig5(&ce50), "fig5_worker_mpi");
    emit(&figures::table1(), "table1");
    emit(
        &figures::scaling_curve(&ce400, &[256, 512, 1024, 2048, 4096, 8192]),
        "scaling",
    );
    emit(&figures::billions_table(), "billions");
    emit(&figures::comm_ablation(64 << 20, 4096), "comm_ablation");

    // Energy restatement of Table I.
    {
        use pdnn_perfmodel::{bgq_energy, xeon_energy, BgqRun};
        use pdnn_util::report::Table;
        let mut t = Table::new("Energy per training run", &["job", "system", "kWh"]);
        let run = BgqRun::new(4096, 4, 16);
        for (name, job) in [("50h CE", &ce50), ("50h seq", &JobSpec::seq_50h())] {
            t.row(&[
                name.into(),
                "BG/Q".into(),
                format!("{:.0}", bgq_energy(job, &run).kwh),
            ]);
            t.row(&[
                name.into(),
                "Xeon-96".into(),
                format!("{:.0}", xeon_energy(job, 96).kwh),
            ]);
        }
        emit(&t, "energy");
    }

    println!(
        "Done. Functional experiments (train for real):\n\
         cargo run --release -p pdnn-bench --bin parity\n\
         cargo run --release -p pdnn-bench --bin lambda_rule\n\
         cargo run --release -p pdnn-bench --bin preconditioner\n\
         cargo run --release -p pdnn-bench --bin loadbalance\n\
         cargo run --release -p pdnn-bench --bin gemm_scaling"
    );
}
