//! The composed timing model: HF iteration structure × machine model.
//!
//! A run is decomposed into the paper's named phases. Each phase has
//! wire time (shared by master and workers), worker compute time
//! (master blocks inside the pending collective — exactly why the
//! paper's Figure 4 shows the master spending most of its MPI time in
//! collectives), and master compute time (workers block waiting for
//! the next command — Figure 5's worker-side collective time).
//!
//! Wall time of a phase = wire + worker compute + master compute,
//! because the protocol is synchronous: the master cannot issue the
//! next command until the reduce lands, and workers cannot proceed
//! until the next broadcast arrives.

use crate::workload::JobSpec;
use pdnn_bgq::comm_model::Network;
use pdnn_bgq::counters::PhaseKind;
use pdnn_bgq::node::{rank_effective_flops, NodeConfig};
use pdnn_util::cast;
use pdnn_util::Prng;

/// Application-level efficiency on top of the kernel-level node model:
/// activation functions, Python^W glue, short GEMMs from per-rank
/// batch fragmentation, I/O. Calibrated against Table I (BG/Q 4096
/// ranks, 50 h CE ≈ 1.3 h).
pub const BGQ_APP_EFFICIENCY: f64 = 0.15;

/// Master scalar throughput for CG vector arithmetic: a single
/// in-order A2 hardware thread doing memory-bound AXPY/dot chains on
/// 10-100 M-element vectors — roughly 0.1 GFLOP/s. This serial
/// component is the Amdahl term behind the paper's sub-linear scaling
/// beyond 4096 ranks (the workers scale; the master does not).
pub const MASTER_SCALAR_FLOPS: f64 = 0.1e9;

/// Parameter-length vector operations the master performs per CG
/// iteration (residual/direction updates, dots, iterate-series
/// bookkeeping for the backtracking pass).
pub const CG_MASTER_VECTOR_OPS: f64 = 20.0;

/// Master-side per-rank coordination cost per collective operation
/// (command dispatch, completion bookkeeping). Grows linearly with
/// rank count — the term behind the master-side MPI-time growth in
/// Figure 4.
pub const MASTER_PER_RANK_OP_SECONDS: f64 = 50e-6;

/// The Xeon cluster master runs on an out-of-order core with a real
/// memory subsystem; its vector arithmetic is ~10x the A2 thread.
pub const XEON_MASTER_SCALAR_FLOPS: f64 = 1.0e9;

/// Per-worker handshake during initial data distribution.
pub const LOAD_DATA_HANDSHAKE_SECONDS: f64 = 1.2e-3;

/// Xeon cluster: effective FLOP/s per process (a multi-core node
/// socket running threaded BLAS; calibrated against Table I's 9 h /
/// 96 processes for the 50 h CE job).
pub const XEON_PROCESS_FLOPS: f64 = 2.9e9 * 8.0 * 8.0 * 0.28;

/// A BG/Q run configuration, `ranks-ranksPerNode-threads` in the
/// paper's notation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BgqRun {
    /// Total MPI ranks (one is the master).
    pub ranks: usize,
    /// Ranks per node.
    pub ranks_per_node: usize,
    /// Threads per rank.
    pub threads_per_rank: usize,
}

impl BgqRun {
    /// `(ranks, ranks/node, threads)` constructor.
    pub fn new(ranks: usize, ranks_per_node: usize, threads_per_rank: usize) -> Self {
        assert!(ranks >= 2, "need a master and at least one worker");
        assert_eq!(ranks % ranks_per_node, 0, "ranks must fill whole nodes");
        BgqRun {
            ranks,
            ranks_per_node,
            threads_per_rank,
        }
    }

    /// Paper-style label, e.g. `4096-4-16`.
    pub fn label(&self) -> String {
        format!(
            "{}-{}-{}",
            self.ranks, self.ranks_per_node, self.threads_per_rank
        )
    }

    /// Nodes occupied.
    pub fn nodes(&self) -> usize {
        self.ranks / self.ranks_per_node
    }

    /// Node-level execution configuration.
    pub fn node_config(&self) -> NodeConfig {
        NodeConfig {
            ranks_per_node: self.ranks_per_node,
            threads_per_rank: self.threads_per_rank,
        }
        .validated()
    }
}

/// One modeled phase of the run.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Paper function name (`gradient_loss`, `sync_weights_master`…).
    pub name: &'static str,
    /// Counter profile of the compute part.
    pub kind: PhaseKind,
    /// Collective wire time (seconds, whole run).
    pub wire_coll_s: f64,
    /// Point-to-point wire time.
    pub wire_p2p_s: f64,
    /// Worker compute (slowest worker, includes imbalance).
    pub worker_compute_s: f64,
    /// Master compute (serial).
    pub master_compute_s: f64,
}

impl Phase {
    /// Wall-clock contribution of the phase.
    pub fn wall_s(&self) -> f64 {
        self.wire_coll_s + self.wire_p2p_s + self.worker_compute_s + self.master_compute_s
    }

    /// Master MPI time in collectives: wire time plus the wait for
    /// worker compute (the master blocks inside MPI_Reduce).
    pub fn master_mpi_coll_s(&self) -> f64 {
        if self.wire_coll_s > 0.0 {
            self.wire_coll_s + self.worker_compute_s
        } else {
            0.0
        }
    }

    /// Master MPI time in point-to-point calls.
    pub fn master_mpi_p2p_s(&self) -> f64 {
        self.wire_p2p_s
    }

    /// Worker MPI time in collectives: wire plus the wait for master
    /// compute (workers block inside the next MPI_Bcast).
    pub fn worker_mpi_coll_s(&self) -> f64 {
        if self.wire_coll_s > 0.0 {
            self.wire_coll_s + self.master_compute_s
        } else {
            0.0
        }
    }

    /// Worker MPI time in point-to-point calls.
    pub fn worker_mpi_p2p_s(&self) -> f64 {
        self.wire_p2p_s
    }
}

/// A fully decomposed modeled run.
#[derive(Clone, Debug)]
pub struct RunBreakdown {
    /// Configuration label (`4096-4-16` or `xeon-96`).
    pub label: String,
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl RunBreakdown {
    /// Total wall-clock seconds.
    pub fn total_seconds(&self) -> f64 {
        self.phases.iter().map(Phase::wall_s).sum()
    }

    /// Total hours.
    pub fn total_hours(&self) -> f64 {
        self.total_seconds() / 3600.0
    }

    /// Look up a phase by name.
    pub fn phase(&self, name: &str) -> Option<&Phase> {
        self.phases.iter().find(|p| p.name == name)
    }
}

/// Model a job on a BG/Q partition.
pub fn bgq_time(job: &JobSpec, run: &BgqRun) -> RunBreakdown {
    job.validate();
    let cfg = run.node_config();
    let workers = cast::exact_f64_usize(run.ranks - 1);
    let net = Network::bgq(run.nodes());
    let rank_flops = rank_effective_flops(cfg) * BGQ_APP_EFFICIENCY;

    let frames = cast::exact_f64(job.frames());
    let train_frames = frames * (1.0 - job.heldout_fraction);
    let fpw = train_frames / workers * job.imbalance;
    let heldout_fpw = frames * job.heldout_fraction / workers * job.imbalance;
    let pbytes = job.param_bytes();
    let iters = cast::exact_f64_usize(job.hf_iters);
    let cg = cast::exact_f64_usize(job.cg_iters);
    let evals = cast::exact_f64_usize(job.backtrack_evals);

    // Deterministic per-config jitter for the curvature sample (the
    // paper: the random resample makes worker_curvature_product
    // noisy).
    // pdnn-lint: allow(l6-lossy-cast): usize -> u64 widening is lossless on supported targets
    let mut jrng = Prng::new(run.ranks as u64 * 31 + run.threads_per_rank as u64);
    let curvature_jitter = 1.0 + 0.015 * (2.0 * jrng.uniform() - 1.0);

    // Per-collective master bookkeeping (grows with ranks).
    let master_op = MASTER_PER_RANK_OP_SECONDS * cast::exact_f64_usize(run.ranks);

    // ---- load_data -------------------------------------------------
    let data_bytes = cast::exact_f64(job.data_bytes());
    let load_wire =
        data_bytes / (pdnn_bgq::torus::LINK_BANDWIDTH) + workers * LOAD_DATA_HANDSHAKE_SECONDS;
    let load_data = Phase {
        name: "load_data",
        kind: PhaseKind::MemoryBound,
        wire_coll_s: 0.0,
        wire_p2p_s: load_wire,
        worker_compute_s: data_bytes / workers / 2.0e9, // local unpack
        master_compute_s: data_bytes / 8.0e9,           // I/O staging
    };

    // ---- sync_weights ----------------------------------------------
    // One parameter broadcast per HF iteration plus the initial one.
    let n_sync = iters + 1.0;
    let sync_weights = Phase {
        name: "sync_weights",
        kind: PhaseKind::CommWait,
        wire_coll_s: n_sync * net.bcast_time(pbytes, run.ranks),
        wire_p2p_s: 0.0,
        worker_compute_s: 0.0,
        master_compute_s: n_sync * master_op,
    };

    // ---- gradient_loss ---------------------------------------------
    let grad_compute =
        iters * fpw * job.gradient_batch_fraction * job.gradient_flops_per_frame() / rank_flops;
    let gradient_loss = Phase {
        name: "gradient_loss",
        kind: PhaseKind::DenseCompute,
        wire_coll_s: iters * net.reduce_time(pbytes, run.ranks),
        wire_p2p_s: 0.0,
        worker_compute_s: grad_compute,
        master_compute_s: iters * master_op,
    };

    // ---- worker_curvature_product ----------------------------------
    let sample_fpw = fpw * job.curvature_fraction * curvature_jitter;
    let gn_compute = iters * cg * sample_fpw * job.gn_flops_per_frame() / rank_flops;
    // Master CG vector arithmetic: P-length ops per CG iteration.
    let cg_master = iters
        * cg
        * (CG_MASTER_VECTOR_OPS * cast::exact_f64(job.params()) / MASTER_SCALAR_FLOPS + master_op);
    let curvature = Phase {
        name: "worker_curvature_product",
        kind: PhaseKind::DenseCompute,
        wire_coll_s: iters
            * cg
            * (net.bcast_time(pbytes, run.ranks) + net.reduce_time(pbytes, run.ranks)),
        wire_p2p_s: 0.0,
        worker_compute_s: gn_compute,
        master_compute_s: cg_master,
    };

    // ---- eval_heldout ----------------------------------------------
    let heldout_compute = iters * evals * heldout_fpw * job.heldout_flops_per_frame() / rank_flops;
    let eval_heldout = Phase {
        name: "eval_heldout",
        kind: PhaseKind::DenseCompute,
        wire_coll_s: iters
            * evals
            * (net.bcast_time(pbytes, run.ranks) + net.reduce_time(24, run.ranks)),
        wire_p2p_s: 0.0,
        worker_compute_s: heldout_compute,
        master_compute_s: iters * evals * master_op,
    };

    RunBreakdown {
        label: run.label(),
        phases: vec![
            load_data,
            sync_weights,
            gradient_loss,
            curvature,
            eval_heldout,
        ],
    }
}

/// Model a job on the Intel Xeon cluster baseline (Table I).
pub fn xeon_time(job: &JobSpec, processes: usize) -> RunBreakdown {
    job.validate();
    assert!(processes >= 2, "need a master and at least one worker");
    let workers = cast::exact_f64_usize(processes - 1);
    let net = pdnn_bgq::comm_model::ethernet_1g();
    let proc_flops = XEON_PROCESS_FLOPS;

    let frames = cast::exact_f64(job.frames());
    let train_frames = frames * (1.0 - job.heldout_fraction);
    let fpw = train_frames / workers * job.imbalance;
    let heldout_fpw = frames * job.heldout_fraction / workers * job.imbalance;
    let pbytes = job.param_bytes();
    let iters = cast::exact_f64_usize(job.hf_iters);
    let cg = cast::exact_f64_usize(job.cg_iters);
    let evals = cast::exact_f64_usize(job.backtrack_evals);

    let load_data = Phase {
        name: "load_data",
        kind: PhaseKind::MemoryBound,
        wire_coll_s: 0.0,
        wire_p2p_s: cast::exact_f64(job.data_bytes()) / 125e6,
        worker_compute_s: cast::exact_f64(job.data_bytes()) / workers / 1.0e9,
        master_compute_s: cast::exact_f64(job.data_bytes()) / 2.0e9,
    };
    let sync_weights = Phase {
        name: "sync_weights",
        kind: PhaseKind::CommWait,
        wire_coll_s: (iters + 1.0) * net.bcast_time(pbytes, processes),
        wire_p2p_s: 0.0,
        worker_compute_s: 0.0,
        master_compute_s: 0.0,
    };
    let gradient_loss = Phase {
        name: "gradient_loss",
        kind: PhaseKind::DenseCompute,
        wire_coll_s: iters * net.reduce_time(pbytes, processes),
        wire_p2p_s: 0.0,
        worker_compute_s: iters
            * fpw
            * job.gradient_batch_fraction
            * job.gradient_flops_per_frame()
            / proc_flops,
        master_compute_s: 0.0,
    };
    let curvature = Phase {
        name: "worker_curvature_product",
        kind: PhaseKind::DenseCompute,
        wire_coll_s: iters
            * cg
            * (net.bcast_time(pbytes, processes) + net.reduce_time(pbytes, processes)),
        wire_p2p_s: 0.0,
        worker_compute_s: iters * cg * fpw * job.curvature_fraction * job.gn_flops_per_frame()
            / proc_flops,
        master_compute_s: iters * cg * CG_MASTER_VECTOR_OPS * cast::exact_f64(job.params())
            / XEON_MASTER_SCALAR_FLOPS,
    };
    let eval_heldout = Phase {
        name: "eval_heldout",
        kind: PhaseKind::DenseCompute,
        wire_coll_s: iters
            * evals
            * (net.bcast_time(pbytes, processes) + net.reduce_time(24, processes)),
        wire_p2p_s: 0.0,
        worker_compute_s: iters * evals * heldout_fpw * job.heldout_flops_per_frame() / proc_flops,
        master_compute_s: 0.0,
    };

    RunBreakdown {
        label: format!("xeon-{processes}"),
        phases: vec![
            load_data,
            sync_weights,
            gradient_loss,
            curvature,
            eval_heldout,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_labels_match_paper_notation() {
        assert_eq!(BgqRun::new(4096, 4, 16).label(), "4096-4-16");
        assert_eq!(BgqRun::new(4096, 4, 16).nodes(), 1024);
        assert_eq!(BgqRun::new(8192, 4, 16).nodes(), 2048);
    }

    #[test]
    #[should_panic(expected = "whole nodes")]
    fn ragged_rank_placement_rejected() {
        BgqRun::new(100, 3, 16);
    }

    #[test]
    fn phase_wall_is_sum_of_parts() {
        let p = Phase {
            name: "x",
            kind: PhaseKind::DenseCompute,
            wire_coll_s: 1.0,
            wire_p2p_s: 0.5,
            worker_compute_s: 2.0,
            master_compute_s: 0.25,
        };
        assert!((p.wall_s() - 3.75).abs() < 1e-12);
        assert!((p.master_mpi_coll_s() - 3.0).abs() < 1e-12);
        assert!((p.worker_mpi_coll_s() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn more_nodes_is_faster_up_to_master_bottleneck() {
        let job = JobSpec::ce_50h();
        let t1024 = bgq_time(&job, &BgqRun::new(1024, 4, 16)).total_seconds();
        let t4096 = bgq_time(&job, &BgqRun::new(4096, 4, 16)).total_seconds();
        assert!(t4096 < t1024, "{t4096} !< {t1024}");
        // Near-linear in this range: 4x nodes gives >2.2x.
        assert!(t1024 / t4096 > 2.2, "speedup {}", t1024 / t4096);
    }

    #[test]
    fn gradient_compute_dominates_on_big_data() {
        let job = JobSpec::ce_400h();
        let run = bgq_time(&job, &BgqRun::new(4096, 4, 16));
        let grad = run.phase("gradient_loss").unwrap();
        assert!(grad.worker_compute_s > grad.wire_coll_s);
    }

    #[test]
    fn xeon_is_much_slower_than_bgq_partition() {
        let job = JobSpec::ce_50h();
        let xeon = xeon_time(&job, 96).total_seconds();
        let bgq = bgq_time(&job, &BgqRun::new(4096, 4, 16)).total_seconds();
        assert!(xeon / bgq > 3.0, "speedup only {}", xeon / bgq);
    }

    #[test]
    fn curvature_jitter_is_bounded_and_deterministic() {
        let job = JobSpec::ce_50h();
        let a = bgq_time(&job, &BgqRun::new(2048, 2, 32)).total_seconds();
        let b = bgq_time(&job, &BgqRun::new(2048, 2, 32)).total_seconds();
        assert_eq!(a, b);
    }
}
