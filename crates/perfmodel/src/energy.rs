//! Energy model.
//!
//! The paper's conclusion: "From a financial perspective, Blue Gene/Q
//! is also a leader in energy efficiency compared to the 30 different
//! systems studied [Green500]." This module attaches era-appropriate
//! power figures to the timing model so the Table I comparison can be
//! restated in energy terms.
//!
//! Power figures (2012-era, published system specs):
//! * BG/Q: ~85 kW per 1024-node rack under load → ~83 W/node
//!   (the Green500 #1 machines of 2012 were BG/Q systems at
//!   ~2.1 GFLOPS/W peak).
//! * Commodity Xeon cluster: dual-socket Sandy Bridge node ~350 W
//!   under load plus ~15% for switching/cooling overhead, two
//!   processes (sockets) per node.

use crate::model::{bgq_time, xeon_time, BgqRun, RunBreakdown};
use crate::workload::JobSpec;
use pdnn_util::cast;

/// BG/Q node power under load, watts.
pub const BGQ_NODE_WATTS: f64 = 83.0;
/// Commodity dual-socket node power under load, watts.
pub const XEON_NODE_WATTS: f64 = 350.0;
/// Cluster overhead factor (network switches, fans, PSU losses).
pub const CLUSTER_OVERHEAD: f64 = 1.15;
/// Processes (sockets) per Xeon node.
pub const XEON_PROCS_PER_NODE: usize = 2;

/// Energy summary of a modeled run.
#[derive(Clone, Debug)]
pub struct EnergyReport {
    /// Run label.
    pub label: String,
    /// Wall-clock hours.
    pub hours: f64,
    /// Average machine power, kilowatts.
    pub kilowatts: f64,
    /// Total energy, kilowatt-hours.
    pub kwh: f64,
}

/// Energy of a BG/Q run.
pub fn bgq_energy(job: &JobSpec, run: &BgqRun) -> EnergyReport {
    let breakdown: RunBreakdown = bgq_time(job, run);
    let hours = breakdown.total_hours();
    let kilowatts = cast::exact_f64_usize(run.nodes()) * BGQ_NODE_WATTS / 1000.0;
    EnergyReport {
        label: run.label(),
        hours,
        kilowatts,
        kwh: kilowatts * hours,
    }
}

/// Energy of the Xeon-cluster run.
pub fn xeon_energy(job: &JobSpec, processes: usize) -> EnergyReport {
    let breakdown = xeon_time(job, processes);
    let hours = breakdown.total_hours();
    let nodes = processes.div_ceil(XEON_PROCS_PER_NODE);
    let kilowatts = cast::exact_f64_usize(nodes) * XEON_NODE_WATTS * CLUSTER_OVERHEAD / 1000.0;
    EnergyReport {
        label: format!("xeon-{processes}"),
        hours,
        kilowatts,
        kwh: kilowatts * hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgq_run_energy_is_power_times_time() {
        let job = JobSpec::ce_50h();
        let run = BgqRun::new(4096, 4, 16);
        let e = bgq_energy(&job, &run);
        assert!((e.kwh - e.kilowatts * e.hours).abs() < 1e-9);
        // 1024 nodes × 83 W = 85 kW.
        assert!((e.kilowatts - 85.0).abs() < 0.1, "{}", e.kilowatts);
    }

    #[test]
    fn xeon_cluster_power_is_plausible() {
        let job = JobSpec::ce_50h();
        let e = xeon_energy(&job, 96);
        // 48 nodes × 350 W × 1.15 ≈ 19.3 kW.
        assert!(e.kilowatts > 15.0 && e.kilowatts < 25.0, "{}", e.kilowatts);
    }

    #[test]
    fn bgq_uses_less_energy_per_training_run_despite_more_hardware() {
        // The paper's energy-efficiency claim in job terms: the BG/Q
        // rack draws more power than the small cluster but finishes so
        // much sooner that the energy per completed training run is
        // comparable or better.
        let job = JobSpec::ce_50h();
        let bgq = bgq_energy(&job, &BgqRun::new(4096, 4, 16));
        let xeon = xeon_energy(&job, 96);
        assert!(
            bgq.kwh < xeon.kwh,
            "bgq {:.0} kWh vs xeon {:.0} kWh",
            bgq.kwh,
            xeon.kwh
        );
    }

    #[test]
    fn sequence_job_costs_more_energy_than_ce() {
        let run = BgqRun::new(4096, 4, 16);
        let ce = bgq_energy(&JobSpec::ce_50h(), &run);
        let seq = bgq_energy(&JobSpec::seq_50h(), &run);
        assert!(seq.kwh > ce.kwh);
    }
}
