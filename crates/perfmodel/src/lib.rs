//! # pdnn-perfmodel — the calibrated Blue Gene/Q scaling model
//!
//! Composes the machine model (`pdnn-bgq`) with the Hessian-free
//! iteration structure (`pdnn-core`/`pdnn-dnn` FLOP counts) to
//! reproduce the paper's evaluation at 1024–8192 ranks — scales no
//! laptop can execute functionally. The functional runs at small scale
//! (real threads over `pdnn-mpisim`) validate the *shapes* this model
//! extrapolates; see DESIGN.md's substitution table.
//!
//! * [`workload`] — the paper's jobs: 50 h / 400 h, CE / sequence.
//! * [`model`] — phase-decomposed timing for BG/Q partitions and the
//!   Intel Xeon cluster baseline.
//! * [`figures`] — generators that print each paper table/figure as a
//!   text table + CSV series.

pub mod energy;
pub mod figures;
pub mod model;
pub mod workload;

pub use energy::{bgq_energy, xeon_energy, EnergyReport};
pub use model::{bgq_time, xeon_time, BgqRun, Phase, RunBreakdown};
pub use workload::{JobSpec, ObjectiveKind};
