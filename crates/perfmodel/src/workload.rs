//! Modeled training jobs (the paper's experimental workloads).

use pdnn_dnn::flops;
use pdnn_speech::hours_to_frames;
use pdnn_util::cast;

/// Training criterion for the modeled job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectiveKind {
    /// Frame cross-entropy.
    CrossEntropy,
    /// Sequence (MMI) training over `states` HMM states: roughly a
    /// 2× compute factor per pass (numerator + denominator work) and
    /// more outer iterations to converge.
    Sequence {
        /// Denominator-graph states.
        states: usize,
    },
}

/// A modeled training job: data volume, model architecture, and the
/// Hessian-free iteration structure.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Hours of audio (1 h = 360 000 frames).
    pub hours: f64,
    /// Layer widths of the acoustic model.
    pub dims: Vec<usize>,
    /// Training criterion.
    pub objective: ObjectiveKind,
    /// Outer HF iterations (the paper: networks converge in 20–40
    /// passes).
    pub hf_iters: usize,
    /// Average CG iterations per HF iteration.
    pub cg_iters: usize,
    /// Held-out evaluations per HF iteration (backtracking + line
    /// search + bookkeeping).
    pub backtrack_evals: usize,
    /// Fraction of data resampled for curvature products per CG call.
    pub curvature_fraction: f64,
    /// Fraction of data in the held-out set.
    pub heldout_fraction: f64,
    /// Worker load-imbalance factor (max/mean frames; 1.0 = the
    /// paper's sorted/balanced assignment, larger = naive).
    pub imbalance: f64,
    /// Fraction of the training data the gradient is computed over
    /// each HF iteration. 1.0 reproduces the paper's "gradients are
    /// computed over all the training data"; the 400-hour job uses a
    /// smaller gradient batch — the standard large-corpus HF practice
    /// [Kingsbury et al. 2012] and the only way the paper's own
    /// numbers (6.3 h for 8x the data and ~7x the parameters of the
    /// 1.3 h job) are mutually consistent. See EXPERIMENTS.md.
    pub gradient_batch_fraction: f64,
    /// Acoustic feature dimension (for load_data volume).
    pub feature_dim: usize,
}

impl JobSpec {
    /// The 50-hour cross-entropy job (Table I row 1, Figure 1(a)).
    ///
    /// Model: a mid-size hybrid acoustic DNN (≈16 M parameters, the
    /// paper's "10–50 million" band).
    pub fn ce_50h() -> JobSpec {
        JobSpec {
            hours: 50.0,
            dims: vec![440, 1024, 1024, 1024, 1024, 1024, 9300],
            objective: ObjectiveKind::CrossEntropy,
            hf_iters: 20,
            cg_iters: 50,
            backtrack_evals: 12,
            curvature_fraction: 0.01,
            heldout_fraction: 0.05,
            imbalance: 1.02,
            feature_dim: 440,
            gradient_batch_fraction: 1.0,
        }
    }

    /// The 50-hour sequence-training job (Table I row 2).
    ///
    /// `states` here is the *effective lattice density* (competitor
    /// arcs per frame) driving the forward–backward extra cost — the
    /// production system used pruned word lattices, not the full
    /// 9.3 k-state denominator, so the per-frame extra work is small
    /// relative to the doubled DNN passes.
    pub fn seq_50h() -> JobSpec {
        JobSpec {
            objective: ObjectiveKind::Sequence { states: 300 },
            hf_iters: 30,
            ..JobSpec::ce_50h()
        }
    }

    /// The 400-hour job (Figure 1(b)): more data and the larger
    /// ">100 M parameter" network the paper trains in 6.3 h on two
    /// racks. Gradient batching and an absolute-size curvature sample
    /// (curvature estimation does not need more frames just because
    /// the corpus grew) keep the iteration cost bounded.
    pub fn ce_400h() -> JobSpec {
        JobSpec {
            hours: 400.0,
            dims: vec![440, 2048, 2048, 2048, 2048, 2048, 42000],
            gradient_batch_fraction: 0.05,
            curvature_fraction: 0.000625,
            heldout_fraction: 0.01,
            ..JobSpec::ce_50h()
        }
    }

    /// The 400-hour job structure scaled to an arbitrary corpus size
    /// (gradient batch and curvature sample sizes held *absolute*, so
    /// per-iteration cost stays bounded as data grows — how the paper
    /// scales "to billions of training samples").
    pub fn ce_hours(hours: f64) -> JobSpec {
        let base = JobSpec::ce_400h();
        // Keep the same absolute gradient batch (5% of 400 h) and
        // curvature sample as the 400-hour job.
        let scale = 400.0 / hours;
        JobSpec {
            hours,
            gradient_batch_fraction: (base.gradient_batch_fraction * scale).min(1.0),
            curvature_fraction: (base.curvature_fraction * scale).min(1.0),
            heldout_fraction: (base.heldout_fraction * scale).min(0.5),
            ..base
        }
    }

    /// Total training frames.
    pub fn frames(&self) -> u64 {
        hours_to_frames(self.hours)
    }

    /// Trainable parameters of the model.
    pub fn params(&self) -> u64 {
        flops::num_params(&self.dims)
    }

    /// Parameter-vector size on the wire (f32).
    pub fn param_bytes(&self) -> u64 {
        4 * self.params()
    }

    /// Compute multiplier of the objective relative to cross-entropy
    /// (sequence training touches numerator and denominator
    /// statistics: ≈2× the per-pass work, as the Table I Xeon ratio
    /// 18.7 h / 9 h implies once comm share is accounted for).
    pub fn objective_compute_factor(&self) -> f64 {
        match self.objective {
            ObjectiveKind::CrossEntropy => 1.0,
            ObjectiveKind::Sequence { .. } => 2.0,
        }
    }

    /// FLOPs per frame of a gradient pass under the objective.
    pub fn gradient_flops_per_frame(&self) -> f64 {
        let base = cast::exact_f64(flops::gradient_flops_per_frame(&self.dims));
        let extra = match self.objective {
            ObjectiveKind::CrossEntropy => 0.0,
            ObjectiveKind::Sequence { states } => {
                cast::exact_f64(flops::mmi_extra_flops_per_frame(states))
            }
        };
        base * self.objective_compute_factor() + extra
    }

    /// FLOPs per frame of one Gauss–Newton product (forward cached).
    pub fn gn_flops_per_frame(&self) -> f64 {
        cast::exact_f64(flops::gn_product_flops_per_frame(&self.dims, false))
            * self.objective_compute_factor()
    }

    /// FLOPs per frame of a held-out evaluation (forward only).
    pub fn heldout_flops_per_frame(&self) -> f64 {
        cast::exact_f64(flops::loss_eval_flops_per_frame(&self.dims))
            * self.objective_compute_factor()
    }

    /// Bytes of acoustic data shipped during load_data.
    pub fn data_bytes(&self) -> u64 {
        // pdnn-lint: allow(l6-lossy-cast): usize -> u64 widening is lossless on supported targets
        self.frames() * (self.feature_dim as u64 * 4 + 4)
    }

    /// Sanity checks.
    pub fn validate(&self) {
        assert!(self.hours > 0.0, "hours must be positive");
        assert!(self.dims.len() >= 2, "need at least two layer dims");
        assert!(self.hf_iters >= 1 && self.cg_iters >= 1);
        assert!(self.curvature_fraction > 0.0 && self.curvature_fraction <= 1.0);
        assert!(self.heldout_fraction > 0.0 && self.heldout_fraction < 1.0);
        assert!(self.imbalance >= 1.0, "imbalance is max/mean, >= 1");
        assert!(
            self.gradient_batch_fraction > 0.0 && self.gradient_batch_fraction <= 1.0,
            "gradient_batch_fraction must be in (0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_jobs_validate() {
        JobSpec::ce_50h().validate();
        JobSpec::seq_50h().validate();
        JobSpec::ce_400h().validate();
    }

    #[test]
    fn frame_counts_match_paper() {
        assert_eq!(JobSpec::ce_50h().frames(), 18_000_000);
        assert_eq!(JobSpec::ce_400h().frames(), 144_000_000);
    }

    #[test]
    fn parameter_counts_are_in_the_papers_bands() {
        let p50 = JobSpec::ce_50h().params();
        assert!(
            (10_000_000..50_000_000).contains(&p50),
            "50 h model has {p50} params"
        );
        let p400 = JobSpec::ce_400h().params();
        assert!(p400 > 100_000_000, "400 h model has {p400} params");
    }

    #[test]
    fn sequence_costs_about_twice_ce_per_pass() {
        let ce = JobSpec::ce_50h();
        let seq = JobSpec::seq_50h();
        let ratio = seq.gradient_flops_per_frame() / ce.gradient_flops_per_frame();
        assert!(ratio > 1.9 && ratio < 2.2, "ratio {ratio}");
        assert!(seq.hf_iters > ce.hf_iters);
    }

    #[test]
    fn data_volume_is_plausible() {
        // 18 M frames x ~1.8 KB ≈ 32 GB.
        let gb = JobSpec::ce_50h().data_bytes() as f64 / 1e9;
        assert!(gb > 20.0 && gb < 50.0, "{gb} GB");
    }
}
