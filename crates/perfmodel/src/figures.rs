//! Generators for the paper's tables and figures.
//!
//! Each function returns a [`Table`] holding exactly the series the
//! paper plots; the bench binaries print it and write the CSV. Tests
//! in this module assert the *shape* claims (orderings, ratios,
//! crossovers) rather than absolute numbers — see EXPERIMENTS.md.

use crate::model::{bgq_time, xeon_time, BgqRun};
use crate::workload::JobSpec;
use pdnn_bgq::counters::{classify_cycles, PhaseKind};
use pdnn_bgq::node::CLOCK_HZ;
use pdnn_obs::{Event, InMemoryRecorder, Recorder, Telemetry, Value};
use pdnn_util::cast;
use pdnn_util::report::Table;

/// The rank/threads configurations of Figure 1(a) (one rack).
pub fn fig1a_configs() -> Vec<BgqRun> {
    vec![
        BgqRun::new(1024, 1, 16),
        BgqRun::new(1024, 1, 32),
        BgqRun::new(1024, 1, 64),
        BgqRun::new(2048, 2, 16),
        BgqRun::new(2048, 2, 32),
        BgqRun::new(4096, 4, 8),
        BgqRun::new(4096, 4, 16),
    ]
}

/// Figure 1(b) adds the two-rack configuration.
pub fn fig1b_configs() -> Vec<BgqRun> {
    let mut c = fig1a_configs();
    c.push(BgqRun::new(8192, 4, 16));
    c
}

/// The three full-SMT configurations used for Figures 2–5.
pub fn breakdown_configs() -> Vec<BgqRun> {
    vec![
        BgqRun::new(1024, 1, 64),
        BgqRun::new(2048, 2, 32),
        BgqRun::new(4096, 4, 16),
    ]
}

/// Figure 1: execution time per configuration.
pub fn fig1(job: &JobSpec, configs: &[BgqRun]) -> Table {
    let mut t = Table::new(
        format!(
            "Fig 1 — execution time, {:.0}-hour training data",
            job.hours
        ),
        &["config", "seconds", "hours"],
    );
    for run in configs {
        let total = bgq_time(job, run).total_seconds();
        t.row(&[
            run.label(),
            format!("{total:.0}"),
            format!("{:.2}", total / 3600.0),
        ]);
    }
    t
}

/// Map the shared phase name to the side-specific function name the
/// paper uses.
fn display_name(phase: &str, master_side: bool) -> &'static str {
    match (phase, master_side) {
        ("load_data", _) => "load_data",
        ("sync_weights", true) => "sync_weights_master",
        ("sync_weights", false) => "sync_weights_worker",
        ("gradient_loss", _) => "gradient_loss",
        ("worker_curvature_product", true) => "cg_minimize",
        ("worker_curvature_product", false) => "worker_curvature_product",
        ("eval_heldout", _) => "eval_heldout",
        _ => "other",
    }
}

/// Model-driven attribution for Figures 2–5 as `pdnn_obs` telemetry.
///
/// Emits one `"phase_attribution"` event per (configuration, function,
/// side) over the [`breakdown_configs`]: the A2 cycle categories in
/// Gcyc plus the per-class MPI seconds. The figure builders
/// ([`fig2_from`] … [`fig5_from`]) consume exactly this stream — the
/// bench binaries write it to JSONL first and rebuild the tables from
/// the parsed file.
pub fn phase_attribution(job: &JobSpec) -> Telemetry {
    let rec = InMemoryRecorder::with_manual_clock();
    for run in breakdown_configs() {
        let breakdown = bgq_time(job, &run);
        let cfg = run.node_config();
        for phase in &breakdown.phases {
            for master_side in [true, false] {
                // Busy cycles use the phase's own profile; waiting
                // cycles (blocked in MPI while the other side
                // computes) use the CommWait profile.
                let (busy_s, wait_s) = if master_side {
                    (
                        phase.master_compute_s,
                        phase.wire_coll_s + phase.wire_p2p_s + phase.worker_compute_s,
                    )
                } else {
                    (
                        phase.worker_compute_s,
                        phase.wire_coll_s + phase.wire_p2p_s + phase.master_compute_s,
                    )
                };
                let mut cycles = classify_cycles(phase.kind, cfg, busy_s * CLOCK_HZ);
                cycles.merge(&classify_cycles(
                    PhaseKind::CommWait,
                    cfg,
                    wait_s * CLOCK_HZ,
                ));
                let (coll, p2p) = if master_side {
                    (phase.master_mpi_coll_s(), phase.master_mpi_p2p_s())
                } else {
                    (phase.worker_mpi_coll_s(), phase.worker_mpi_p2p_s())
                };
                let side = if master_side { "master" } else { "worker" };
                rec.event(
                    "phase_attribution",
                    vec![
                        ("config".into(), Value::Str(run.label())),
                        (
                            "function".into(),
                            Value::from(display_name(phase.name, master_side)),
                        ),
                        ("side".into(), Value::from(side)),
                        ("committed_gcyc".into(), Value::F64(cycles.committed / 1e9)),
                        ("iu_empty_gcyc".into(), Value::F64(cycles.iu_empty / 1e9)),
                        ("axu_gcyc".into(), Value::F64(cycles.axu_dep_stalls / 1e9)),
                        ("fxu_gcyc".into(), Value::F64(cycles.fxu_dep_stalls / 1e9)),
                        ("other_gcyc".into(), Value::F64(cycles.other / 1e9)),
                        ("mpi_coll_s".into(), Value::F64(coll)),
                        ("mpi_p2p_s".into(), Value::F64(p2p)),
                    ],
                );
            }
        }
    }
    rec.take()
}

/// The `"phase_attribution"` events for one side, in emission order.
fn side_events<'a>(telemetry: &'a Telemetry, side: &'a str) -> impl Iterator<Item = &'a Event> {
    telemetry.events.iter().filter(move |e| {
        e.name == "phase_attribution" && e.get("side").and_then(Value::as_str) == Some(side)
    })
}

fn event_str(e: &Event, key: &str) -> String {
    e.get(key)
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string()
}

fn event_f64(e: &Event, key: &str) -> f64 {
    e.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

/// Cycle-breakdown rows for one side (master/worker) of Figures 2–3,
/// from a telemetry stream.
fn cycles_table_from(telemetry: &Telemetry, master_side: bool, title: &str) -> Table {
    let mut t = Table::new(
        title,
        &[
            "config",
            "function",
            "committed (Gcyc)",
            "iu_empty (Gcyc)",
            "axu_dep (Gcyc)",
            "fxu_dep (Gcyc)",
            "other (Gcyc)",
        ],
    );
    let side = if master_side { "master" } else { "worker" };
    for e in side_events(telemetry, side) {
        t.row(&[
            event_str(e, "config"),
            event_str(e, "function"),
            format!("{:.1}", event_f64(e, "committed_gcyc")),
            format!("{:.1}", event_f64(e, "iu_empty_gcyc")),
            format!("{:.1}", event_f64(e, "axu_gcyc")),
            format!("{:.1}", event_f64(e, "fxu_gcyc")),
            format!("{:.1}", event_f64(e, "other_gcyc")),
        ]);
    }
    t
}

/// MPI-time rows for one side of Figures 4–5, from a telemetry stream.
fn mpi_table_from(telemetry: &Telemetry, master_side: bool, title: &str) -> Table {
    let mut t = Table::new(
        title,
        &["config", "function", "collective (s)", "point-to-point (s)"],
    );
    let side = if master_side { "master" } else { "worker" };
    for e in side_events(telemetry, side) {
        t.row(&[
            event_str(e, "config"),
            event_str(e, "function"),
            format!("{:.1}", event_f64(e, "mpi_coll_s")),
            format!("{:.1}", event_f64(e, "mpi_p2p_s")),
        ]);
    }
    t
}

/// Figure 2 from a recorded attribution stream.
pub fn fig2_from(telemetry: &Telemetry) -> Table {
    cycles_table_from(telemetry, true, "Fig 2 — master process cycles breakdown")
}

/// Figure 3 from a recorded attribution stream.
pub fn fig3_from(telemetry: &Telemetry) -> Table {
    cycles_table_from(telemetry, false, "Fig 3 — worker process cycles breakdown")
}

/// Figure 4 from a recorded attribution stream.
pub fn fig4_from(telemetry: &Telemetry) -> Table {
    mpi_table_from(telemetry, true, "Fig 4 — master MPI communication time")
}

/// Figure 5 from a recorded attribution stream.
pub fn fig5_from(telemetry: &Telemetry) -> Table {
    mpi_table_from(telemetry, false, "Fig 5 — worker MPI communication time")
}

/// Figure 2: master process cycle breakdown.
pub fn fig2(job: &JobSpec) -> Table {
    fig2_from(&phase_attribution(job))
}

/// Figure 3: worker process cycle breakdown.
pub fn fig3(job: &JobSpec) -> Table {
    fig3_from(&phase_attribution(job))
}

/// Figure 4: master MPI communication time.
pub fn fig4(job: &JobSpec) -> Table {
    fig4_from(&phase_attribution(job))
}

/// Figure 5: worker MPI communication time.
pub fn fig5(job: &JobSpec) -> Table {
    fig5_from(&phase_attribution(job))
}

/// Table I: scaling-up performance, Xeon-96 vs BG/Q-4096.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table I — scaling up performance",
        &[
            "training data",
            "Xeon 96 procs (hrs)",
            "BG/Q 4096 MPI (hrs)",
            "speed up",
            "freq adj.",
        ],
    );
    let run = BgqRun::new(4096, 4, 16);
    for (name, job) in [
        ("50-hour Cross-Entropy", JobSpec::ce_50h()),
        ("50-hour Sequence", JobSpec::seq_50h()),
    ] {
        let xeon = xeon_time(&job, 96).total_hours();
        let bgq = bgq_time(&job, &run).total_hours();
        let speedup = xeon / bgq;
        let freq_adj = speedup * 2.9 / 1.6;
        t.row(&[
            name.to_string(),
            format!("{xeon:.1}"),
            format!("{bgq:.2}"),
            format!("{speedup:.1}x"),
            format!("{freq_adj:.1}x"),
        ]);
    }
    t
}

/// Convenience: the Table I numbers as raw values
/// `(xeon_h, bgq_h, speedup)` per objective, for tests.
pub fn table1_values() -> [(f64, f64, f64); 2] {
    let run = BgqRun::new(4096, 4, 16);
    let mut out = [(0.0, 0.0, 0.0); 2];
    for (i, job) in [JobSpec::ce_50h(), JobSpec::seq_50h()].iter().enumerate() {
        let xeon = xeon_time(job, 96).total_hours();
        let bgq = bgq_time(job, &run).total_hours();
        out[i] = (xeon, bgq, xeon / bgq);
    }
    out
}

/// Total seconds of each Figure-1 configuration, for tests.
pub fn fig1_values(job: &JobSpec, configs: &[BgqRun]) -> Vec<(String, f64)> {
    configs
        .iter()
        .map(|run| (run.label(), bgq_time(job, run).total_seconds()))
        .collect()
}

/// Strong-scaling curve: time, speedup, and parallel efficiency
/// across rank counts at 4 ranks/node, 16 threads/rank — the paper's
/// "scales linearly up to 4096 processes … beyond that sub-linear"
/// claim as a table.
pub fn scaling_curve(job: &JobSpec, rank_counts: &[usize]) -> Table {
    let mut t = Table::new(
        format!("Strong scaling, {:.0}-hour training data", job.hours),
        &["ranks", "hours", "speedup", "efficiency"],
    );
    let base_ranks = rank_counts[0];
    let base = bgq_time(job, &BgqRun::new(base_ranks, 4, 16)).total_seconds();
    for &ranks in rank_counts {
        let secs = bgq_time(job, &BgqRun::new(ranks, 4, 16)).total_seconds();
        let speedup = base / secs;
        let ideal = cast::exact_f64_usize(ranks) / cast::exact_f64_usize(base_ranks);
        t.row(&[
            format!("{ranks}"),
            format!("{:.2}", secs / 3600.0),
            format!("{speedup:.2}x"),
            format!("{:.0}%", 100.0 * speedup / ideal),
        ]);
    }
    t
}

/// Raw `(ranks, seconds)` series for the scaling curve, for tests.
pub fn scaling_values(job: &JobSpec, rank_counts: &[usize]) -> Vec<(usize, f64)> {
    rank_counts
        .iter()
        .map(|&r| (r, bgq_time(job, &BgqRun::new(r, 4, 16)).total_seconds()))
        .collect()
}

/// The "billions of training examples in a few hours" claim: corpus
/// size vs modeled training time on two racks (8192-4-16), with the
/// absolute-size gradient batch and curvature sample of the 400-hour
/// job.
pub fn billions_table() -> Table {
    let mut t = Table::new(
        "Training time vs corpus size, 8192-4-16 (two racks)",
        &["hours of audio", "frames", "modeled hours"],
    );
    let run = BgqRun::new(8192, 4, 16);
    for &hours in &[50.0f64, 100.0, 400.0, 1000.0, 2800.0] {
        let job = JobSpec::ce_hours(hours);
        let modeled = bgq_time(&job, &run).total_hours();
        t.row(&[
            format!("{hours:.0}"),
            pdnn_util::fmt_count(job.frames()),
            format!("{modeled:.1}"),
        ]);
    }
    t
}

/// Raw `(hours, modeled_hours)` pairs for tests.
pub fn billions_values() -> Vec<(f64, f64)> {
    let run = BgqRun::new(8192, 4, 16);
    [50.0f64, 100.0, 400.0, 1000.0, 2800.0]
        .iter()
        .map(|&h| (h, bgq_time(&JobSpec::ce_hours(h), &run).total_hours()))
        .collect()
}

/// Int8 wire compression shrinks the f32 payload to one byte per
/// element plus a per-chunk scale header; measured against the
/// simulator's byte counters the effective payload factor is ~0.26.
pub const INT8_PAYLOAD_FACTOR: f64 = 0.26;

/// Modeled bytes through rank 0 per HF iteration under master-centric
/// sync. Every phase is a rooted binomial collective, so rank 0
/// terminates `⌈log₂P⌉` full-payload message lanes per collective —
/// the master's byte load *grows* with the world. The per-iteration
/// schedule is one θ broadcast, one gradient reduce, `cg`
/// (bcast + reduce) pairs for the CG solve, and `backtrack_evals`
/// trial-θ broadcasts (the scalar held-out reduce is negligible).
pub fn master_rank0_bytes_per_iter(job: &JobSpec, ranks: usize) -> f64 {
    let n = cast::exact_f64(job.param_bytes());
    let lanes = f64::from(ranks.next_power_of_two().trailing_zeros());
    let collectives = 2.0
        + 2.0 * cast::exact_f64_usize(job.cg_iters)
        + cast::exact_f64_usize(job.backtrack_evals);
    n * lanes * collectives
}

/// Modeled bytes through rank 0 per HF iteration under ring sync with
/// a wire-payload factor (1.0 = raw f32, [`INT8_PAYLOAD_FACTOR`] for
/// int8). The replicated optimizer drops every θ-shipping broadcast;
/// what remains is one allreduce per gradient and per CG product, and
/// a symmetric ring moves `2n·(P-1)/P` out plus the same in through
/// *every* rank — near-constant in P, no hotspot.
pub fn ring_rank0_bytes_per_iter(job: &JobSpec, ranks: usize, payload_factor: f64) -> f64 {
    let n = cast::exact_f64(job.param_bytes()) * payload_factor;
    let p = cast::exact_f64_usize(ranks);
    let allreduces = 1.0 + cast::exact_f64_usize(job.cg_iters);
    4.0 * n * (p - 1.0) / p * allreduces
}

/// Raw `(ranks, master, ring, ring_int8)` rank-0 bytes per HF
/// iteration, for tests and the table builder.
pub fn sync_crossover_values(job: &JobSpec, rank_counts: &[usize]) -> Vec<(usize, f64, f64, f64)> {
    rank_counts
        .iter()
        .map(|&p| {
            (
                p,
                master_rank0_bytes_per_iter(job, p),
                ring_rank0_bytes_per_iter(job, p, 1.0),
                ring_rank0_bytes_per_iter(job, p, INT8_PAYLOAD_FACTOR),
            )
        })
        .collect()
}

/// Smallest world size in `rank_counts` at which the masterless
/// strategy's rank-0 traffic is at least `threshold` times below the
/// master-centric rendezvous — the crossover the wire codec moves.
pub fn sync_crossover_rank(
    job: &JobSpec,
    payload_factor: f64,
    threshold: f64,
    rank_counts: &[usize],
) -> Option<usize> {
    rank_counts.iter().copied().find(|&p| {
        master_rank0_bytes_per_iter(job, p)
            >= threshold * ring_rank0_bytes_per_iter(job, p, payload_factor)
    })
}

/// Rank-0 bytes-per-iteration across world sizes by sync strategy:
/// the master-centric curve grows with `log₂P` while the ring curves
/// stay flat, so the reduction factor rises with scale — and wire
/// compression shifts the whole ring curve down, moving the ≥2x
/// crossover (the BENCH_6 gate tier) from mid-size worlds to the
/// smallest. Validated against the simulator's measured counters in
/// `BENCH_6.json` (P=8: ring ~2.1x, ring+int8 ~8x).
pub fn sync_crossover_table(job: &JobSpec, rank_counts: &[usize]) -> Table {
    let mut t = Table::new(
        "Rank-0 sync traffic per HF iteration, by sync strategy",
        &[
            "ranks",
            "master (MB)",
            "ring (MB)",
            "ring+int8 (MB)",
            "ring reduction",
            "int8 reduction",
        ],
    );
    for (p, master, ring, ring_i8) in sync_crossover_values(job, rank_counts) {
        t.row(&[
            format!("{p}"),
            format!("{:.1}", master / 1e6),
            format!("{:.1}", ring / 1e6),
            format!("{:.1}", ring_i8 / 1e6),
            format!("{:.2}x", master / ring),
            format!("{:.2}x", master / ring_i8),
        ]);
    }
    t
}

/// Helper for the comm ablation: total weight-sync time per network.
pub fn comm_ablation(param_bytes: u64, ranks: usize) -> Table {
    use pdnn_bgq::comm_model::{ethernet_1g, socket_1g, Network};
    let mut t = Table::new(
        format!(
            "Weight synchronization cost, {} MB model, {ranks} ranks",
            param_bytes >> 20
        ),
        &["transport", "bcast time (s)"],
    );
    let nodes = (ranks / 4).max(1);
    for (name, net) in [
        ("BG/Q MPI collectives", Network::bgq(nodes)),
        ("Ethernet cluster MPI", ethernet_1g()),
        ("socket (sequential fan-out)", socket_1g()),
    ] {
        t.row(&[
            name.to_string(),
            format!("{:.4}", net.bcast_time(param_bytes, ranks)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seconds_of(values: &[(String, f64)], label: &str) -> f64 {
        values
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("missing config {label}"))
            .1
    }

    #[test]
    fn fig1a_thread_scaling_improves_performance() {
        // Paper: "scaling up by increasing the number of OpenMP
        // threads to fully utilize the cores improves the performance"
        let job = JobSpec::ce_50h();
        let v = fig1_values(&job, &fig1a_configs());
        let t16 = seconds_of(&v, "1024-1-16");
        let t32 = seconds_of(&v, "1024-1-32");
        let t64 = seconds_of(&v, "1024-1-64");
        assert!(t16 > t32 && t32 > t64, "{t16} {t32} {t64}");
    }

    #[test]
    fn fig1a_64_thread_config_ordering_matches_paper() {
        // "the performance of 2048-2-32 is slightly better than
        // 4096-4-16 which is better than 1024-1-64"
        let job = JobSpec::ce_50h();
        let v = fig1_values(&job, &fig1a_configs());
        let t2048 = seconds_of(&v, "2048-2-32");
        let t4096 = seconds_of(&v, "4096-4-16");
        let t1024 = seconds_of(&v, "1024-1-64");
        assert!(
            t2048 < t4096,
            "2048-2-32 {t2048} should beat 4096-4-16 {t4096}"
        );
        assert!(
            t4096 < t1024,
            "4096-4-16 {t4096} should beat 1024-1-64 {t1024}"
        );
        // "slightly better": within ~15%.
        assert!(t4096 / t2048 < 1.15, "gap too large: {}", t4096 / t2048);
    }

    #[test]
    fn fig1b_two_racks_give_the_papers_extra_speedup() {
        // "An additional 22% speedup is obtained when the
        // configuration is scaled to 8192-4-16 (two Blue Gene racks)."
        let job = JobSpec::ce_400h();
        let v = fig1_values(&job, &fig1b_configs());
        let t4096 = seconds_of(&v, "4096-4-16");
        let t8192 = seconds_of(&v, "8192-4-16");
        let speedup = t4096 / t8192;
        assert!(
            speedup > 1.10 && speedup < 1.45,
            "two-rack speedup {speedup} out of band"
        );
    }

    #[test]
    fn fig1b_400h_trains_in_about_six_hours() {
        // "A DNN on 400 hours can be trained using this configuration
        // in 6.3 hours." (8192-4-16)
        let job = JobSpec::ce_400h();
        let v = fig1_values(&job, &fig1b_configs());
        let hours = seconds_of(&v, "8192-4-16") / 3600.0;
        assert!(
            hours > 4.5 && hours < 8.5,
            "400 h job modeled at {hours} hours"
        );
    }

    #[test]
    fn table1_matches_paper_bands() {
        let [(xeon_ce, bgq_ce, speed_ce), (xeon_seq, bgq_seq, speed_seq)] = table1_values();
        // Paper: 9 h / 1.3 h / 6.9x and 18.7 h / 4.19 h / 4.5x.
        assert!(xeon_ce > 6.5 && xeon_ce < 12.0, "xeon CE {xeon_ce} h");
        assert!(bgq_ce > 0.9 && bgq_ce < 1.8, "bgq CE {bgq_ce} h");
        assert!(speed_ce > 4.5 && speed_ce < 9.5, "CE speedup {speed_ce}");
        assert!(xeon_seq > 14.0 && xeon_seq < 25.0, "xeon seq {xeon_seq} h");
        assert!(bgq_seq > 2.8 && bgq_seq < 5.6, "bgq seq {bgq_seq} h");
        assert!(
            speed_seq > 3.0 && speed_seq < 7.0,
            "seq speedup {speed_seq}"
        );
        // Sequence is costlier than CE on both machines, and the BG/Q
        // advantage is smaller for sequence (paper: 6.9x vs 4.5x).
        assert!(xeon_seq > xeon_ce && bgq_seq > bgq_ce);
        assert!(speed_seq < speed_ce);
    }

    #[test]
    fn fig2_master_mpi_grows_with_ranks() {
        // Paper: "As the number of MPI ranks increases … the master
        // process needs to spend more time distributing the data
        // (load_data) … and synchronizing the weights."
        let job = JobSpec::ce_50h();
        let b1024 = bgq_time(&job, &BgqRun::new(1024, 1, 64));
        let b4096 = bgq_time(&job, &BgqRun::new(4096, 4, 16));
        let load_1024 = b1024.phase("load_data").unwrap().master_mpi_p2p_s();
        let load_4096 = b4096.phase("load_data").unwrap().master_mpi_p2p_s();
        assert!(load_4096 > load_1024, "{load_4096} !> {load_1024}");
        let sync_1024 = b1024.phase("sync_weights").unwrap().master_compute_s;
        let sync_4096 = b4096.phase("sync_weights").unwrap().master_compute_s;
        assert!(sync_4096 > sync_1024);
    }

    #[test]
    fn fig3_worker_compute_shrinks_with_ranks() {
        // "for almost all function calls, as the MPI ranks increase,
        // the computation time decreases (such as gradient_loss)"
        let job = JobSpec::ce_50h();
        let b1024 = bgq_time(&job, &BgqRun::new(1024, 1, 64));
        let b4096 = bgq_time(&job, &BgqRun::new(4096, 4, 16));
        let g1024 = b1024.phase("gradient_loss").unwrap().worker_compute_s;
        let g4096 = b4096.phase("gradient_loss").unwrap().worker_compute_s;
        assert!(g4096 < g1024, "{g4096} !< {g1024}");
    }

    #[test]
    fn tables_render_and_have_rows() {
        let job = JobSpec::ce_50h();
        assert_eq!(fig1(&job, &fig1a_configs()).len(), 7);
        assert_eq!(fig2(&job).len(), 15); // 3 configs x 5 functions
        assert_eq!(fig3(&job).len(), 15);
        assert_eq!(fig4(&job).len(), 15);
        assert_eq!(fig5(&job).len(), 15);
        assert_eq!(table1().len(), 2);
        assert!(!fig1(&job, &fig1a_configs()).render().is_empty());
    }

    #[test]
    fn attribution_round_trips_through_jsonl() {
        let job = JobSpec::ce_50h();
        let telemetry = phase_attribution(&job);
        // 3 configs x 5 functions x 2 sides.
        assert_eq!(telemetry.events.len(), 30);
        let text = pdnn_obs::jsonl::to_jsonl_string(0, &telemetry);
        let parsed = pdnn_obs::jsonl::parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        let back = &parsed[0].1;
        // The tables built from the parsed file match the direct path
        // exactly (f64 values survive the JSONL round trip losslessly).
        assert_eq!(fig2_from(back).render(), fig2(&job).render());
        assert_eq!(fig3_from(back).render(), fig3(&job).render());
        assert_eq!(fig4_from(back).render(), fig4(&job).render());
        assert_eq!(fig5_from(back).render(), fig5(&job).render());
    }

    #[test]
    fn scaling_is_monotone_then_sublinear() {
        // "performance on BG/Q scales linearly up to 4096 processes
        // … Beyond that, although we see a significant speed up, the
        // speed improvements are sub-linear."
        let job = JobSpec::ce_400h();
        let v = scaling_values(&job, &[512, 1024, 2048, 4096, 8192]);
        // Time decreases monotonically with ranks.
        for w in v.windows(2) {
            assert!(w[1].1 < w[0].1, "{:?} not faster than {:?}", w[1], w[0]);
        }
        let eff = |a: (usize, f64), b: (usize, f64)| (a.1 / b.1) / (b.0 as f64 / a.0 as f64);
        // Marginal doubling efficiency falls as the serial master
        // share grows: the first doubling (512→1024) beats the last
        // (4096→8192).
        let eff_head = eff(v[0], v[1]);
        let eff_tail = eff(v[3], v[4]);
        assert!(
            eff_tail < eff_head,
            "tail efficiency {eff_tail} not below head {eff_head}"
        );
        assert_eq!(scaling_curve(&job, &[512, 1024]).len(), 2);
    }

    #[test]
    fn billions_of_samples_train_in_hours_not_weeks() {
        // "we can train neural networks using billions of training
        // examples in a few hours" — with the absolute-size gradient
        // batch/curvature sample, cost grows only through load_data
        // and the (fixed-count) held-out set, so a 2800-hour corpus
        // (≈1.0e9 frames) stays within the same order as the 400-hour
        // run.
        let v = billions_values();
        let t400 = v.iter().find(|(h, _)| *h == 400.0).unwrap().1;
        let t2800 = v.iter().find(|(h, _)| *h == 2800.0).unwrap().1;
        assert!(t2800 < 3.0 * t400, "{t2800} vs {t400}");
        assert!(t2800 < 24.0, "a billion frames modeled at {t2800} hours");
        // Time is monotone in data volume (load_data + heldout grow).
        for w in v.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.99, "{w:?}");
        }
        // And the frame count at 2800 h really is ~1e9.
        assert!(JobSpec::ce_hours(2800.0).frames() > 1_000_000_000);
    }

    #[test]
    fn master_rank0_traffic_grows_while_ring_stays_flat() {
        let job = JobSpec::ce_50h();
        let v = sync_crossover_values(&job, &[4, 8, 16, 64, 1024, 4096]);
        // Master-centric rank-0 bytes grow with log2(P)...
        for w in v.windows(2) {
            assert!(w[1].1 > w[0].1, "master not growing: {w:?}");
        }
        // ...while the ring curve is bounded by its P→∞ asymptote.
        let asymptote =
            4.0 * cast::exact_f64(job.param_bytes()) * (1.0 + cast::exact_f64_usize(job.cg_iters));
        for (_, _, ring, _) in &v {
            assert!(*ring < asymptote);
        }
        // The model tracks the simulator's measured counters
        // (BENCH_6.json, P=8: ring 2.08x, ring+int8 8.01x).
        let (_, master8, ring8, i8_8) = v[1];
        assert!(
            (1.5..2.6).contains(&(master8 / ring8)),
            "P=8 ring reduction {} off the measured band",
            master8 / ring8
        );
        assert!(master8 / i8_8 >= 4.0, "P=8 int8 reduction below the gate");
    }

    #[test]
    fn wire_compression_moves_the_crossover_down() {
        let job = JobSpec::ce_50h();
        let sweep = [2usize, 4, 8, 16, 32, 64, 128];
        let plain = sync_crossover_rank(&job, 1.0, 2.0, &sweep).expect("plain ring reaches 2x");
        let int8 = sync_crossover_rank(&job, INT8_PAYLOAD_FACTOR, 2.0, &sweep)
            .expect("compressed ring reaches 2x");
        assert!(
            int8 < plain,
            "compression did not move the 2x crossover: int8 at P={int8}, plain at P={plain}"
        );
        assert_eq!(int8, 2, "int8 should clear 2x at the smallest world");
        assert_eq!(sync_crossover_table(&job, &sweep).len(), sweep.len());
    }

    #[test]
    fn comm_ablation_orders_transports() {
        let t = comm_ablation(64 << 20, 1024);
        assert_eq!(t.len(), 3);
        let csv = t.to_csv();
        // Extract times in row order: bgq, ethernet, socket.
        let times: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap())
            .collect();
        assert!(times[0] < times[1] && times[1] < times[2], "{times:?}");
    }
}
