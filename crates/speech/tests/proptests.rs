//! Property-based tests for the corpus and the partitioners.

use pdnn_speech::{partition, stack_context, Corpus, CorpusSpec, Strategy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_strategy_is_a_partition(
        lens in proptest::collection::vec(1usize..500, 0..120),
        workers in 1usize..40,
    ) {
        for strat in [Strategy::Contiguous, Strategy::RoundRobin, Strategy::SortedBalanced] {
            let bins = partition(&lens, workers, strat);
            prop_assert_eq!(bins.len(), workers);
            let mut seen = vec![false; lens.len()];
            for bin in &bins {
                for &i in bin {
                    prop_assert!(!seen[i], "{i} assigned twice under {strat:?}");
                    seen[i] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "unassigned utterance under {strat:?}");
        }
    }

    #[test]
    fn lpt_never_loses_to_contiguous(
        lens in proptest::collection::vec(1usize..300, 1..100),
        workers in 1usize..20,
    ) {
        let load = |bins: &[Vec<usize>]| -> u64 {
            bins.iter()
                .map(|b| b.iter().map(|&i| lens[i] as u64).sum::<u64>())
                .max()
                .unwrap_or(0)
        };
        let lpt = load(&partition(&lens, workers, Strategy::SortedBalanced));
        let naive = load(&partition(&lens, workers, Strategy::Contiguous));
        prop_assert!(lpt <= naive, "LPT makespan {lpt} > contiguous {naive}");
    }

    #[test]
    fn corpus_shards_conserve_frames(
        seed in 0u64..200,
        utts in 4usize..24,
    ) {
        let corpus = Corpus::generate(CorpusSpec {
            utterances: utts,
            ..CorpusSpec::tiny(seed)
        });
        let ids: Vec<usize> = (0..utts).collect();
        let shard = corpus.shard(&ids);
        prop_assert_eq!(shard.frames(), corpus.total_frames());
        prop_assert_eq!(shard.utt_lens.iter().sum::<usize>(), shard.frames());
        prop_assert_eq!(shard.labels.len(), shard.frames());
        prop_assert_eq!(shard.x.rows(), shard.frames());
    }

    #[test]
    fn heldout_split_is_a_partition_for_any_fraction(
        seed in 0u64..200,
        frac in 0.0f64..0.9,
    ) {
        let corpus = Corpus::generate(CorpusSpec::tiny(seed));
        let (train, held) = corpus.split_heldout(frac);
        let mut all: Vec<usize> = train.iter().chain(held.iter()).cloned().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..corpus.utterances().len()).collect::<Vec<_>>());
        prop_assert!(!train.is_empty(), "training set emptied at frac {frac}");
    }

    #[test]
    fn context_stacking_preserves_structure(
        seed in 0u64..100,
        context in 0usize..4,
    ) {
        let corpus = Corpus::generate(CorpusSpec::tiny(seed));
        let ids: Vec<usize> = (0..corpus.utterances().len()).collect();
        let shard = corpus.shard(&ids);
        let stacked = stack_context(&shard, context);
        let dim = shard.x.cols();
        prop_assert_eq!(stacked.x.cols(), (2 * context + 1) * dim);
        prop_assert_eq!(stacked.x.rows(), shard.x.rows());
        prop_assert_eq!(&stacked.labels, &shard.labels);
        prop_assert_eq!(&stacked.utt_lens, &shard.utt_lens);
        // Center slot is always the original frame.
        for t in 0..shard.frames() {
            let row = stacked.x.row(t);
            prop_assert_eq!(&row[context * dim..(context + 1) * dim], shard.x.row(t));
        }
    }

    #[test]
    fn alignments_are_valid_states(seed in 0u64..100) {
        let corpus = Corpus::generate(CorpusSpec::tiny(seed));
        let s = corpus.spec().states as u32;
        for utt in corpus.utterances() {
            prop_assert!(utt.alignment.iter().all(|&a| a < s));
        }
    }
}
