//! Load-balanced data distribution across workers.
//!
//! Paper Section V.C: "utterances in the training set are not all of
//! the same length, so we preprocessed the data by sorting and
//! computed the number of utterances per worker such that they all
//! receive an equal amount of data." In a synchronous master/worker
//! architecture every phase ends with a reduction, so step time is set
//! by the most-loaded worker — the imbalance factor `max/mean` of
//! frames-per-worker multiplies directly into wall-clock time.
//!
//! Three strategies are provided:
//!
//! * [`Strategy::Contiguous`] — split the corpus-order utterance list
//!   into equal *counts* (what a naive implementation does first).
//! * [`Strategy::RoundRobin`] — deal utterances like cards; better in
//!   expectation, still exposed to the long length tail.
//! * [`Strategy::SortedBalanced`] — the paper's fix: sort by length
//!   (descending) and greedily assign each utterance to the
//!   least-loaded worker (LPT scheduling, ≤ 4/3-optimal makespan).

use pdnn_util::stats::imbalance_factor;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Utterance-to-worker assignment strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Equal utterance *counts*, corpus order.
    Contiguous,
    /// Deal in corpus order, one utterance per worker in turn.
    RoundRobin,
    /// Sort by length descending, assign to least-loaded worker (LPT).
    SortedBalanced,
}

/// Assign utterances (given by their frame counts) to `workers` bins.
///
/// Returns one `Vec<usize>` of utterance indices per worker. Every
/// index appears exactly once across all workers.
///
/// # Panics
/// If `workers == 0`.
pub fn partition(utt_lens: &[usize], workers: usize, strategy: Strategy) -> Vec<Vec<usize>> {
    assert!(workers > 0, "partition: zero workers");
    let n = utt_lens.len();
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); workers];
    match strategy {
        Strategy::Contiguous => {
            let per = n.div_ceil(workers.max(1));
            for (i, bin) in bins.iter_mut().enumerate() {
                let lo = (i * per).min(n);
                let hi = ((i + 1) * per).min(n);
                bin.extend(lo..hi);
            }
        }
        Strategy::RoundRobin => {
            for i in 0..n {
                bins[i % workers].push(i);
            }
        }
        Strategy::SortedBalanced => {
            let mut order: Vec<usize> = (0..n).collect();
            // Descending by length; ties by index for determinism.
            order.sort_by_key(|&i| (Reverse(utt_lens[i]), i));
            // Min-heap of (load, worker).
            let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
                (0..workers).map(|w| Reverse((0u64, w))).collect();
            for i in order {
                // pdnn-lint: allow(l3-no-unwrap): heap holds one entry per worker and every pop is paired with a push
                let Reverse((load, w)) = heap.pop().expect("heap never empty");
                bins[w].push(i);
                heap.push(Reverse((load + utt_lens[i] as u64, w)));
            }
        }
    }
    bins
}

/// Frames per worker under an assignment.
pub fn loads(utt_lens: &[usize], assignment: &[Vec<usize>]) -> Vec<u64> {
    assignment
        .iter()
        .map(|ids| ids.iter().map(|&i| utt_lens[i] as u64).sum())
        .collect()
}

/// Imbalance factor (`max/mean` of per-worker frames) of an
/// assignment; 1.0 is perfect.
pub fn assignment_imbalance(utt_lens: &[usize], assignment: &[Vec<usize>]) -> f64 {
    let l: Vec<f64> = loads(utt_lens, assignment)
        .into_iter()
        .map(|v| v as f64)
        .collect();
    imbalance_factor(&l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdnn_util::Prng;

    fn check_is_partition(n: usize, bins: &[Vec<usize>]) {
        let mut seen = vec![false; n];
        for bin in bins {
            for &i in bin {
                assert!(!seen[i], "utterance {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some utterance unassigned");
    }

    fn skewed_lengths(n: usize, seed: u64) -> Vec<usize> {
        let mut rng = Prng::new(seed);
        (0..n)
            .map(|_| rng.log_normal(4.0, 0.8).round().max(2.0) as usize)
            .collect()
    }

    #[test]
    fn all_strategies_produce_partitions() {
        let lens = skewed_lengths(101, 1);
        for strat in [
            Strategy::Contiguous,
            Strategy::RoundRobin,
            Strategy::SortedBalanced,
        ] {
            let bins = partition(&lens, 8, strat);
            assert_eq!(bins.len(), 8);
            check_is_partition(lens.len(), &bins);
        }
    }

    #[test]
    fn lpt_beats_naive_on_skewed_data() {
        let lens = skewed_lengths(256, 42);
        let naive = assignment_imbalance(&lens, &partition(&lens, 16, Strategy::Contiguous));
        let rr = assignment_imbalance(&lens, &partition(&lens, 16, Strategy::RoundRobin));
        let lpt = assignment_imbalance(&lens, &partition(&lens, 16, Strategy::SortedBalanced));
        assert!(lpt <= rr, "lpt={lpt} rr={rr}");
        assert!(lpt <= naive, "lpt={lpt} naive={naive}");
        // LPT should be very close to perfect with 16 utterances/bin.
        assert!(lpt < 1.05, "lpt imbalance {lpt}");
    }

    #[test]
    fn lpt_is_within_four_thirds_of_optimal_lower_bound() {
        // Lower bound on makespan: max(mean load, longest utterance).
        let lens = skewed_lengths(64, 7);
        let workers = 8;
        let bins = partition(&lens, workers, Strategy::SortedBalanced);
        let loads = loads(&lens, &bins);
        let makespan = *loads.iter().max().unwrap() as f64;
        let total: u64 = lens.iter().map(|&l| l as u64).sum();
        let lb = (total as f64 / workers as f64).max(*lens.iter().max().unwrap() as f64);
        assert!(
            makespan <= 4.0 / 3.0 * lb + 1.0,
            "makespan={makespan} lb={lb}"
        );
    }

    #[test]
    fn more_workers_than_utterances() {
        let lens = vec![10, 20, 30];
        for strat in [
            Strategy::Contiguous,
            Strategy::RoundRobin,
            Strategy::SortedBalanced,
        ] {
            let bins = partition(&lens, 8, strat);
            assert_eq!(bins.len(), 8);
            check_is_partition(3, &bins);
            assert!(bins.iter().filter(|b| b.is_empty()).count() >= 5);
        }
    }

    #[test]
    fn single_worker_gets_everything() {
        let lens = vec![5, 6, 7];
        let bins = partition(&lens, 1, Strategy::SortedBalanced);
        assert_eq!(bins[0].len(), 3);
        assert!((assignment_imbalance(&lens, &bins) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus_is_fine() {
        let bins = partition(&[], 4, Strategy::RoundRobin);
        assert!(bins.iter().all(|b| b.is_empty()));
    }

    #[test]
    #[should_panic(expected = "zero workers")]
    fn zero_workers_panics() {
        partition(&[1, 2], 0, Strategy::Contiguous);
    }

    #[test]
    fn loads_sum_to_total() {
        let lens = skewed_lengths(50, 3);
        let total: u64 = lens.iter().map(|&l| l as u64).sum();
        for strat in [
            Strategy::Contiguous,
            Strategy::RoundRobin,
            Strategy::SortedBalanced,
        ] {
            let l = loads(&lens, &partition(&lens, 7, strat));
            assert_eq!(l.iter().sum::<u64>(), total);
        }
    }

    #[test]
    fn uniform_lengths_are_perfectly_balanced_by_all() {
        let lens = vec![10usize; 64];
        for strat in [Strategy::RoundRobin, Strategy::SortedBalanced] {
            let imb = assignment_imbalance(&lens, &partition(&lens, 8, strat));
            assert!((imb - 1.0).abs() < 1e-12, "{strat:?}: {imb}");
        }
    }

    #[test]
    fn imbalance_grows_with_scale_for_contiguous() {
        // The paper notes the load-balance effect "is more apparent
        // when the training data is scaled to larger sizes": with
        // contiguous assignment the expected imbalance persists as
        // data grows, while LPT's vanishes.
        let small = skewed_lengths(64, 9);
        let large = skewed_lengths(4096, 9);
        let lpt_large =
            assignment_imbalance(&large, &partition(&large, 32, Strategy::SortedBalanced));
        let naive_large =
            assignment_imbalance(&large, &partition(&large, 32, Strategy::Contiguous));
        let _ = small;
        assert!(lpt_large < 1.01);
        assert!(naive_large > lpt_large);
    }
}
