//! Context-window feature stacking.
//!
//! Hybrid acoustic models of the paper's era feed the DNN a window of
//! ±k neighboring frames (e.g. 40-dim features × 11 frames = the
//! 440-dim inputs typical of the cited systems): temporal context is
//! what lets a frame classifier disambiguate coarticulated phones.
//! Stacking respects utterance boundaries — the first/last frames of
//! an utterance replicate the edge frame rather than leaking the
//! neighboring utterance.

use crate::corpus::Shard;
use pdnn_tensor::Matrix;

/// Expand a shard's features with ±`context` neighboring frames.
///
/// Output feature dimension is `(2*context + 1) * dim`, with the
/// window ordered `[t-k, …, t-1, t, t+1, …, t+k]`. Labels and
/// utterance structure are unchanged. `context == 0` returns a clone.
pub fn stack_context(shard: &Shard, context: usize) -> Shard {
    if context == 0 {
        return shard.clone();
    }
    let dim = shard.x.cols();
    let window = 2 * context + 1;
    let mut x = Matrix::zeros(shard.frames(), window * dim);

    let mut start = 0usize;
    for &len in &shard.utt_lens {
        for t in 0..len {
            let out_row = x.row_mut(start + t);
            for (w, offset) in (-(context as isize)..=context as isize).enumerate() {
                // Clamp to the utterance's own range (edge replication).
                let src_t = (t as isize + offset).clamp(0, len as isize - 1) as usize;
                let src = shard.x.row(start + src_t);
                out_row[w * dim..(w + 1) * dim].copy_from_slice(src);
            }
        }
        start += len;
    }

    Shard {
        x,
        labels: shard.labels.clone(),
        utt_lens: shard.utt_lens.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusSpec};

    fn shard() -> Shard {
        let corpus = Corpus::generate(CorpusSpec::tiny(44));
        let ids: Vec<usize> = (0..corpus.utterances().len()).collect();
        corpus.shard(&ids)
    }

    #[test]
    fn zero_context_is_identity() {
        let s = shard();
        let out = stack_context(&s, 0);
        assert_eq!(out.x, s.x);
        assert_eq!(out.labels, s.labels);
    }

    #[test]
    fn dimensions_expand_by_window() {
        let s = shard();
        for k in [1usize, 2, 5] {
            let out = stack_context(&s, k);
            assert_eq!(out.x.cols(), (2 * k + 1) * s.x.cols());
            assert_eq!(out.x.rows(), s.x.rows());
            assert_eq!(out.utt_lens, s.utt_lens);
        }
    }

    #[test]
    fn center_slot_is_the_original_frame() {
        let s = shard();
        let k = 2;
        let dim = s.x.cols();
        let out = stack_context(&s, k);
        for t in 0..s.frames() {
            assert_eq!(&out.row_window(t, k, dim), s.x.row(t));
        }
    }

    #[test]
    fn interior_frames_see_true_neighbors() {
        let s = shard();
        let dim = s.x.cols();
        let out = stack_context(&s, 1);
        // Find an interior frame of the first utterance.
        let len0 = s.utt_lens[0];
        assert!(len0 >= 3, "need a 3-frame utterance for this test");
        let t = 1;
        let row = out.x.row(t);
        assert_eq!(&row[0..dim], s.x.row(t - 1));
        assert_eq!(&row[dim..2 * dim], s.x.row(t));
        assert_eq!(&row[2 * dim..3 * dim], s.x.row(t + 1));
    }

    #[test]
    fn utterance_edges_replicate_not_leak() {
        let s = shard();
        let dim = s.x.cols();
        let out = stack_context(&s, 1);
        // First frame of utterance 1 (row index = len of utt 0): its
        // left-context slot must be itself, not the last frame of
        // utterance 0.
        let boundary = s.utt_lens[0];
        let row = out.x.row(boundary);
        assert_eq!(&row[0..dim], s.x.row(boundary), "left context leaked");
        assert_ne!(&row[0..dim], s.x.row(boundary - 1));
        // Last frame of utterance 0: right context replicates itself.
        let last = boundary - 1;
        let row = out.x.row(last);
        assert_eq!(
            &row[2 * dim..3 * dim],
            s.x.row(last),
            "right context leaked"
        );
    }

    impl Shard {
        /// Test helper: the center slot of a stacked row.
        fn row_window(&self, t: usize, k: usize, dim: usize) -> Vec<f32> {
            self.x.row(t)[k * dim..(k + 1) * dim].to_vec()
        }
    }
}
