//! Synthetic speech-like corpus generation.
//!
//! The paper trains on 50-hour and 400-hour proprietary speech
//! corpora: variable-length utterances from thousands of speakers,
//! frame-level HMM-state targets from forced alignment. We reproduce
//! the statistical shape with a generative HMM (see DESIGN.md
//! substitutions):
//!
//! * a first-order Markov chain over `states` phone-states with strong
//!   self-loops (speech sounds persist across 10 ms frames) and a
//!   banded forward structure;
//! * Gaussian emissions per state, plus a per-speaker offset
//!   (speaker variability) and i.i.d. noise;
//! * log-normal utterance lengths — the long right tail is what makes
//!   naive data distribution imbalanced (paper Section V.C).
//!
//! The chain doubles as the exact denominator graph for the MMI
//! sequence criterion, and the true state sequence is the forced
//! alignment — so both of the paper's objectives are well-posed on
//! this corpus and frame accuracy is a meaningful metric (the Bayes
//! error is controlled by `emission_noise`).

use pdnn_dnn::DenominatorGraph;
use pdnn_tensor::Matrix;
use pdnn_util::Prng;

/// Frames per hour of audio at the standard 10 ms hop (100 frames/s).
pub const FRAMES_PER_HOUR: u64 = 360_000;

/// Convert hours of audio to frame counts (50 h ≈ 18 M frames, the
/// paper's arithmetic).
pub fn hours_to_frames(hours: f64) -> u64 {
    (hours * FRAMES_PER_HOUR as f64).round() as u64
}

/// Parameters of the synthetic corpus.
#[derive(Clone, Debug)]
pub struct CorpusSpec {
    /// Number of HMM states (classes for the DNN).
    pub states: usize,
    /// Acoustic feature dimension.
    pub feature_dim: usize,
    /// Number of speakers (each gets a stable feature offset).
    pub speakers: usize,
    /// Number of utterances to generate.
    pub utterances: usize,
    /// Median utterance length in frames (log-normal median).
    pub median_utt_frames: f64,
    /// Log-normal sigma of utterance lengths (0 = constant length).
    pub length_sigma: f64,
    /// Emission noise standard deviation (controls task difficulty).
    pub emission_noise: f64,
    /// Self-loop probability of the state chain.
    pub self_loop: f64,
    /// RNG seed; the corpus is a pure function of the spec.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            states: 16,
            feature_dim: 20,
            speakers: 8,
            utterances: 64,
            median_utt_frames: 60.0,
            length_sigma: 0.5,
            emission_noise: 0.5,
            self_loop: 0.7,
            seed: 12345,
        }
    }
}

impl CorpusSpec {
    /// A small, quickly learnable task for tests and examples.
    pub fn tiny(seed: u64) -> Self {
        CorpusSpec {
            states: 6,
            feature_dim: 10,
            speakers: 4,
            utterances: 24,
            median_utt_frames: 20.0,
            length_sigma: 0.4,
            emission_noise: 0.35,
            self_loop: 0.6,
            seed,
        }
    }
}

/// One spoken utterance: a feature matrix and its forced alignment.
#[derive(Clone, Debug)]
pub struct Utterance {
    /// Corpus-wide utterance index.
    pub id: usize,
    /// Speaker index.
    pub speaker: usize,
    /// Acoustic features, `frames x feature_dim`.
    pub features: Matrix<f32>,
    /// Frame-level HMM state alignment.
    pub alignment: Vec<u32>,
}

impl Utterance {
    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.alignment.len()
    }
}

/// A generated corpus plus the generative model's parameters (the
/// transition model feeds the MMI denominator graph).
#[derive(Clone, Debug)]
pub struct Corpus {
    spec: CorpusSpec,
    utterances: Vec<Utterance>,
    /// State transition probabilities, `states x states` row-major.
    transitions: Vec<f64>,
    /// Initial state distribution.
    prior: Vec<f64>,
}

/// A contiguous training view: stacked features, concatenated
/// alignments, and the utterance partition — the unit of data a worker
/// holds.
#[derive(Clone, Debug)]
pub struct Shard {
    /// Features, `total_frames x feature_dim`.
    pub x: Matrix<f32>,
    /// Frame targets (HMM states).
    pub labels: Vec<u32>,
    /// Per-utterance frame counts partitioning the rows of `x`.
    pub utt_lens: Vec<usize>,
}

impl Shard {
    /// Total frames in the shard.
    pub fn frames(&self) -> usize {
        self.labels.len()
    }
}

impl Corpus {
    /// Generate a corpus from a spec (deterministic in `spec.seed`).
    pub fn generate(spec: CorpusSpec) -> Corpus {
        assert!(spec.states >= 2, "need at least 2 states");
        assert!(spec.feature_dim >= 1, "need at least 1 feature dim");
        assert!(spec.speakers >= 1, "need at least 1 speaker");
        assert!(spec.utterances >= 1, "need at least 1 utterance");
        assert!(
            (0.0..1.0).contains(&spec.self_loop),
            "self_loop must be in [0,1)"
        );
        let mut rng = Prng::new(spec.seed);
        let s = spec.states;

        // Banded transition matrix: self-loop + mass on the next two
        // states (wrapping), a crude phone-sequence model.
        let mut transitions = vec![0.0f64; s * s];
        for i in 0..s {
            transitions[i * s + i] = spec.self_loop;
            let fwd = (1.0 - spec.self_loop) * 0.7;
            let skip = (1.0 - spec.self_loop) * 0.3;
            transitions[i * s + (i + 1) % s] += fwd;
            transitions[i * s + (i + 2) % s] += skip;
        }
        let prior = vec![1.0 / s as f64; s];

        // State emission prototypes: unit-ish Gaussian directions,
        // separated enough to be learnable.
        let mut state_means = Matrix::<f32>::zeros(s, spec.feature_dim);
        for st in 0..s {
            rng.fill_normal_f32(state_means.row_mut(st), 1.0);
        }
        // Speaker offsets: smaller perturbations.
        let mut speaker_offsets = Matrix::<f32>::zeros(spec.speakers, spec.feature_dim);
        for sp in 0..spec.speakers {
            rng.fill_normal_f32(speaker_offsets.row_mut(sp), 0.2);
        }

        let mu = spec.median_utt_frames.max(2.0).ln();
        let mut utterances = Vec::with_capacity(spec.utterances);
        for id in 0..spec.utterances {
            let speaker = rng.index(spec.speakers);
            let frames = rng.log_normal(mu, spec.length_sigma).round().max(2.0) as usize;

            // Sample the state path.
            let mut alignment = Vec::with_capacity(frames);
            let mut state = Self::sample_from(&prior, &mut rng);
            alignment.push(state as u32);
            for _ in 1..frames {
                let row = &transitions[state * s..(state + 1) * s];
                state = Self::sample_from(row, &mut rng);
                alignment.push(state as u32);
            }

            // Emit features.
            let mut features = Matrix::<f32>::zeros(frames, spec.feature_dim);
            for (t, &st) in alignment.iter().enumerate() {
                let mean = state_means.row(st as usize);
                let offset = speaker_offsets.row(speaker);
                let row = features.row_mut(t);
                for d in 0..spec.feature_dim {
                    row[d] = mean[d] + offset[d] + rng.normal() as f32 * spec.emission_noise as f32;
                }
            }

            utterances.push(Utterance {
                id,
                speaker,
                features,
                alignment,
            });
        }

        Corpus {
            spec,
            utterances,
            transitions,
            prior,
        }
    }

    fn sample_from(probs: &[f64], rng: &mut Prng) -> usize {
        let u = rng.uniform();
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        probs.len() - 1
    }

    /// The generating spec.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// All utterances.
    pub fn utterances(&self) -> &[Utterance] {
        &self.utterances
    }

    /// Utterance lengths in frames (corpus order).
    pub fn utt_lens(&self) -> Vec<usize> {
        self.utterances.iter().map(Utterance::frames).collect()
    }

    /// Total frames across the corpus.
    pub fn total_frames(&self) -> usize {
        self.utterances.iter().map(Utterance::frames).sum()
    }

    /// The exact denominator graph of the generative chain.
    pub fn denominator_graph(&self) -> DenominatorGraph {
        DenominatorGraph::new(&self.prior, &self.transitions)
    }

    /// Stack the given utterances (by index) into one training shard.
    pub fn shard(&self, ids: &[usize]) -> Shard {
        let dim = self.spec.feature_dim;
        let total: usize = ids.iter().map(|&i| self.utterances[i].frames()).sum();
        let mut x = Matrix::zeros(total, dim);
        let mut labels = Vec::with_capacity(total);
        let mut utt_lens = Vec::with_capacity(ids.len());
        let mut row = 0usize;
        for &i in ids {
            let utt = &self.utterances[i];
            let f = utt.frames();
            x.as_mut_slice()[row * dim..(row + f) * dim].copy_from_slice(utt.features.as_slice());
            labels.extend_from_slice(&utt.alignment);
            utt_lens.push(f);
            row += f;
        }
        Shard {
            x,
            labels,
            utt_lens,
        }
    }

    /// Split utterance ids into `(train, heldout)` with roughly
    /// `heldout_frac` of utterances held out (deterministic in the
    /// corpus seed).
    pub fn split_heldout(&self, heldout_frac: f64) -> (Vec<usize>, Vec<usize>) {
        assert!(
            (0.0..1.0).contains(&heldout_frac),
            "heldout_frac must be in [0,1)"
        );
        let mut ids: Vec<usize> = (0..self.utterances.len()).collect();
        let mut rng = Prng::new(self.spec.seed ^ 0x5EED_0DD5);
        rng.shuffle(&mut ids);
        let n_held =
            ((ids.len() as f64 * heldout_frac).round() as usize).min(ids.len().saturating_sub(1));
        let heldout = ids.split_off(ids.len() - n_held);
        (ids, heldout)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn hours_arithmetic_matches_paper() {
        // "50 hrs of audio data amounts to roughly 18 million training
        // samples."
        assert_eq!(hours_to_frames(50.0), 18_000_000);
        assert_eq!(hours_to_frames(400.0), 144_000_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(CorpusSpec::tiny(7));
        let b = Corpus::generate(CorpusSpec::tiny(7));
        assert_eq!(a.total_frames(), b.total_frames());
        assert_eq!(a.utterances()[0].alignment, b.utterances()[0].alignment);
        assert_eq!(
            a.utterances()[0].features.as_slice(),
            b.utterances()[0].features.as_slice()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(CorpusSpec::tiny(1));
        let b = Corpus::generate(CorpusSpec::tiny(2));
        assert_ne!(a.utterances()[0].alignment, b.utterances()[0].alignment);
    }

    #[test]
    fn shapes_are_consistent() {
        let c = Corpus::generate(CorpusSpec::default());
        assert_eq!(c.utterances().len(), 64);
        for utt in c.utterances() {
            assert_eq!(utt.features.rows(), utt.alignment.len());
            assert_eq!(utt.features.cols(), 20);
            assert!(utt.frames() >= 2);
            assert!(utt.speaker < 8);
            assert!(utt.alignment.iter().all(|&s| (s as usize) < 16));
        }
        assert_eq!(c.total_frames(), c.utt_lens().iter().sum::<usize>());
    }

    #[test]
    fn lengths_have_a_right_tail() {
        let mut spec = CorpusSpec::default();
        spec.utterances = 400;
        spec.length_sigma = 0.7;
        let c = Corpus::generate(spec);
        let lens = c.utt_lens();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        let max = *lens.iter().max().unwrap() as f64;
        // Log-normal: max should be several times the mean.
        assert!(max / mean > 2.0, "max/mean = {}", max / mean);
    }

    #[test]
    fn denominator_graph_is_valid() {
        let c = Corpus::generate(CorpusSpec::tiny(3));
        let g = c.denominator_graph();
        assert_eq!(g.states(), 6);
    }

    #[test]
    fn alignment_respects_chain_support() {
        // Transitions only allow self, +1, +2 (mod S): verify that's
        // what the sampled alignments do.
        let c = Corpus::generate(CorpusSpec::tiny(5));
        let s = c.spec().states;
        for utt in c.utterances() {
            for w in utt.alignment.windows(2) {
                let (a, b) = (w[0] as usize, w[1] as usize);
                let step = (b + s - a) % s;
                assert!(step <= 2, "illegal transition {a}->{b}");
            }
        }
    }

    #[test]
    fn shard_stacks_utterances_in_order() {
        let c = Corpus::generate(CorpusSpec::tiny(9));
        let shard = c.shard(&[2, 0]);
        let u2 = &c.utterances()[2];
        let u0 = &c.utterances()[0];
        assert_eq!(shard.frames(), u2.frames() + u0.frames());
        assert_eq!(shard.utt_lens, vec![u2.frames(), u0.frames()]);
        assert_eq!(&shard.labels[..u2.frames()], u2.alignment.as_slice());
        assert_eq!(shard.x.row(0), u2.features.row(0));
        assert_eq!(shard.x.row(u2.frames()), u0.features.row(0));
    }

    #[test]
    fn empty_shard_is_empty() {
        let c = Corpus::generate(CorpusSpec::tiny(9));
        let shard = c.shard(&[]);
        assert_eq!(shard.frames(), 0);
        assert!(shard.utt_lens.is_empty());
    }

    #[test]
    fn heldout_split_partitions_ids() {
        let c = Corpus::generate(CorpusSpec::tiny(11));
        let (train, held) = c.split_heldout(0.25);
        assert_eq!(train.len() + held.len(), c.utterances().len());
        let mut all: Vec<usize> = train.iter().chain(held.iter()).cloned().collect();
        all.sort_unstable();
        assert_eq!(all, (0..c.utterances().len()).collect::<Vec<_>>());
        assert_eq!(
            held.len(),
            (c.utterances().len() as f64 * 0.25).round() as usize
        );
        // Deterministic.
        let (train2, _) = c.split_heldout(0.25);
        assert_eq!(train, train2);
    }

    #[test]
    fn features_carry_class_signal() {
        // Mean feature distance between frames of different states
        // should exceed distance within a state — the task is
        // learnable.
        let c = Corpus::generate(CorpusSpec::tiny(13));
        let shard = c.shard(&(0..c.utterances().len()).collect::<Vec<_>>());
        let s = c.spec().states;
        let d = c.spec().feature_dim;
        let mut sums = vec![vec![0.0f64; d]; s];
        let mut counts = vec![0usize; s];
        for (t, &lab) in shard.labels.iter().enumerate() {
            counts[lab as usize] += 1;
            for j in 0..d {
                sums[lab as usize][j] += shard.x[(t, j)] as f64;
            }
        }
        let means: Vec<Vec<f64>> = sums
            .iter()
            .zip(&counts)
            .map(|(sm, &n)| sm.iter().map(|v| v / n.max(1) as f64).collect())
            .collect();
        // Average pairwise distance between state means.
        let mut dist = 0.0;
        let mut pairs = 0;
        for a in 0..s {
            for b in a + 1..s {
                if counts[a] == 0 || counts[b] == 0 {
                    continue;
                }
                let d2: f64 = means[a]
                    .iter()
                    .zip(&means[b])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                dist += d2.sqrt();
                pairs += 1;
            }
        }
        assert!(pairs > 0);
        assert!(
            dist / pairs as f64 > 0.5,
            "state means are not separated: {}",
            dist / pairs as f64
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 states")]
    fn spec_validation() {
        let mut spec = CorpusSpec::tiny(0);
        spec.states = 1;
        Corpus::generate(spec);
    }
}
