//! Corpus statistics.
//!
//! The paper's load-balancing analysis starts from the utterance-
//! length distribution ("utterances in the training set are not all of
//! the same length"); this module summarizes a generated corpus the
//! way a data-prep pipeline would before deciding how to shard it.

use crate::corpus::Corpus;
use pdnn_util::float::exactly_zero;
use pdnn_util::report::Table;
use pdnn_util::stats::percentile;

/// Summary statistics of a corpus.
#[derive(Clone, Debug)]
pub struct CorpusStats {
    /// Number of utterances.
    pub utterances: usize,
    /// Total frames.
    pub total_frames: usize,
    /// Shortest utterance (frames).
    pub min_frames: usize,
    /// Median utterance length.
    pub median_frames: f64,
    /// Mean utterance length.
    pub mean_frames: f64,
    /// Longest utterance (frames).
    pub max_frames: usize,
    /// 95th-percentile length (the load-balancing tail).
    pub p95_frames: f64,
    /// Frames per HMM state (class balance).
    pub frames_per_state: Vec<u64>,
    /// Frames per speaker.
    pub frames_per_speaker: Vec<u64>,
}

impl Corpus {
    /// Compute summary statistics.
    pub fn stats(&self) -> CorpusStats {
        let lens: Vec<f64> = self.utt_lens().iter().map(|&l| l as f64).collect();
        let total: usize = self.total_frames();
        let mut frames_per_state = vec![0u64; self.spec().states];
        let mut frames_per_speaker = vec![0u64; self.spec().speakers];
        for utt in self.utterances() {
            frames_per_speaker[utt.speaker] += utt.frames() as u64;
            for &s in &utt.alignment {
                frames_per_state[s as usize] += 1;
            }
        }
        CorpusStats {
            utterances: lens.len(),
            total_frames: total,
            min_frames: lens.iter().cloned().fold(f64::INFINITY, f64::min) as usize,
            median_frames: percentile(&lens, 0.5).unwrap_or(0.0),
            mean_frames: total as f64 / lens.len().max(1) as f64,
            max_frames: lens.iter().cloned().fold(0.0, f64::max) as usize,
            p95_frames: percentile(&lens, 0.95).unwrap_or(0.0),
            frames_per_state,
            frames_per_speaker,
        }
    }
}

impl CorpusStats {
    /// Render as a report table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("Corpus statistics", &["metric", "value"]);
        t.row(&["utterances".into(), format!("{}", self.utterances)]);
        t.row(&[
            "total frames".into(),
            pdnn_util::fmt_count(self.total_frames as u64),
        ]);
        t.row(&[
            "min / median / mean / p95 / max frames".into(),
            format!(
                "{} / {:.0} / {:.1} / {:.0} / {}",
                self.min_frames,
                self.median_frames,
                self.mean_frames,
                self.p95_frames,
                self.max_frames
            ),
        ]);
        let state_imb = imbalance(&self.frames_per_state);
        let speaker_imb = imbalance(&self.frames_per_speaker);
        t.row(&[
            "state imbalance (max/mean)".into(),
            format!("{state_imb:.2}"),
        ]);
        t.row(&[
            "speaker imbalance (max/mean)".into(),
            format!("{speaker_imb:.2}"),
        ]);
        t
    }
}

fn imbalance(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    if exactly_zero(mean) {
        return 1.0;
    }
    let Some(max) = counts.iter().max().copied() else {
        return 1.0;
    };
    max as f64 / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;

    #[test]
    fn totals_are_consistent() {
        let c = Corpus::generate(CorpusSpec::tiny(77));
        let s = c.stats();
        assert_eq!(s.utterances, c.utterances().len());
        assert_eq!(s.total_frames, c.total_frames());
        assert_eq!(
            s.frames_per_state.iter().sum::<u64>(),
            c.total_frames() as u64
        );
        assert_eq!(
            s.frames_per_speaker.iter().sum::<u64>(),
            c.total_frames() as u64
        );
        assert!(s.min_frames <= s.median_frames as usize + 1);
        assert!(s.median_frames <= s.p95_frames);
        assert!(s.p95_frames <= s.max_frames as f64);
    }

    #[test]
    fn mean_matches_total_over_count() {
        let c = Corpus::generate(CorpusSpec::tiny(9));
        let s = c.stats();
        let mean = s.total_frames as f64 / s.utterances as f64;
        assert!((s.mean_frames - mean).abs() < 1e-9);
    }

    #[test]
    fn every_state_gets_frames_on_a_real_corpus() {
        let c = Corpus::generate(CorpusSpec {
            utterances: 200,
            ..CorpusSpec::tiny(3)
        });
        let s = c.stats();
        assert!(s.frames_per_state.iter().all(|&f| f > 0));
        assert!(s.frames_per_speaker.iter().all(|&f| f > 0));
    }

    #[test]
    fn table_renders_all_metrics() {
        let c = Corpus::generate(CorpusSpec::tiny(5));
        let table = c.stats().table();
        let text = table.render();
        assert!(text.contains("utterances"));
        assert!(text.contains("state imbalance"));
        assert_eq!(table.len(), 5);
    }
}
