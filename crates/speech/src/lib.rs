//! # pdnn-speech — synthetic speech workload and data distribution
//!
//! The paper's evaluation workload is large-vocabulary speech: 50 h /
//! 400 h of audio at 100 frames/s, variable-length utterances from
//! many speakers, frame-level HMM-state targets. This crate generates
//! a statistically matched synthetic corpus ([`corpus`]) and provides
//! the utterance-to-worker partitioners ([`partition`]) whose load
//! balance Section V.C of the paper identifies as critical at scale.

pub mod context;
pub mod corpus;
pub mod partition;
pub mod stats;

pub use context::stack_context;
pub use corpus::{hours_to_frames, Corpus, CorpusSpec, Shard, Utterance, FRAMES_PER_HOUR};
pub use partition::{assignment_imbalance, loads, partition, Strategy};
pub use stats::CorpusStats;
