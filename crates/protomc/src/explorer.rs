//! Explicit-state exploration of the abstract protocol.
//!
//! A global state is the master automaton, one worker automaton per
//! worker rank, the per-pair FIFO channels, and the remaining fault
//! budget. Transitions are micro-steps: one point-to-point message
//! send or receive (collectives are their flat fan-out/drain message
//! sequences), or one injected kill. The explorer enumerates every
//! reachable interleaving ([`explore`] is the unreduced ground truth;
//! [`crate::por::explore_reduced`] is the sleep-set run that must
//! agree with it) and checks three global properties at every
//! transition-free state:
//!
//! * **p5-deadlock-free** — a state with no enabled protocol
//!   transition must have every rank finished (`Done` or killed).
//! * **p6-no-lost-message** — at a finished state, every undelivered
//!   message must involve a dead endpoint.
//! * **p7-recovery-termination** — on every path containing a kill
//!   observed during training, the master must either complete a full
//!   recovery (acknowledge the death, redistribute, restore θ, replay
//!   the iteration) and shut down, or cleanly abort because no worker
//!   survived. A recovery loop that re-faults past the kill budget is
//!   flagged as a livelock.
//!
//! Fault model: kills only (the runtime's stall/eviction paths reuse
//! the same message structure and are exercised by the dynamic
//! pdnn-protocheck pass), placed nondeterministically before any
//! collective a worker is about to join — exactly where the
//! simulator's `fault_gate` injects them — with a budget of at most
//! one kill per run, so both the 0-kill and every 1-kill placement are
//! covered in a single exploration.

use crate::spec::{AOp, APeer, ProtoSpec};
use std::collections::{BTreeSet, HashSet, VecDeque};

pub const P5: &str = "p5-deadlock-free";
pub const P6: &str = "p6-no-lost-message";
pub const P7: &str = "p7-recovery-termination";

/// Message key: collective sequence window or p2p tag, mirroring the
/// simulator's tag matching (mismatched keys park, FIFO per key).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub(crate) enum Key {
    Coll { seq: u16, release: bool },
    P2p { tag: u64 },
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Msg {
    key: Key,
    /// First payload word, when the protocol dispatches on it (header
    /// broadcasts carry the command opcode).
    val: Option<u64>,
}

/// Which command block the master is executing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Ctx {
    /// `iteration[idx]`; `replay` marks the post-recovery re-run.
    Iter { idx: u8, replay: bool },
    /// Recovery shard redistribution (`CMD_LOAD_DATA`).
    RecLoad,
    /// Recovery θ restore (`CMD_SET_THETA`).
    RecTheta,
    /// `CMD_SHUTDOWN` plus the teardown barrier.
    Shutdown,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum MPhase {
    /// Rendezvous send `half` to worker rank `w`.
    Startup {
        w: u8,
        half: u8,
    },
    /// Header broadcast fan-out, believed-live target `sub`.
    Header {
        ctx: Ctx,
        sub: u8,
    },
    /// Command body, op `op`, fan-out/drain position `sub`.
    Ops {
        ctx: Ctx,
        op: u8,
        sub: u8,
    },
    Done {
        aborted: bool,
    },
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct MasterSt {
    phase: MPhase,
    seq: u16,
    /// Bitmask of acknowledged-dead ranks.
    known_dead: u8,
    /// Surfaced but not yet handled death.
    fault: Option<u8>,
    fault_in_training: bool,
    recoveries: u8,
    did_settheta: bool,
    did_replay: bool,
    /// Recovery re-faulted past the kill budget (livelock cut).
    runaway: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum WPhase {
    Startup {
        half: u8,
    },
    /// Blocked on the next header broadcast.
    AwaitHeader,
    /// Executing a match arm.
    Arm {
        cmd: u8,
        op: u8,
        sub: u8,
    },
    /// Dispatched an opcode with no arm; permanently stuck.
    Wedged,
    Done,
    Dead,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct WorkerSt {
    phase: WPhase,
    seq: u16,
}

/// One global state.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct State {
    master: MasterSt,
    workers: Vec<WorkerSt>,
    /// `chans[src * world + dst]`, FIFO per matching key.
    chans: Vec<Vec<Msg>>,
    budget: u8,
    killed: Option<u8>,
}

/// A transition: one rank's next protocol micro-step, or its kill.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub(crate) struct TransId {
    pub rank: u8,
    pub kill: bool,
}

/// Resource footprint for the independence relation: up to four
/// resource ids ([`NO_RES`]-padded). Two transitions are independent
/// iff their footprints are disjoint.
pub(crate) type Footprint = [u16; 4];
pub(crate) const NO_RES: u16 = u16::MAX;

pub(crate) fn independent(a: &Footprint, b: &Footprint) -> bool {
    for &x in a {
        if x != NO_RES && b.contains(&x) {
            return false;
        }
    }
    true
}

/// One property violation, deduplicated by rule and detail text.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub rule: &'static str,
    pub detail: String,
}

/// What one exploration learned.
#[derive(Clone, Debug, Default)]
pub struct ExploreOutcome {
    pub states: usize,
    pub transitions: usize,
    pub terminals: usize,
    /// Distinct (victim, program point) kill placements exercised.
    pub kill_placements: usize,
    pub violations: Vec<Violation>,
}

fn bit(rank: u8) -> u8 {
    1u8.wrapping_shl(rank as u32)
}

impl State {
    pub(crate) fn init(spec: &ProtoSpec, workers: usize, budget: u8) -> State {
        let world = workers + 1;
        let mut st = State {
            master: MasterSt {
                phase: MPhase::Startup { w: 1, half: 0 },
                seq: 0,
                known_dead: 0,
                fault: None,
                fault_in_training: false,
                recoveries: 0,
                did_settheta: false,
                did_replay: false,
                runaway: false,
            },
            workers: (0..workers)
                .map(|_| WorkerSt {
                    phase: WPhase::Startup { half: 0 },
                    seq: 0,
                })
                .collect(),
            chans: vec![Vec::new(); world * world],
            budget,
            killed: None,
        };
        if spec.startup_sends == 0 {
            st.master.phase = MPhase::Startup {
                w: workers as u8,
                half: u8::MAX,
            };
            enter_header(
                spec,
                &mut st,
                Ctx::Iter {
                    idx: 0,
                    replay: false,
                },
            );
        }
        if spec.startup_recvs == 0 {
            for w in &mut st.workers {
                w.phase = WPhase::AwaitHeader;
            }
        }
        st
    }

    fn world(&self) -> usize {
        self.workers.len() + 1
    }

    fn is_dead(&self, rank: u8) -> bool {
        rank != 0 && self.workers[rank as usize - 1].phase == WPhase::Dead
    }

    /// Compact canonical encoding for the visited set.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        enc_mphase(&self.master.phase, &mut b);
        b.extend_from_slice(&self.master.seq.to_le_bytes());
        b.push(self.master.known_dead);
        b.push(self.master.fault.map(|r| r + 1).unwrap_or(0));
        b.push(
            u8::from(self.master.fault_in_training)
                | u8::from(self.master.did_settheta) << 1
                | u8::from(self.master.did_replay) << 2
                | u8::from(self.master.runaway) << 3,
        );
        b.push(self.master.recoveries);
        for w in &self.workers {
            enc_wphase(&w.phase, &mut b);
            b.extend_from_slice(&w.seq.to_le_bytes());
        }
        for chan in &self.chans {
            b.push(chan.len() as u8);
            for m in chan {
                match m.key {
                    Key::Coll { seq, release } => {
                        b.push(1 + u8::from(release));
                        b.extend_from_slice(&seq.to_le_bytes());
                    }
                    Key::P2p { tag } => {
                        b.push(3);
                        b.extend_from_slice(&tag.to_le_bytes());
                    }
                }
                match m.val {
                    None => b.push(0),
                    Some(v) => {
                        b.push(1);
                        b.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        b.push(self.budget);
        b.push(self.killed.map(|r| r + 1).unwrap_or(0));
        b
    }
}

fn enc_mphase(p: &MPhase, b: &mut Vec<u8>) {
    match p {
        MPhase::Startup { w, half } => b.extend_from_slice(&[0, *w, *half, 0]),
        MPhase::Header { ctx, sub } => {
            b.push(1);
            enc_ctx(ctx, b);
            b.extend_from_slice(&[*sub, 0]);
        }
        MPhase::Ops { ctx, op, sub } => {
            b.push(2);
            enc_ctx(ctx, b);
            b.extend_from_slice(&[*op, *sub]);
        }
        MPhase::Done { aborted } => b.extend_from_slice(&[3, u8::from(*aborted), 0, 0]),
    }
}

fn enc_ctx(c: &Ctx, b: &mut Vec<u8>) {
    match c {
        Ctx::Iter { idx, replay } => b.push(0x10 | idx | u8::from(*replay) << 3),
        Ctx::RecLoad => b.push(0x20),
        Ctx::RecTheta => b.push(0x21),
        Ctx::Shutdown => b.push(0x22),
    }
}

fn enc_wphase(p: &WPhase, b: &mut Vec<u8>) {
    match p {
        WPhase::Startup { half } => b.extend_from_slice(&[0, *half, 0, 0]),
        WPhase::AwaitHeader => b.extend_from_slice(&[1, 0, 0, 0]),
        WPhase::Arm { cmd, op, sub } => b.extend_from_slice(&[2, *cmd, *op, *sub]),
        WPhase::Wedged => b.extend_from_slice(&[3, 0, 0, 0]),
        WPhase::Done => b.extend_from_slice(&[4, 0, 0, 0]),
        WPhase::Dead => b.extend_from_slice(&[5, 0, 0, 0]),
    }
}

/// Ranks the master still believes alive, ascending.
fn targets(st: &State) -> Vec<u8> {
    (1..st.world() as u8)
        .filter(|r| st.master.known_dead & bit(*r) == 0)
        .collect()
}

fn cmd_idx(spec: &ProtoSpec, ctx: Ctx) -> usize {
    match ctx {
        Ctx::Iter { idx, .. } => spec.iteration[idx as usize],
        Ctx::RecLoad => spec.load_data,
        Ctx::RecTheta => spec.set_theta,
        Ctx::Shutdown => spec.shutdown,
    }
}

fn opcode(spec: &ProtoSpec, ctx: Ctx) -> u64 {
    spec.commands[cmd_idx(spec, ctx)].opcode
}

/// Does this master-side op fan out / drain over the live target set?
fn master_fanout(op: &AOp) -> bool {
    matches!(
        op,
        AOp::Bcast { root: 0, .. }
            | AOp::Reduce { root: 0, .. }
            | AOp::Barrier
            | AOp::Send {
                to: APeer::EachWorker,
                ..
            }
            | AOp::Recv {
                from: APeer::EachWorker,
                ..
            }
    )
}

fn is_collective(op: &AOp) -> bool {
    matches!(op, AOp::Bcast { .. } | AOp::Reduce { .. } | AOp::Barrier)
}

/// The next communication micro-op a rank wants to perform.
#[derive(Clone, Copy, Debug)]
enum Act {
    Send {
        to: u8,
        key: Key,
        val: Option<u64>,
    },
    /// `may_fail`: completes as a surfaced death when the peer is dead
    /// (master-side drains; the simulator's timed receives).
    Recv {
        from: u8,
        key: Key,
        may_fail: bool,
    },
}

fn plan_master(spec: &ProtoSpec, st: &State) -> Option<Act> {
    let m = &st.master;
    let coll = Key::Coll {
        seq: m.seq,
        release: false,
    };
    match m.phase {
        MPhase::Startup { w, .. } => Some(Act::Send {
            to: w,
            key: Key::P2p {
                tag: spec.startup_tag,
            },
            val: None,
        }),
        MPhase::Header { ctx, sub } => Some(Act::Send {
            to: targets(st)[sub as usize],
            key: coll,
            val: Some(opcode(spec, ctx)),
        }),
        MPhase::Ops { ctx, op, sub } => {
            let t = targets(st);
            let n = t.len();
            match &spec.commands[cmd_idx(spec, ctx)].master[op as usize] {
                AOp::Bcast { root: 0, .. } => Some(Act::Send {
                    to: t[sub as usize],
                    key: coll,
                    val: None,
                }),
                AOp::Bcast { root, .. } => Some(Act::Recv {
                    from: *root as u8,
                    key: coll,
                    may_fail: true,
                }),
                AOp::Reduce { root: 0, .. } => Some(Act::Recv {
                    from: t[sub as usize],
                    key: coll,
                    may_fail: true,
                }),
                AOp::Reduce { root, .. } => Some(Act::Send {
                    to: *root as u8,
                    key: coll,
                    val: None,
                }),
                AOp::Barrier => {
                    if (sub as usize) < n {
                        Some(Act::Recv {
                            from: t[sub as usize],
                            key: coll,
                            may_fail: true,
                        })
                    } else {
                        Some(Act::Send {
                            to: t[sub as usize - n],
                            key: Key::Coll {
                                seq: m.seq,
                                release: true,
                            },
                            val: None,
                        })
                    }
                }
                AOp::Send { to, tag, .. } => Some(Act::Send {
                    to: match to {
                        APeer::Rank(r) => *r as u8,
                        APeer::EachWorker => t[sub as usize],
                    },
                    key: Key::P2p { tag: *tag },
                    val: None,
                }),
                AOp::Recv { from, tag, .. } => Some(Act::Recv {
                    from: match from {
                        APeer::Rank(r) => *r as u8,
                        APeer::EachWorker => t[sub as usize],
                    },
                    key: Key::P2p { tag: *tag },
                    may_fail: true,
                }),
            }
        }
        MPhase::Done { .. } => None,
    }
}

fn plan_worker(spec: &ProtoSpec, st: &State, rank: u8) -> Option<Act> {
    let w = &st.workers[rank as usize - 1];
    let coll = Key::Coll {
        seq: w.seq,
        release: false,
    };
    match w.phase {
        WPhase::Startup { .. } => Some(Act::Recv {
            from: 0,
            key: Key::P2p {
                tag: spec.startup_tag,
            },
            may_fail: false,
        }),
        WPhase::AwaitHeader => Some(Act::Recv {
            from: spec.dispatch_root as u8,
            key: coll,
            may_fail: false,
        }),
        WPhase::Arm { cmd, op, sub } => match &spec.commands[cmd as usize].worker[op as usize] {
            AOp::Bcast { root, .. } => Some(Act::Recv {
                from: *root as u8,
                key: coll,
                may_fail: false,
            }),
            AOp::Reduce { root, .. } => Some(Act::Send {
                to: *root as u8,
                key: coll,
                val: None,
            }),
            AOp::Barrier => {
                if sub == 0 {
                    Some(Act::Send {
                        to: 0,
                        key: coll,
                        val: None,
                    })
                } else {
                    Some(Act::Recv {
                        from: 0,
                        key: Key::Coll {
                            seq: w.seq,
                            release: true,
                        },
                        may_fail: false,
                    })
                }
            }
            AOp::Send {
                to: APeer::Rank(r),
                tag,
                ..
            } => Some(Act::Send {
                to: *r as u8,
                key: Key::P2p { tag: *tag },
                val: None,
            }),
            AOp::Recv {
                from: APeer::Rank(r),
                tag,
                ..
            } => Some(Act::Recv {
                from: *r as u8,
                key: Key::P2p { tag: *tag },
                may_fail: false,
            }),
            // `EachWorker` never appears in a worker arm of a
            // well-formed model; a mutated model wedges here.
            AOp::Send { .. } | AOp::Recv { .. } => None,
        },
        WPhase::Wedged | WPhase::Done | WPhase::Dead => None,
    }
}

fn plan(spec: &ProtoSpec, st: &State, rank: u8) -> Option<Act> {
    if rank == 0 {
        plan_master(spec, st)
    } else {
        plan_worker(spec, st, rank)
    }
}

fn has_match(st: &State, from: u8, to: u8, key: Key) -> bool {
    st.chans[from as usize * st.world() + to as usize]
        .iter()
        .any(|m| m.key == key)
}

fn act_enabled(st: &State, rank: u8, act: &Act) -> bool {
    match act {
        Act::Send { .. } => true,
        Act::Recv {
            from,
            key,
            may_fail,
        } => has_match(st, *from, rank, *key) || (*may_fail && st.is_dead(*from)),
    }
}

fn footprint(rank: u8, act: &Act, world: usize) -> Footprint {
    let chan = |s: u8, d: u8| world as u16 + s as u16 * world as u16 + d as u16;
    match act {
        Act::Send { to, .. } => [rank as u16, chan(rank, *to), NO_RES, NO_RES],
        Act::Recv { from, .. } => [rank as u16, *from as u16, chan(*from, rank), NO_RES],
    }
}

fn kill_footprint(rank: u8) -> Footprint {
    [rank as u16, NO_RES, NO_RES, NO_RES]
}

/// Is this worker at a point where `fault_gate` could kill it (about
/// to join a collective)?
fn at_kill_point(spec: &ProtoSpec, st: &State, rank: u8) -> bool {
    match st.workers[rank as usize - 1].phase {
        WPhase::AwaitHeader => true,
        WPhase::Arm { cmd, op, sub } => {
            sub == 0 && is_collective(&spec.commands[cmd as usize].worker[op as usize])
        }
        _ => false,
    }
}

/// Stable identifier of a kill placement, for coverage reporting.
pub(crate) fn kill_site(st: &State, rank: u8) -> (u8, u8, u8) {
    match st.workers[rank as usize - 1].phase {
        WPhase::Arm { cmd, op, .. } => (rank, cmd, op),
        _ => (rank, u8::MAX, u8::MAX),
    }
}

/// Enabled transitions in deterministic order (rank asc, kills last),
/// with footprints for the independence relation.
pub(crate) fn transitions(spec: &ProtoSpec, st: &State) -> Vec<(TransId, Footprint)> {
    let world = st.world();
    let mut out = Vec::new();
    for rank in 0..world as u8 {
        if let Some(act) = plan(spec, st, rank) {
            if act_enabled(st, rank, &act) {
                out.push((TransId { rank, kill: false }, footprint(rank, &act, world)));
            }
        }
    }
    if st.budget > 0 {
        for rank in 1..world as u8 {
            if !st.is_dead(rank) && at_kill_point(spec, st, rank) {
                out.push((TransId { rank, kill: true }, kill_footprint(rank)));
            }
        }
    }
    out
}

/// Apply one transition (must be enabled) to produce the successor.
pub(crate) fn apply(spec: &ProtoSpec, st: &State, id: TransId) -> State {
    let mut s = st.clone();
    if id.kill {
        s.workers[id.rank as usize - 1].phase = WPhase::Dead;
        s.budget -= 1;
        s.killed = Some(id.rank);
        return s;
    }
    let world = s.world();
    let act = match plan(spec, &s, id.rank) {
        Some(a) => a,
        None => return s,
    };
    match act {
        Act::Send { to, key, val } => {
            s.chans[id.rank as usize * world + to as usize].push(Msg { key, val });
            advance(spec, &mut s, id.rank, None);
        }
        Act::Recv { from, key, .. } => {
            let chan = &mut s.chans[from as usize * world + id.rank as usize];
            let taken = chan
                .iter()
                .position(|m| m.key == key)
                .map(|i| chan.remove(i));
            if taken.is_none() {
                // Surfaced death: the drain skips this contribution.
                surface_fault(&mut s, from);
            }
            advance(spec, &mut s, id.rank, taken);
        }
    }
    s
}

fn surface_fault(s: &mut State, dead: u8) {
    let m = &mut s.master;
    if m.fault.is_none() {
        m.fault = Some(dead);
    }
    if !matches!(
        m.phase,
        MPhase::Ops {
            ctx: Ctx::Shutdown,
            ..
        } | MPhase::Header {
            ctx: Ctx::Shutdown,
            ..
        }
    ) {
        m.fault_in_training = true;
    }
}

fn advance(spec: &ProtoSpec, s: &mut State, rank: u8, msg: Option<Msg>) {
    if rank == 0 {
        advance_master(spec, s);
    } else {
        advance_worker(spec, s, rank, msg);
    }
}

fn advance_master(spec: &ProtoSpec, s: &mut State) {
    let n = targets(s).len();
    match s.master.phase {
        MPhase::Startup { w, half } => {
            if half as usize + 1 < spec.startup_sends {
                s.master.phase = MPhase::Startup { w, half: half + 1 };
            } else if (w as usize) < s.world() - 1 {
                s.master.phase = MPhase::Startup { w: w + 1, half: 0 };
            } else {
                enter_header(
                    spec,
                    s,
                    Ctx::Iter {
                        idx: 0,
                        replay: false,
                    },
                );
            }
        }
        MPhase::Header { ctx, sub } => {
            if sub as usize + 1 < n {
                s.master.phase = MPhase::Header { ctx, sub: sub + 1 };
            } else {
                s.master.seq += 1;
                enter_ops(spec, s, ctx, 0);
            }
        }
        MPhase::Ops { ctx, op, sub } => {
            let aop = &spec.commands[cmd_idx(spec, ctx)].master[op as usize];
            let width = if matches!(aop, AOp::Barrier) {
                2 * n
            } else if master_fanout(aop) {
                n
            } else {
                1
            };
            if sub as usize + 1 < width {
                s.master.phase = MPhase::Ops {
                    ctx,
                    op,
                    sub: sub + 1,
                };
            } else {
                if is_collective(aop) {
                    s.master.seq += 1;
                }
                enter_ops(spec, s, ctx, op + 1);
            }
        }
        MPhase::Done { .. } => {}
    }
}

/// Position the master at op `op` of `ctx`'s command, skipping ops
/// with an empty target set and completing the command at the end.
fn enter_ops(spec: &ProtoSpec, s: &mut State, ctx: Ctx, mut op: u8) {
    loop {
        let ops = &spec.commands[cmd_idx(spec, ctx)].master;
        if op as usize >= ops.len() {
            command_complete(spec, s, ctx);
            return;
        }
        let aop = &ops[op as usize];
        if master_fanout(aop) && targets(s).is_empty() {
            if is_collective(aop) {
                s.master.seq += 1;
            }
            op += 1;
            continue;
        }
        s.master.phase = MPhase::Ops { ctx, op, sub: 0 };
        return;
    }
}

fn enter_header(spec: &ProtoSpec, s: &mut State, ctx: Ctx) {
    if targets(s).is_empty() {
        // Nobody left to command.
        s.master.phase = MPhase::Done { aborted: true };
        return;
    }
    let _ = spec;
    s.master.phase = MPhase::Header { ctx, sub: 0 };
}

fn command_complete(spec: &ProtoSpec, s: &mut State, ctx: Ctx) {
    let quirks = spec.quirks;
    if ctx != Ctx::Shutdown && s.master.fault.is_some() && !quirks.ignore_fault {
        // hf_loop recovery: the faulted step finished its drains; the
        // rest of the iteration is skipped (the problem is poisoned).
        let dead = s.master.fault.take().unwrap_or(0);
        s.master.recoveries = s.master.recoveries.saturating_add(1);
        if s.master.recoveries > s.budget + u8::from(s.killed.is_some()) {
            // More recoveries than injected kills: the recovery loop
            // is not converging. Cut the livelock; p7 reports it.
            s.master.runaway = true;
            s.master.phase = MPhase::Done { aborted: true };
            return;
        }
        if !quirks.skip_ack {
            s.master.known_dead |= bit(dead);
        }
        if targets(s).is_empty() {
            // No surviving workers: clean abort.
            s.master.phase = MPhase::Done { aborted: true };
            return;
        }
        enter_header(spec, s, Ctx::RecLoad);
        return;
    }
    if quirks.ignore_fault {
        s.master.fault = None;
    }
    match ctx {
        Ctx::Iter { idx, replay } => {
            if (idx as usize) + 1 < spec.iteration.len() {
                enter_header(
                    spec,
                    s,
                    Ctx::Iter {
                        idx: idx + 1,
                        replay,
                    },
                );
            } else {
                if replay {
                    s.master.did_replay = true;
                }
                enter_header(spec, s, Ctx::Shutdown);
            }
        }
        Ctx::RecLoad => {
            if quirks.skip_settheta {
                after_theta(spec, s);
            } else {
                enter_header(spec, s, Ctx::RecTheta);
            }
        }
        Ctx::RecTheta => {
            s.master.did_settheta = true;
            after_theta(spec, s);
        }
        Ctx::Shutdown => {
            s.master.phase = MPhase::Done { aborted: false };
        }
    }
}

fn after_theta(spec: &ProtoSpec, s: &mut State) {
    if spec.quirks.skip_replay {
        enter_header(spec, s, Ctx::Shutdown);
    } else {
        enter_header(
            spec,
            s,
            Ctx::Iter {
                idx: 0,
                replay: true,
            },
        );
    }
}

fn advance_worker(spec: &ProtoSpec, s: &mut State, rank: u8, msg: Option<Msg>) {
    let w = &mut s.workers[rank as usize - 1];
    match w.phase {
        WPhase::Startup { half } => {
            if half as usize + 1 < spec.startup_recvs {
                w.phase = WPhase::Startup { half: half + 1 };
            } else {
                w.phase = WPhase::AwaitHeader;
            }
        }
        WPhase::AwaitHeader => {
            w.seq += 1;
            let cmd = msg
                .and_then(|m| m.val)
                .and_then(|v| spec.command_by_opcode(v));
            match cmd {
                Some(ci) => enter_arm(spec, w, ci as u8, 0),
                None => w.phase = WPhase::Wedged,
            }
        }
        WPhase::Arm { cmd, op, sub } => {
            let aop = &spec.commands[cmd as usize].worker[op as usize];
            if matches!(aop, AOp::Barrier) && sub == 0 {
                w.phase = WPhase::Arm { cmd, op, sub: 1 };
                return;
            }
            if is_collective(aop) {
                w.seq += 1;
            }
            enter_arm(spec, w, cmd, op + 1);
        }
        WPhase::Wedged | WPhase::Done | WPhase::Dead => {}
    }
}

fn enter_arm(spec: &ProtoSpec, w: &mut WorkerSt, cmd: u8, op: u8) {
    if op as usize >= spec.commands[cmd as usize].worker.len() {
        if cmd as usize == spec.shutdown {
            w.phase = WPhase::Done;
        } else {
            w.phase = WPhase::AwaitHeader;
        }
    } else {
        w.phase = WPhase::Arm { cmd, op, sub: 0 };
    }
}

fn rank_finished(st: &State, rank: u8) -> bool {
    if rank == 0 {
        matches!(st.master.phase, MPhase::Done { .. })
    } else {
        matches!(
            st.workers[rank as usize - 1].phase,
            WPhase::Done | WPhase::Dead
        )
    }
}

fn describe_rank(st: &State, rank: u8) -> String {
    if rank == 0 {
        format!("master {:?} seq {}", st.master.phase, st.master.seq)
    } else {
        let w = &st.workers[rank as usize - 1];
        format!("rank {rank} {:?} seq {}", w.phase, w.seq)
    }
}

/// Check p5/p6/p7 on a state with no enabled protocol transitions.
/// Returns true when the state is a (finished) terminal.
pub(crate) fn classify(
    spec: &ProtoSpec,
    st: &State,
    prog_enabled: bool,
    violations: &mut BTreeSet<Violation>,
) -> bool {
    let _ = spec;
    if prog_enabled {
        return false;
    }
    let world = st.world() as u8;
    let all_finished = (0..world).all(|r| rank_finished(st, r));
    // A runaway recovery loop (more recoveries than injected kills —
    // the livelock cut in `command_complete`) is a p7 violation
    // whether or not the surviving ranks then wedge into a deadlock.
    if st.master.runaway {
        violations.insert(Violation {
            rule: P7,
            detail: format!(
                "recovery livelock: {} recoveries for {} kill(s)",
                st.master.recoveries,
                u8::from(st.killed.is_some())
            ),
        });
    }
    if !all_finished {
        let stuck: Vec<String> = (0..world)
            .filter(|&r| !rank_finished(st, r))
            .map(|r| describe_rank(st, r))
            .collect();
        violations.insert(Violation {
            rule: P5,
            detail: format!(
                "deadlock{}: {}",
                match st.killed {
                    Some(k) => format!(" (after kill of rank {k})"),
                    None => String::new(),
                },
                stuck.join("; ")
            ),
        });
        return false;
    }
    // p6: undelivered messages must involve a dead endpoint.
    for src in 0..world {
        for dst in 0..world {
            let chan = &st.chans[src as usize * st.world() + dst as usize];
            if !chan.is_empty() && !st.is_dead(src) && !st.is_dead(dst) {
                violations.insert(Violation {
                    rule: P6,
                    detail: format!(
                        "{} message(s) {:?} from rank {src} to rank {dst} \
                         undelivered at exit with both endpoints alive{}",
                        chan.len(),
                        chan[0].key,
                        match st.killed {
                            Some(k) => format!(" (after kill of rank {k})"),
                            None => String::new(),
                        },
                    ),
                });
            }
        }
    }
    // p7: a death observed during training must end in a completed
    // recovery or a clean no-survivor abort.
    let m = &st.master;
    let aborted = matches!(m.phase, MPhase::Done { aborted: true });
    if m.fault_in_training && !m.runaway {
        let recovered = m.recoveries >= 1 && m.did_settheta && m.did_replay;
        if !(aborted || recovered) {
            violations.insert(Violation {
                rule: P7,
                detail: format!(
                    "death of rank {} surfaced in training but the run ended with \
                     recoveries={} theta_restore={} replay={} abort={}",
                    st.killed.map(i64::from).unwrap_or(-1),
                    m.recoveries,
                    m.did_settheta,
                    m.did_replay,
                    aborted
                ),
            });
        }
    }
    true
}

/// Exhaustive breadth-first exploration (the unreduced ground truth).
pub fn explore(spec: &ProtoSpec, workers: usize, budget: u8) -> ExploreOutcome {
    let init = State::init(spec, workers, budget);
    let mut visited: HashSet<Vec<u8>> = HashSet::new();
    let mut queue = VecDeque::new();
    visited.insert(init.encode());
    queue.push_back(init);
    let mut transitions_count = 0usize;
    let mut terminals = 0usize;
    let mut violations = BTreeSet::new();
    let mut kill_sites = BTreeSet::new();
    while let Some(st) = queue.pop_front() {
        let succ = transitions(spec, &st);
        let prog_enabled = succ.iter().any(|(id, _)| !id.kill);
        if classify(spec, &st, prog_enabled, &mut violations) {
            terminals += 1;
        }
        for (id, _) in succ {
            if id.kill {
                kill_sites.insert(kill_site(&st, id.rank));
            }
            transitions_count += 1;
            let next = apply(spec, &st, id);
            if visited.insert(next.encode()) {
                queue.push_back(next);
            }
        }
    }
    ExploreOutcome {
        states: visited.len(),
        transitions: transitions_count,
        terminals,
        kill_placements: kill_sites.len(),
        violations: violations.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn workspace_spec() -> ProtoSpec {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(std::path::Path::to_path_buf)
            .unwrap_or_default();
        let outcome = pdnn_protocheck::run_static(&root).expect("surfaces readable");
        spec::compile(&outcome.model).expect("model compiles")
    }

    #[test]
    fn fault_free_two_rank_world_is_clean_and_terminates() {
        let spec = workspace_spec();
        let out = explore(&spec, 1, 0);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.terminals >= 1);
        assert!(out.states > 10);
        assert_eq!(out.kill_placements, 0);
    }

    #[test]
    fn one_kill_two_rank_world_recovers_or_aborts_cleanly() {
        let spec = workspace_spec();
        let out = explore(&spec, 1, 1);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // With a single worker every kill ends in a no-survivor abort;
        // placements at each collective boundary must all be covered.
        assert!(out.kill_placements >= 5, "{}", out.kill_placements);
    }

    #[test]
    fn one_kill_three_rank_world_is_clean() {
        let spec = workspace_spec();
        let out = explore(&spec, 2, 1);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.terminals >= 2);
        assert!(out.kill_placements >= 10);
    }

    #[test]
    fn independence_is_footprint_disjointness() {
        assert!(independent(
            &[0, 5, NO_RES, NO_RES],
            &[1, 6, NO_RES, NO_RES]
        ));
        assert!(!independent(
            &[0, 5, NO_RES, NO_RES],
            &[1, 5, NO_RES, NO_RES]
        ));
        // Padding never aliases a resource.
        assert!(independent(
            &[NO_RES, NO_RES, NO_RES, NO_RES],
            &[NO_RES, NO_RES, NO_RES, NO_RES]
        ));
    }
}
