//! CLI: `pdnn-protomc [--check] [--mutations] [--conformance] [--emit-diagram] [root]`.
//!
//! With no pass flags, runs all three passes. `--check` model-checks
//! the 2/3/4-rank master-protocol worlds (full + sleep-set-reduced,
//! fault budget 1) plus the masterless ring/tree worlds at the same
//! sizes; `--mutations` runs the seeded-bug self-test (master battery
//! plus the decentral battery); `--conformance` executes real 4-rank
//! training runs in-process (fault-free, injected worker kill, and
//! one each under ring and tree sync) and replays their recorded
//! comm-event traces through the abstract automata. `--emit-diagram`
//! prints the compiled protocol as a mermaid state diagram and exits.
//!
//! Writes `results/protomc_report.json` under the workspace root and
//! exits nonzero on any finding, reduction disagreement, missed
//! mutation, or non-conforming trace.

use pdnn_protomc::report::{self, NamedRun};
use pdnn_protomc::{conformance, decentral, mutate};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Cli {
    run_check: bool,
    run_mutations: bool,
    run_conformance: bool,
    emit_diagram: bool,
    root: PathBuf,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        run_check: false,
        run_mutations: false,
        run_conformance: false,
        emit_diagram: false,
        root: PathBuf::from("."),
    };
    let mut any_flag = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => {
                cli.run_check = true;
                any_flag = true;
            }
            "--mutations" => {
                cli.run_mutations = true;
                any_flag = true;
            }
            "--conformance" => {
                cli.run_conformance = true;
                any_flag = true;
            }
            "--emit-diagram" => {
                cli.emit_diagram = true;
                any_flag = true;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: pdnn-protomc [--check] [--mutations] [--conformance] [--emit-diagram] [root]"
                        .to_string(),
                )
            }
            other if !other.starts_with('-') => cli.root = PathBuf::from(other),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !any_flag {
        cli.run_check = true;
        cli.run_mutations = true;
        cli.run_conformance = true;
    }
    Ok(cli)
}

/// The model-checked worlds: 2, 3, and 4 ranks, fault budget 1
/// (which includes every 0-kill path).
const WORLDS: [(usize, u8); 3] = [(1, 1), (2, 1), (3, 1)];

fn run_training_traces(spec: &pdnn_protomc::ProtoSpec) -> Result<Vec<NamedRun>, String> {
    use pdnn_core::{
        train_distributed_deterministic, train_distributed_faulted, DistributedConfig, Objective,
        SyncStrategy, TrainOutput,
    };
    use pdnn_dnn::{Activation, Network};
    use pdnn_mpisim::FaultPlan;
    use pdnn_speech::{Corpus, CorpusSpec};
    use pdnn_util::Prng;

    let corpus = Corpus::generate(CorpusSpec::tiny(23));
    let mut rng = Prng::new(11);
    let net0 = Network::new(
        &[corpus.spec().feature_dim, 10, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let mut config = DistributedConfig {
        workers: 3,
        ..DistributedConfig::default()
    };
    config.hf.max_iters = 3;

    let replay = |name: &str, out: &TrainOutput| -> NamedRun {
        let mut streams: Vec<&[pdnn_mpisim::CommEvent]> = vec![&out.master_events];
        streams.extend(out.worker_events.iter().map(|e| e.as_slice()));
        NamedRun {
            name: name.to_string(),
            dead_ranks: out.dead_ranks.clone(),
            replay: conformance::replay_run(spec, &streams, &out.dead_ranks),
        }
    };

    let clean = train_distributed_deterministic(&net0, &corpus, &Objective::CrossEntropy, &config)
        .map_err(|e| format!("fault-free training run failed: {e:?}"))?;
    let mut runs = vec![replay("fault-free-4rank", &clean)];

    // Rank 2 dies entering the first GRADIENT (collective index 5;
    // see the collective-index map in core's fault_tolerance tests).
    let plan = FaultPlan::new(41)
        .kill(2, 5)
        .with_timeouts(Duration::from_millis(500), Duration::from_secs(30));
    let faulted =
        train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &config, &plan)
            .map_err(|e| format!("faulted training run failed: {e:?}"))?;
    if faulted.dead_ranks != vec![2] {
        return Err(format!(
            "fault injection did not take: dead ranks {:?}",
            faulted.dead_ranks
        ));
    }
    runs.push(replay("faulted-4rank-kill-rank2-at-gradient", &faulted));

    // Masterless modes: the same training job under ring and tree
    // sync, replayed through the decentral automata (rank 0 is a peer
    // here, not a master — its stream obeys the same grammar).
    for (dmode, sync, name) in [
        (
            decentral::DMode::Ring,
            SyncStrategy::Ring,
            "ring-masterless-4rank",
        ),
        (
            decentral::DMode::Tree,
            SyncStrategy::Tree,
            "tree-masterless-4rank",
        ),
    ] {
        let mut dconfig = DistributedConfig {
            workers: 4,
            sync,
            ..DistributedConfig::default()
        };
        dconfig.hf.max_iters = 3;
        let out =
            train_distributed_deterministic(&net0, &corpus, &Objective::CrossEntropy, &dconfig)
                .map_err(|e| format!("{name} training run failed: {e:?}"))?;
        let mut streams: Vec<&[pdnn_mpisim::CommEvent]> = vec![&out.master_events];
        streams.extend(out.worker_events.iter().map(|e| e.as_slice()));
        runs.push(NamedRun {
            name: name.to_string(),
            dead_ranks: Vec::new(),
            replay: decentral::replay_decentral_run(dmode, &streams),
        });
    }

    // A *real* killed ring: rank 2 dies entering a collective, the
    // survivors run the peer-coordinated recovery, and the recorded
    // streams must map onto the faulted grammar with nothing left
    // over — victim silent, one aborted collective per survivor,
    // recovery p2p only on the report/agree/shard tags, resumed
    // schedule re-rooted at the lowest survivor.
    let mut ring_cfg = DistributedConfig {
        workers: 4,
        sync: SyncStrategy::Ring,
        ..DistributedConfig::default()
    };
    ring_cfg.hf.max_iters = 3;
    let plan = FaultPlan::new(41)
        .kill(2, 5)
        .with_timeouts(Duration::from_millis(500), Duration::from_secs(30));
    let killed_ring =
        train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &ring_cfg, &plan)
            .map_err(|e| format!("killed ring training run failed: {e:?}"))?;
    if killed_ring.dead_ranks != vec![2] {
        return Err(format!(
            "ring fault injection did not take: dead ranks {:?}",
            killed_ring.dead_ranks
        ));
    }
    let mut streams: Vec<&[pdnn_mpisim::CommEvent]> = vec![&killed_ring.master_events];
    streams.extend(killed_ring.worker_events.iter().map(|e| e.as_slice()));
    runs.push(NamedRun {
        name: "ring-masterless-4rank-kill-rank2".to_string(),
        dead_ranks: killed_ring.dead_ranks.clone(),
        replay: decentral::replay_decentral_faulted_run(
            decentral::DMode::Ring,
            &streams,
            &killed_ring.dead_ranks,
        ),
    });
    Ok(runs)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let (spec, anchor_path, anchor_line) = match pdnn_protomc::load_spec(&cli.root) {
        Ok(loaded) => loaded,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    if cli.emit_diagram {
        print!("{}", pdnn_protomc::mermaid(&spec));
        if !(cli.run_check || cli.run_mutations || cli.run_conformance) {
            return ExitCode::SUCCESS;
        }
    }

    let mut failed = false;

    let check = if cli.run_check {
        let check = pdnn_protomc::run_check(&spec, &WORLDS, &anchor_path, anchor_line);
        for w in &check.worlds {
            println!(
                "protomc check: {}-rank world (budget {}): {} states / {} transitions full, \
                 {} / {} reduced ({:.1}% of transitions), {} terminals, {} kill placements, {}",
                w.ranks,
                w.budget,
                w.full.states,
                w.full.transitions,
                w.reduced.states,
                w.reduced.transitions,
                100.0 * w.reduced.transitions as f64 / w.full.transitions.max(1) as f64,
                w.full.terminals,
                w.full.kill_placements,
                if w.agrees {
                    "verdicts agree"
                } else {
                    "REDUCTION DISAGREES"
                }
            );
            if !w.agrees {
                failed = true;
            }
        }
        for f in &check.findings {
            println!("{}: {} at {}:{}", f.rule, f.message, f.path, f.line);
        }
        println!("protomc check: {} finding(s)", check.findings.len());
        if !check.findings.is_empty() {
            failed = true;
        }
        Some(check)
    } else {
        None
    };

    let decentral_worlds = if cli.run_check {
        let mut worlds = decentral::check_worlds();
        worlds.extend(decentral::check_recovery_worlds());
        for w in &worlds {
            println!(
                "protomc decentral: {} mode, {}-rank world ({}): {} states / {} transitions, \
                 {} terminals, {} violation(s)",
                w.mode.label(),
                w.ranks,
                if w.kill_placements == 0 {
                    "fault-free".to_string()
                } else {
                    format!("{} kill placements", w.kill_placements)
                },
                w.outcome.states,
                w.outcome.transitions,
                w.outcome.terminals,
                w.outcome.violations.len()
            );
            for v in &w.outcome.violations {
                println!("{}: {}", v.rule, v.detail);
                failed = true;
            }
        }
        Some(worlds)
    } else {
        None
    };

    let mutation_results = if cli.run_mutations {
        let mut results = mutate::run_mutations(&spec);
        results.extend(decentral::run_decentral_mutations());
        let caught = results.iter().filter(|r| r.caught).count();
        for r in results.iter().filter(|r| !r.caught) {
            println!(
                "MISSED {}: expected {} but only {:?} fired",
                r.name, r.expected_rule, r.fired_rules
            );
        }
        println!("protomc mutations: {caught}/{} caught", results.len());
        if caught != results.len() {
            failed = true;
        }
        Some(results)
    } else {
        None
    };

    let conformance_runs = if cli.run_conformance {
        match run_training_traces(&spec) {
            Ok(runs) => {
                for run in &runs {
                    println!(
                        "protomc conformance: {} — {} ({} events, {} unmapped)",
                        run.name,
                        if run.replay.accepted {
                            "accepted"
                        } else {
                            "REJECTED"
                        },
                        run.replay.p2p_events + run.replay.coll_events,
                        run.replay.unmapped
                    );
                    for r in run.replay.ranks.iter().filter(|r| !r.accepted) {
                        println!(
                            "  rank {}: {} ({} of {} events consumed)",
                            r.rank,
                            r.error.as_deref().unwrap_or("not accepted"),
                            r.consumed,
                            r.total
                        );
                    }
                    if !run.replay.accepted {
                        failed = true;
                    }
                }
                Some(runs)
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                failed = true;
                None
            }
        }
    } else {
        None
    };

    let rep = report::Report {
        check: check.as_ref(),
        decentral: decentral_worlds.as_deref(),
        mutation_results: mutation_results.as_deref(),
        conformance_runs: conformance_runs.as_deref(),
    };
    if let Err(err) = report::write(&cli.root, &rep) {
        eprintln!("error: cannot write results/protomc_report.json: {err}");
        return ExitCode::from(2);
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
