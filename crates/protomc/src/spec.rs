//! The abstract protocol specification the checker executes.
//!
//! [`compile`] lowers `pdnn-protocheck`'s extracted [`Model`] — the
//! per-command master/worker operation sequences scraped from
//! `crates/core/src/distributed.rs` — into a [`ProtoSpec`]: a closed,
//! executable description of both roles. The explorer
//! ([`crate::explorer`]) instantiates the spec for a concrete world
//! size and walks every interleaving; the conformance replayer
//! ([`crate::conformance`]) drives the same spec with recorded
//! [`pdnn_mpisim::CommEvent`] streams from real training runs.
//!
//! Two deliberate abstractions, documented here because every verdict
//! is relative to them:
//!
//! * **Collectives are flat.** `bcast` is root-fans-out, `reduce` is
//!   root-drains-ascending, `barrier` is collect-then-release through
//!   rank 0 — the semantics of the `*_timed` fault-tolerant variants
//!   the faulted runtime actually uses. The tree-shaped fast paths are
//!   op-for-op equivalent at the protocol level (same per-rank
//!   collective counts, same root), which `pdnn-protocheck` p1 already
//!   enforces.
//! * **One canonical training iteration.** The optimizer issues
//!   `SET_THETA, GRADIENT, SAMPLE, GN, HELDOUT` per iteration (CG
//!   re-issues `GN` and the line search re-issues `HELDOUT`; repeating
//!   a verified command block cannot create new protocol states, so
//!   the model runs each once).

use pdnn_protocheck::model::{ElemKind, Model, Op, Peer};

/// Abstract communication operation, as one role executes it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AOp {
    /// Collective broadcast rooted at `root`.
    Bcast { root: usize, kind: ElemKind },
    /// Collective reduction rooted at `root`.
    Reduce { root: usize, kind: ElemKind },
    /// Collect-then-release barrier through rank 0.
    Barrier,
    /// Point-to-point send.
    Send { to: APeer, tag: u64, kind: ElemKind },
    /// Point-to-point receive.
    Recv {
        from: APeer,
        tag: u64,
        kind: ElemKind,
    },
}

/// Peer of a point-to-point op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum APeer {
    Rank(usize),
    /// Expanded against the master's believed-live worker set.
    EachWorker,
}

/// One protocol command: opcode plus both roles' post-header bodies.
#[derive(Clone, Debug)]
pub struct CmdSpec {
    pub name: String,
    pub opcode: u64,
    /// Master ops after the header broadcast.
    pub master: Vec<AOp>,
    /// Worker match-arm ops.
    pub worker: Vec<AOp>,
}

/// Master-behavior mutations used by the self-test ([`crate::mutate`]).
/// All false on a clean compile.
#[derive(Clone, Copy, Debug, Default)]
pub struct Quirks {
    /// Recovery does not acknowledge the dead rank.
    pub skip_ack: bool,
    /// Recovery skips the θ-restore `SET_THETA`.
    pub skip_settheta: bool,
    /// Recovery jumps to shutdown without replaying the iteration.
    pub skip_replay: bool,
    /// The master treats a surfaced death as success and never
    /// recovers.
    pub ignore_fault: bool,
}

/// The whole compiled protocol.
#[derive(Clone, Debug)]
pub struct ProtoSpec {
    /// Every command, indexable by the values below.
    pub commands: Vec<CmdSpec>,
    /// Indices into `commands` forming one canonical iteration.
    pub iteration: Vec<usize>,
    pub shutdown: usize,
    pub set_theta: usize,
    pub load_data: usize,
    /// Startup rendezvous: p2p messages per worker, master side.
    pub startup_sends: usize,
    /// ... and worker side (identical unless mutated).
    pub startup_recvs: usize,
    pub startup_tag: u64,
    /// Rank the worker's dispatch header is received from.
    pub dispatch_root: usize,
    pub quirks: Quirks,
}

/// The canonical iteration block, in optimizer issue order.
const ITERATION: [&str; 5] = [
    "CMD_SET_THETA",
    "CMD_GRADIENT",
    "CMD_SAMPLE",
    "CMD_GN",
    "CMD_HELDOUT",
];

fn lower_op(op: &Op) -> Result<AOp, String> {
    let peer = |p: &Peer| match p {
        Peer::Rank(r) => Ok(APeer::Rank(*r)),
        Peer::EachWorker => Ok(APeer::EachWorker),
        Peer::AnySource => Err("wildcard receive is not modeled".to_string()),
    };
    match op {
        Op::Bcast { root, kind, .. } => Ok(AOp::Bcast {
            root: root.ok_or("bcast with unresolved root")?,
            kind: *kind,
        }),
        Op::Reduce { root, kind, .. } => Ok(AOp::Reduce {
            root: root.ok_or("reduce with unresolved root")?,
            kind: *kind,
        }),
        Op::Barrier => Ok(AOp::Barrier),
        Op::Send { to, tag, kind } => Ok(AOp::Send {
            to: peer(to)?,
            tag: tag.ok_or("send with unresolved tag")?,
            kind: *kind,
        }),
        Op::Recv { from, tag, kind } => Ok(AOp::Recv {
            from: peer(from)?,
            tag: tag.ok_or("recv with unresolved tag")?,
            kind: *kind,
        }),
    }
}

fn lower_seq(ops: Option<&Vec<pdnn_protocheck::model::SeqOp>>) -> Result<Vec<AOp>, String> {
    ops.map(|seq| seq.iter().map(|s| lower_op(&s.op)).collect())
        .unwrap_or_else(|| Ok(Vec::new()))
}

/// Compile the extracted model into an executable spec.
pub fn compile(model: &Model) -> Result<ProtoSpec, String> {
    let mut commands = Vec::new();
    for cmd in &model.commands {
        let opcode = cmd
            .value
            .ok_or_else(|| format!("{}: unresolved opcode", cmd.name))?;
        let mut master =
            lower_seq(cmd.master.as_ref()).map_err(|e| format!("{}: {e}", cmd.name))?;
        let mut worker =
            lower_seq(cmd.worker.as_ref()).map_err(|e| format!("{}: {e}", cmd.name))?;
        if cmd.name == "CMD_SHUTDOWN" {
            // The post-loop teardown ops live outside the match in the
            // source; fold them into the shutdown command body.
            master.extend(
                model
                    .shutdown_master
                    .iter()
                    .map(|s| lower_op(&s.op))
                    .collect::<Result<Vec<_>, _>>()?,
            );
            worker.extend(
                model
                    .shutdown_worker
                    .iter()
                    .map(|s| lower_op(&s.op))
                    .collect::<Result<Vec<_>, _>>()?,
            );
        }
        commands.push(CmdSpec {
            name: cmd.name.clone(),
            opcode,
            master,
            worker,
        });
    }
    let find = |name: &str| -> Result<usize, String> {
        commands
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| format!("command {name} not extracted"))
    };
    let iteration = ITERATION
        .iter()
        .map(|n| find(n))
        .collect::<Result<Vec<_>, _>>()?;
    let startup_tag = match model.startup_sends.first().map(|s| &s.op) {
        Some(Op::Send { tag: Some(t), .. }) => *t,
        _ => model.const_value("TAG_LOAD_DATA").unwrap_or(17),
    };
    Ok(ProtoSpec {
        shutdown: find("CMD_SHUTDOWN")?,
        set_theta: find("CMD_SET_THETA")?,
        load_data: find("CMD_LOAD_DATA")?,
        iteration,
        startup_sends: model.startup_sends.len(),
        startup_recvs: model.startup_recvs.len(),
        startup_tag,
        dispatch_root: 0,
        quirks: Quirks::default(),
        commands,
    })
}

impl ProtoSpec {
    pub fn command_by_opcode(&self, opcode: u64) -> Option<usize> {
        self.commands.iter().position(|c| c.opcode == opcode)
    }
}

fn op_label(op: &AOp) -> String {
    match op {
        AOp::Bcast { root, kind } => format!("bcast root {root} ({})", kind.name()),
        AOp::Reduce { root, kind } => format!("reduce to {root} ({})", kind.name()),
        AOp::Barrier => "barrier".to_string(),
        AOp::Send { to, tag, .. } => match to {
            APeer::Rank(r) => format!("send tag {tag} to {r}"),
            APeer::EachWorker => format!("send tag {tag} to live workers"),
        },
        AOp::Recv { from, tag, .. } => match from {
            APeer::Rank(r) => format!("recv tag {tag} from {r}"),
            APeer::EachWorker => format!("recv tag {tag} from live workers"),
        },
    }
}

/// Render both role automata as a mermaid `stateDiagram-v2`
/// (`pdnn-protomc --emit-diagram`; embedded in
/// `crates/protocheck/PROTOCOL.md`).
pub fn mermaid(spec: &ProtoSpec) -> String {
    let mut out = String::new();
    out.push_str("stateDiagram-v2\n");
    out.push_str("    state Master {\n");
    out.push_str(&format!(
        "        [*] --> M_Startup : {}x send tag {} per worker\n",
        spec.startup_sends, spec.startup_tag
    ));
    out.push_str("        M_Startup --> M_Command : header bcast (opcode)\n");
    for &idx in &spec.iteration {
        let c = &spec.commands[idx];
        let body: Vec<String> = c.master.iter().map(op_label).collect();
        out.push_str(&format!(
            "        M_Command --> M_Command : {} [{}]\n",
            c.name,
            body.join("; ")
        ));
    }
    let c = &spec.commands[spec.load_data];
    let body: Vec<String> = c.master.iter().map(op_label).collect();
    out.push_str(&format!(
        "        M_Command --> M_Recover : worker death [ack; {}; restore theta; replay]\n",
        body.join("; ")
    ));
    out.push_str("        M_Recover --> M_Command : resume from snapshot\n");
    let c = &spec.commands[spec.shutdown];
    let body: Vec<String> = c.master.iter().map(op_label).collect();
    out.push_str(&format!(
        "        M_Command --> [*] : CMD_SHUTDOWN [{}]\n",
        body.join("; ")
    ));
    out.push_str("    }\n");
    out.push_str("    state Worker {\n");
    out.push_str(&format!(
        "        [*] --> W_Dispatch : {}x recv tag {} from master\n",
        spec.startup_recvs, spec.startup_tag
    ));
    for c in &spec.commands {
        if c.name == "CMD_SHUTDOWN" {
            continue;
        }
        let body: Vec<String> = c.worker.iter().map(op_label).collect();
        let label = if body.is_empty() {
            "no comm".to_string()
        } else {
            body.join("; ")
        };
        out.push_str(&format!(
            "        W_Dispatch --> W_Dispatch : {} [{}]\n",
            c.name, label
        ));
    }
    let c = &spec.commands[spec.shutdown];
    let body: Vec<String> = c.worker.iter().map(op_label).collect();
    out.push_str(&format!(
        "        W_Dispatch --> [*] : CMD_SHUTDOWN [{}]\n",
        body.join("; ")
    ));
    out.push_str("    }\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn workspace_root() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(std::path::Path::to_path_buf)
            .unwrap_or_default()
    }

    #[test]
    fn compiles_the_extracted_workspace_model() {
        let outcome = pdnn_protocheck::run_static(&workspace_root()).expect("surfaces readable");
        let spec = compile(&outcome.model).expect("model compiles");
        assert_eq!(spec.iteration.len(), 5);
        assert_eq!(spec.startup_sends, 2);
        assert_eq!(spec.startup_recvs, 2);
        assert_eq!(spec.startup_tag, 17);
        assert_eq!(spec.commands[spec.shutdown].opcode, 0);
        // GRADIENT: two reductions on the master side, mirrored by the
        // worker arm.
        let grad = &spec.commands[spec
            .command_by_opcode(2)
            .expect("CMD_GRADIENT opcode extracted")];
        assert_eq!(
            grad.master
                .iter()
                .filter(|o| matches!(o, AOp::Reduce { .. }))
                .count(),
            2
        );
        assert_eq!(grad.master.len(), grad.worker.len());
        // The shutdown command absorbed both teardown barriers.
        assert!(spec.commands[spec.shutdown]
            .master
            .iter()
            .any(|o| matches!(o, AOp::Barrier)));
        assert!(spec.commands[spec.shutdown]
            .worker
            .iter()
            .any(|o| matches!(o, AOp::Barrier)));
    }

    #[test]
    fn mermaid_diagram_names_both_roles_and_every_command() {
        let outcome = pdnn_protocheck::run_static(&workspace_root()).expect("surfaces readable");
        let spec = compile(&outcome.model).expect("model compiles");
        let mmd = mermaid(&spec);
        assert!(mmd.starts_with("stateDiagram-v2"));
        for name in ["Master", "Worker", "CMD_GRADIENT", "CMD_SHUTDOWN", "replay"] {
            assert!(mmd.contains(name), "diagram missing {name}");
        }
    }
}
