//! Masterless sync-mode automata: explicit-state checking for the
//! ring and tree allreduce schedules (`SyncStrategy::Ring` /
//! `SyncStrategy::Tree`).
//!
//! The master/worker explorer ([`crate::explorer`]) walks a rooted
//! command protocol; the masterless modes have no commands at all —
//! every rank runs the same replicated program whose only
//! communication is symmetric allreduces plus one closing barrier.
//! This module lowers that program into per-rank *micro-step*
//! automata, one [`MOp`] per blocking primitive inside the collective
//! algorithms of `crates/mpisim/src/collectives.rs`:
//!
//! * **ring allreduce** — `P − 1` reduce-scatter hops (send the
//!   outgoing chunk to `(rank + 1) % P`, receive from
//!   `(rank + P − 1) % P` on the `tag + 1` window) followed by
//!   `P − 1` allgather hops on the `tag + 2` window;
//! * **tree allreduce** — a binomial reduce to rank 0 on `tag + 1`
//!   followed by a binomial broadcast from rank 0 on `tag + 2`,
//!   mirroring the exact mask arithmetic of `allreduce_tree`;
//! * **barrier** — the dissemination pattern (`log₂ P` rounds of
//!   send-to-`(rank + step) % P` / receive-from-`(rank − step) % P`).
//!
//! The explorer enumerates every interleaving of those micro-steps on
//! 2–4 rank worlds and proves the shared properties: `p5` (no
//! reachable state wedges a rank), `p6` (no message is left
//! undelivered at a completed terminal), and `p7` (every execution
//! terminates completed — structural here, since program counters only
//! advance and `p5` rules out stuck states; the masterless modes have
//! no recovery to model because fault plans are rejected outside
//! `SyncStrategy::Master`).
//!
//! Fidelity is closed from the trace side by
//! [`replay_decentral_run`], which accepts the per-rank
//! [`CommEvent`] streams of *real* ring-/tree-mode training runs: all
//! collectives must carry the mode's op name, follow the
//! `DecentralProblem` phase grammar (an `f32` payload allreduce
//! immediately chased by its `f64` metadata allreduce, or a
//! standalone `f64` heldout allreduce), stay point-to-point silent,
//! be byte-identical in shape across ranks (the SPMD invariant behind
//! the replicated-optimizer design), and end in exactly one barrier.

use crate::conformance::{RankReplay, RunReplay};
use crate::explorer::{Violation, P5, P6, P7};
use crate::mutate::MutationResult;
use pdnn_mpisim::CommEvent;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Which masterless allreduce family a world runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DMode {
    Ring,
    Tree,
}

impl DMode {
    /// The `CommEvent::Coll` op name this mode's allreduces record.
    pub fn op_name(self) -> &'static str {
        match self {
            DMode::Ring => "allreduce_ring",
            DMode::Tree => "allreduce_tree",
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            DMode::Ring => "ring",
            DMode::Tree => "tree",
        }
    }
}

/// One blocking micro-step inside a collective. `coll` numbers the
/// collective within the replicated program (the fresh-tag-window
/// discipline of `with_collective`); `phase` is the sub-window
/// (`1`/`2` for the two halves of an allreduce, `0` for the barrier).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum MOp {
    Send { to: u8, coll: u8, phase: u8 },
    Recv { from: u8, coll: u8, phase: u8 },
}

/// Lower one ring allreduce (collective number `c`) for `rank` of
/// `size`: the reduce-scatter ring on phase 1, the allgather ring on
/// phase 2. Chunk indices don't affect blocking so they are elided.
fn lower_ring(c: u8, rank: usize, size: usize, out: &mut Vec<MOp>) {
    let next = ((rank + 1) % size) as u8;
    let prev = ((rank + size - 1) % size) as u8;
    for phase in [1u8, 2u8] {
        for _step in 0..size - 1 {
            out.push(MOp::Send {
                to: next,
                coll: c,
                phase,
            });
            out.push(MOp::Recv {
                from: prev,
                coll: c,
                phase,
            });
        }
    }
}

/// Lower one tree allreduce: binomial reduce to rank 0 (phase 1) then
/// binomial broadcast from rank 0 (phase 2), with the same mask walk
/// as `Comm::allreduce_tree`.
fn lower_tree(c: u8, rank: usize, size: usize, out: &mut Vec<MOp>) {
    let mut mask = 1usize;
    while mask < size {
        if rank & mask == 0 {
            let src = rank | mask;
            if src < size {
                out.push(MOp::Recv {
                    from: src as u8,
                    coll: c,
                    phase: 1,
                });
            }
        } else {
            let dst = rank & !mask;
            out.push(MOp::Send {
                to: dst as u8,
                coll: c,
                phase: 1,
            });
            break;
        }
        mask <<= 1;
    }
    let mut mask = 1usize;
    while mask < size {
        if rank & mask != 0 {
            let src = rank - mask;
            out.push(MOp::Recv {
                from: src as u8,
                coll: c,
                phase: 2,
            });
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if rank + mask < size {
            let dst = rank + mask;
            out.push(MOp::Send {
                to: dst as u8,
                coll: c,
                phase: 2,
            });
        }
        mask >>= 1;
    }
}

/// Lower the dissemination barrier closing the protocol.
fn lower_barrier(c: u8, rank: usize, size: usize, out: &mut Vec<MOp>) {
    let mut step = 1usize;
    while step < size {
        let dst = ((rank + step) % size) as u8;
        let src = ((rank + size - step) % size) as u8;
        out.push(MOp::Send {
            to: dst,
            coll: c,
            phase: 0,
        });
        out.push(MOp::Recv {
            from: src,
            coll: c,
            phase: 0,
        });
        step <<= 1;
    }
}

/// How many allreduces the canonical replicated program performs
/// before the closing barrier. The shape abstracts one HF iteration
/// of `DecentralProblem`: the gradient pair (`f32` vector + `f64`
/// metadata), one curvature pair, and the heldout metadata allreduce.
/// Further iterations repeat the same window pattern, so one
/// iteration plus the barrier covers every cross-collective
/// dependency the real program can exhibit.
const CANONICAL_ALLREDUCES: u8 = 5;

/// Build the per-rank micro-step programs for `size` ranks under
/// `mode`: the canonical allreduce schedule plus the closing barrier.
fn programs(mode: DMode, size: usize) -> Vec<Vec<MOp>> {
    (0..size)
        .map(|rank| {
            let mut ops = Vec::new();
            for c in 0..CANONICAL_ALLREDUCES {
                match mode {
                    DMode::Ring => lower_ring(c, rank, size, &mut ops),
                    DMode::Tree => lower_tree(c, rank, size, &mut ops),
                }
            }
            lower_barrier(CANONICAL_ALLREDUCES, rank, size, &mut ops);
            ops
        })
        .collect()
}

/// One explored micro-step state: per-rank program counters plus
/// in-flight message counts per directed channel and tag window.
#[derive(Clone, PartialEq, Eq, Hash)]
struct DState {
    pcs: Vec<u16>,
    /// `(src, dst, coll, phase)` → pending message count. `mpisim`
    /// receives match on `(source, tag)`, so counts per window are a
    /// faithful abstraction — payloads never affect blocking.
    chans: BTreeMap<(u8, u8, u8, u8), u8>,
}

/// What exploring one masterless world learned.
#[derive(Clone, Debug, Default)]
pub struct DecentralOutcome {
    pub states: usize,
    pub transitions: usize,
    pub terminals: usize,
    pub violations: Vec<Violation>,
}

/// Enumerate every interleaving of the per-rank programs, checking
/// `p5` (a state with no enabled micro-step must have every rank
/// completed) and `p6` (a completed terminal must have no in-flight
/// messages). `p7` follows structurally: program counters strictly
/// advance, so the state graph is acyclic and — absent `p5`
/// violations — every maximal path ends with all ranks done.
fn explore_programs(progs: &[Vec<MOp>]) -> DecentralOutcome {
    let size = progs.len();
    let init = DState {
        pcs: vec![0; size],
        chans: BTreeMap::new(),
    };
    let mut seen: HashSet<DState> = HashSet::new();
    seen.insert(init.clone());
    let mut frontier: VecDeque<DState> = VecDeque::from([init]);
    let mut out = DecentralOutcome::default();
    let mut violations: Vec<Violation> = Vec::new();
    while let Some(st) = frontier.pop_front() {
        out.states += 1;
        let mut enabled = 0usize;
        let mut blocked: Option<(usize, MOp)> = None;
        for (rank, prog) in progs.iter().enumerate() {
            let pc = st.pcs[rank] as usize;
            let Some(op) = prog.get(pc) else {
                continue;
            };
            let mut next = st.clone();
            next.pcs[rank] += 1;
            match *op {
                MOp::Send { to, coll, phase } => {
                    *next.chans.entry((rank as u8, to, coll, phase)).or_insert(0) += 1;
                }
                MOp::Recv { from, coll, phase } => {
                    let key = (from, rank as u8, coll, phase);
                    match next.chans.get_mut(&key) {
                        Some(n) if *n > 0 => {
                            *n -= 1;
                            if *n == 0 {
                                next.chans.remove(&key);
                            }
                        }
                        _ => {
                            if blocked.is_none() {
                                blocked = Some((rank, *op));
                            }
                            continue;
                        }
                    }
                }
            }
            enabled += 1;
            out.transitions += 1;
            if seen.insert(next.clone()) {
                frontier.push_back(next);
            }
        }
        if enabled > 0 {
            continue;
        }
        let done = st
            .pcs
            .iter()
            .zip(progs)
            .all(|(&pc, p)| pc as usize == p.len());
        if done {
            out.terminals += 1;
            if !st.chans.is_empty() {
                let pending: usize = st.chans.values().map(|&n| n as usize).sum();
                violations.push(Violation {
                    rule: P6,
                    detail: format!(
                        "{pending} message(s) still in flight at a completed \
                         terminal of the {size}-rank masterless world"
                    ),
                });
            }
        } else if let Some((rank, op)) = blocked {
            let what = match op {
                MOp::Recv { from, coll, phase } => {
                    format!("recv(from {from}, coll {coll}, window {phase})")
                }
                // Sends never block in mpisim; a wedged rank is
                // always waiting on a receive.
                MOp::Send { .. } => "send".to_string(),
            };
            violations.push(Violation {
                rule: P5,
                detail: format!(
                    "deadlock in the {size}-rank masterless world: rank {rank} \
                     wedged at {what}"
                ),
            });
        }
    }
    violations.sort();
    violations.dedup();
    out.violations = violations;
    out
}

/// One model-checked masterless world for the report.
pub struct DecentralWorld {
    pub mode: DMode,
    pub ranks: usize,
    pub outcome: DecentralOutcome,
}

/// The checked masterless worlds: both modes at 2, 3, and 4 ranks.
pub fn check_worlds() -> Vec<DecentralWorld> {
    let mut out = Vec::new();
    for mode in [DMode::Ring, DMode::Tree] {
        for ranks in [2usize, 3, 4] {
            out.push(DecentralWorld {
                mode,
                ranks,
                outcome: explore_programs(&programs(mode, ranks)),
            });
        }
    }
    out
}

/// Verdict per property for one world, for the report renderer.
pub fn verdicts(outcome: &DecentralOutcome) -> [(&'static str, bool); 3] {
    let p5_ok = !outcome.violations.iter().any(|v| v.rule == P5);
    let p6_ok = !outcome.violations.iter().any(|v| v.rule == P6);
    // Termination is structural (acyclic state graph) + completion is
    // exactly the absence of wedged states.
    [(P5, p5_ok), (P6, p6_ok), (P7, p5_ok)]
}

// ---------------------------------------------------------------------------
// Mutation self-test
// ---------------------------------------------------------------------------

/// One seeded masterless-protocol bug, applied to the generated
/// 3-rank micro-step programs.
struct DMutation {
    name: &'static str,
    expected_rule: &'static str,
    summary: &'static str,
    mode: DMode,
    apply: fn(&mut Vec<Vec<MOp>>),
}

const MUT_RANKS: usize = 3;

fn decentral_mutations() -> Vec<DMutation> {
    vec![
        DMutation {
            name: "ring-wrong-neighbor",
            expected_rule: P5,
            summary: "one rank's reduce-scatter hops send upstream instead of downstream",
            mode: DMode::Ring,
            apply: |progs| {
                for op in progs[1].iter_mut() {
                    if let MOp::Send {
                        to,
                        coll: 0,
                        phase: 1,
                    } = op
                    {
                        // prev(1) instead of next(1) on the 3-ring.
                        *to = 0;
                    }
                }
            },
        },
        DMutation {
            name: "ring-skipped-hop",
            expected_rule: P5,
            summary: "one rank skips its first allgather forward, starving its successor",
            mode: DMode::Ring,
            apply: |progs| {
                if let Some(i) = progs[1].iter().position(|o| {
                    matches!(
                        o,
                        MOp::Send {
                            coll: 0,
                            phase: 2,
                            ..
                        }
                    )
                }) {
                    progs[1].remove(i);
                }
            },
        },
        DMutation {
            name: "ring-extra-step",
            expected_rule: P5,
            summary: "one rank runs an extra reduce-scatter hop nobody pairs with",
            mode: DMode::Ring,
            apply: |progs| {
                if let Some(i) = progs[0].iter().rposition(|o| {
                    matches!(
                        o,
                        MOp::Recv {
                            coll: 0,
                            phase: 1,
                            ..
                        }
                    )
                }) {
                    progs[0].insert(
                        i + 1,
                        MOp::Send {
                            to: 1,
                            coll: 0,
                            phase: 1,
                        },
                    );
                    progs[0].insert(
                        i + 2,
                        MOp::Recv {
                            from: 2,
                            coll: 0,
                            phase: 1,
                        },
                    );
                }
            },
        },
        DMutation {
            name: "ring-seq-skew",
            expected_rule: P5,
            summary: "one rank skips a whole collective, desynchronizing tag windows",
            mode: DMode::Ring,
            apply: |progs| {
                progs[2].retain(|o| {
                    !matches!(o, MOp::Send { coll: 0, .. } | MOp::Recv { coll: 0, .. })
                });
            },
        },
        DMutation {
            name: "ring-barrier-dropped",
            expected_rule: P5,
            summary: "one rank exits without joining the closing dissemination barrier",
            mode: DMode::Ring,
            apply: |progs| {
                let c = CANONICAL_ALLREDUCES;
                progs[0].retain(|o| match o {
                    MOp::Send { coll, .. } | MOp::Recv { coll, .. } => *coll != c,
                });
            },
        },
        DMutation {
            name: "ring-stray-final-send",
            expected_rule: P6,
            summary: "one rank emits a trailing message nobody ever receives",
            mode: DMode::Ring,
            apply: |progs| {
                progs[0].push(MOp::Send {
                    to: 1,
                    coll: CANONICAL_ALLREDUCES,
                    phase: 2,
                });
            },
        },
        DMutation {
            name: "tree-wrong-root",
            expected_rule: P6,
            summary: "one rank broadcasts as if it were the root, stranding the real root's sends",
            mode: DMode::Tree,
            apply: |progs| {
                // Rank 1 runs the broadcast half of collective 0 as the
                // vrank-0 root of a root-1 tree (sends to ranks 0 and
                // 2) instead of receiving from rank 0. Every rank
                // still completes — the real root's message to rank 1
                // and both stray sends are left in flight.
                if let Some(i) = progs[1].iter().position(|o| {
                    matches!(
                        o,
                        MOp::Recv {
                            coll: 0,
                            phase: 2,
                            ..
                        }
                    )
                }) {
                    progs[1].splice(
                        i..i + 1,
                        [
                            MOp::Send {
                                to: 0,
                                coll: 0,
                                phase: 2,
                            },
                            MOp::Send {
                                to: 2,
                                coll: 0,
                                phase: 2,
                            },
                        ],
                    );
                }
            },
        },
    ]
}

/// Explore every masterless mutant on the 3-rank world. The results
/// join the master-protocol battery in the report and the
/// `verify.sh` caught-them-all gate.
pub fn run_decentral_mutations() -> Vec<MutationResult> {
    decentral_mutations()
        .into_iter()
        .map(|m| {
            let mut progs = programs(m.mode, MUT_RANKS);
            (m.apply)(&mut progs);
            let out = explore_programs(&progs);
            let mut fired: Vec<&'static str> = out.violations.iter().map(|v| v.rule).collect();
            fired.dedup();
            MutationResult {
                name: m.name,
                expected_rule: m.expected_rule,
                summary: m.summary,
                caught: fired.contains(&m.expected_rule),
                fired_rules: fired,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Trace conformance
// ---------------------------------------------------------------------------

/// Shape of one collective event for the SPMD cross-rank check.
type CollShape = (&'static str, &'static str, usize);

fn coll_shape(ev: &CommEvent) -> Option<CollShape> {
    match ev {
        CommEvent::Coll { op, kind, len, .. } => Some((op, kind, *len)),
        _ => None,
    }
}

/// Replay one masterless rank's stream against the `DecentralProblem`
/// phase grammar: `((f32-allreduce f64-allreduce) | f64-allreduce)*
/// barrier`, with every allreduce carrying the mode's op name.
fn replay_decentral_rank(mode: DMode, rank: usize, events: &[CommEvent]) -> RankReplay {
    let total = events.len();
    let want = mode.op_name();
    let fail = |pos: usize, msg: String| RankReplay {
        rank,
        consumed: pos,
        total,
        completed: false,
        accepted: false,
        error: Some(format!("event {pos}: {msg}")),
    };
    let mut pos = 0usize;
    let mut allreduces = 0usize;
    while pos < total {
        let (op, kind) = match &events[pos] {
            CommEvent::Coll {
                op,
                kind,
                root: 0,
                ok: true,
                ..
            } => (*op, *kind),
            other => {
                let what = match other {
                    CommEvent::Coll { op, root, .. } => {
                        format!("collective {op} with root {root} or a failed verdict")
                    }
                    CommEvent::Send { to, tag, .. } => format!("p2p send(to {to}, tag {tag})"),
                    CommEvent::Recv { from, tag, .. } => {
                        format!("p2p recv(from {from}, tag {tag})")
                    }
                };
                return fail(pos, format!("masterless stream contains {what}"));
            }
        };
        match (op, kind) {
            ("barrier", _) => {
                if pos + 1 != total {
                    return fail(
                        pos,
                        format!("{} event(s) after the closing barrier", total - pos - 1),
                    );
                }
                if allreduces == 0 {
                    return fail(pos, "barrier before any allreduce".to_string());
                }
                return RankReplay {
                    rank,
                    consumed: total,
                    total,
                    completed: true,
                    accepted: true,
                    error: None,
                };
            }
            (o, "F32") if o == want => {
                // A payload allreduce is always chased by its f64
                // metadata allreduce inside the same phase.
                match events.get(pos + 1) {
                    Some(CommEvent::Coll {
                        op,
                        kind: "F64",
                        root: 0,
                        ok: true,
                        ..
                    }) if *op == want => {
                        allreduces += 2;
                        pos += 2;
                    }
                    _ => {
                        return fail(
                            pos + 1,
                            format!("f32 {o} not chased by its f64 metadata allreduce"),
                        )
                    }
                }
            }
            (o, "F64") if o == want => {
                allreduces += 1;
                pos += 1;
            }
            (o, k) => {
                return fail(
                    pos,
                    format!("expected {want} or barrier, saw {o} ({k} payload)"),
                )
            }
        }
    }
    fail(pos, "stream ended without the closing barrier".to_string())
}

/// Replay a whole masterless run. On top of the per-rank grammar,
/// enforces the SPMD invariant: every rank's collective sequence must
/// be shape-identical (op, payload kind, element count) to rank 0's —
/// the property the replicated-optimizer design rests on.
pub fn replay_decentral_run(mode: DMode, rank_events: &[&[CommEvent]]) -> RunReplay {
    let mut ranks = Vec::new();
    let mut unmapped = 0usize;
    let mut p2p_events = 0usize;
    let mut coll_events = 0usize;
    let shape0: Vec<CollShape> = rank_events
        .first()
        .map(|evs| evs.iter().filter_map(coll_shape).collect())
        .unwrap_or_default();
    for (rank, events) in rank_events.iter().enumerate() {
        for ev in events.iter() {
            match ev {
                CommEvent::Coll { .. } => coll_events += 1,
                _ => p2p_events += 1,
            }
        }
        let mut r = replay_decentral_rank(mode, rank, events);
        if r.accepted {
            let shape: Vec<CollShape> = events.iter().filter_map(coll_shape).collect();
            if shape != shape0 {
                let at = shape
                    .iter()
                    .zip(&shape0)
                    .position(|(a, b)| a != b)
                    .unwrap_or(shape.len().min(shape0.len()));
                r.accepted = false;
                r.completed = false;
                r.consumed = at;
                r.error = Some(format!(
                    "SPMD divergence: collective {at} differs in shape from rank 0"
                ));
            }
        }
        unmapped += r.total - r.consumed;
        ranks.push(r);
    }
    let accepted = !ranks.is_empty() && ranks.iter().all(|r| r.accepted && r.completed);
    RunReplay {
        ranks,
        unmapped,
        accepted,
        p2p_events,
        coll_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_are_clean_on_small_worlds() {
        for w in check_worlds() {
            assert!(
                w.outcome.violations.is_empty(),
                "{} mode, {} ranks: {:?}",
                w.mode.label(),
                w.ranks,
                w.outcome.violations
            );
            assert!(w.outcome.states > 1);
            assert!(
                w.outcome.terminals >= 1,
                "{} mode, {} ranks never completed",
                w.mode.label(),
                w.ranks
            );
        }
    }

    #[test]
    fn micro_programs_conserve_messages_pairwise() {
        // Every (src, dst, coll, window) send has exactly one matching
        // recv — the static invariant behind the p6 verdict.
        for mode in [DMode::Ring, DMode::Tree] {
            for size in [2usize, 3, 4, 5, 8] {
                let progs = programs(mode, size);
                let mut balance: BTreeMap<(u8, u8, u8, u8), i64> = BTreeMap::new();
                for (rank, prog) in progs.iter().enumerate() {
                    for op in prog {
                        match *op {
                            MOp::Send { to, coll, phase } => {
                                *balance.entry((rank as u8, to, coll, phase)).or_default() += 1;
                            }
                            MOp::Recv { from, coll, phase } => {
                                *balance.entry((from, rank as u8, coll, phase)).or_default() -= 1;
                            }
                        }
                    }
                }
                assert!(
                    balance.values().all(|&v| v == 0),
                    "{} mode, {size} ranks: unbalanced channels {balance:?}",
                    mode.label()
                );
            }
        }
    }

    #[test]
    fn ring_programs_match_the_implementation_hop_count() {
        // 2·(P−1) hops per allreduce per rank (reduce-scatter +
        // allgather), each hop one send and one recv.
        for size in [2usize, 3, 4, 8] {
            let progs = programs(DMode::Ring, size);
            let barrier_ops = 2 * (usize::BITS - (size - 1).leading_zeros()) as usize;
            for prog in &progs {
                assert_eq!(
                    prog.len(),
                    CANONICAL_ALLREDUCES as usize * 4 * (size - 1) + barrier_ops
                );
            }
        }
    }

    #[test]
    fn every_decentral_mutation_is_caught() {
        let results = run_decentral_mutations();
        assert!(results.len() >= 5, "battery shrank to {}", results.len());
        let missed: Vec<String> = results
            .iter()
            .filter(|r| !r.caught)
            .map(|r| {
                format!(
                    "{} (expected {}, fired {:?})",
                    r.name, r.expected_rule, r.fired_rules
                )
            })
            .collect();
        assert!(missed.is_empty(), "missed mutations: {missed:?}");
    }

    fn ar(mode: DMode, kind: &'static str, len: usize) -> CommEvent {
        CommEvent::Coll {
            op: mode.op_name(),
            root: 0,
            kind,
            len,
            first: None,
            ok: true,
        }
    }

    fn barrier() -> CommEvent {
        CommEvent::Coll {
            op: "barrier",
            root: 0,
            kind: "Empty",
            len: 0,
            first: None,
            ok: true,
        }
    }

    #[test]
    fn a_well_formed_ring_stream_conforms() {
        let stream = vec![
            ar(DMode::Ring, "F32", 100),
            ar(DMode::Ring, "F64", 2),
            ar(DMode::Ring, "F64", 3),
            barrier(),
        ];
        let run = replay_decentral_run(DMode::Ring, &[&stream, &stream, &stream]);
        assert!(run.accepted, "{:?}", run.ranks[0].error);
        assert_eq!(run.unmapped, 0);
        assert_eq!(run.p2p_events, 0);
    }

    #[test]
    fn wrong_mode_and_p2p_and_divergence_are_rejected() {
        let good = vec![ar(DMode::Ring, "F64", 3), barrier()];
        // Tree ops in a ring-mode replay.
        let tree = vec![ar(DMode::Tree, "F64", 3), barrier()];
        let run = replay_decentral_run(DMode::Ring, &[&good, &tree]);
        assert!(!run.accepted);
        assert!(run.ranks[1]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("allreduce_tree"));
        // A stray p2p event.
        let p2p = vec![
            CommEvent::Send {
                to: 1,
                tag: 9,
                kind: "F32",
                len: 4,
            },
            barrier(),
        ];
        let run = replay_decentral_run(DMode::Ring, &[&good, &p2p]);
        assert!(!run.accepted);
        assert_eq!(run.p2p_events, 1);
        // Shape-divergent but individually grammatical streams.
        let other = vec![ar(DMode::Ring, "F64", 4), barrier()];
        let run = replay_decentral_run(DMode::Ring, &[&good, &other]);
        assert!(!run.accepted);
        assert!(run.ranks[1].error.as_deref().unwrap_or("").contains("SPMD"));
    }

    #[test]
    fn truncated_and_trailing_streams_are_rejected() {
        let no_barrier = vec![ar(DMode::Ring, "F64", 3)];
        let run = replay_decentral_run(DMode::Ring, &[&no_barrier]);
        assert!(!run.accepted);
        let trailing = vec![
            ar(DMode::Ring, "F64", 3),
            barrier(),
            ar(DMode::Ring, "F64", 3),
        ];
        let run = replay_decentral_run(DMode::Ring, &[&trailing]);
        assert!(!run.accepted);
        assert!(run.unmapped > 0);
        // An f32 allreduce with no f64 chaser.
        let orphan = vec![ar(DMode::Ring, "F32", 100), barrier()];
        let run = replay_decentral_run(DMode::Ring, &[&orphan]);
        assert!(!run.accepted);
    }
}
