//! Masterless sync-mode automata: explicit-state checking for the
//! ring and tree allreduce schedules (`SyncStrategy::Ring` /
//! `SyncStrategy::Tree`).
//!
//! The master/worker explorer ([`crate::explorer`]) walks a rooted
//! command protocol; the masterless modes have no commands at all —
//! every rank runs the same replicated program whose only
//! communication is symmetric allreduces plus one closing barrier.
//! This module lowers that program into per-rank *micro-step*
//! automata, one [`MOp`] per blocking primitive inside the collective
//! algorithms of `crates/mpisim/src/collectives.rs`:
//!
//! * **ring allreduce** — `P − 1` reduce-scatter hops (send the
//!   outgoing chunk to `(rank + 1) % P`, receive from
//!   `(rank + P − 1) % P` on the `tag + 1` window) followed by
//!   `P − 1` allgather hops on the `tag + 2` window;
//! * **tree allreduce** — a binomial reduce to rank 0 on `tag + 1`
//!   followed by a binomial broadcast from rank 0 on `tag + 2`,
//!   mirroring the exact mask arithmetic of `allreduce_tree`;
//! * **barrier** — the dissemination pattern (`log₂ P` rounds of
//!   send-to-`(rank + step) % P` / receive-from-`(rank − step) % P`).
//!
//! The explorer enumerates every interleaving of those micro-steps on
//! 2–4 rank worlds and proves the shared properties: `p5` (no
//! reachable state wedges a rank), `p6` (no message is left
//! undelivered at a completed terminal), and `p7` (every execution
//! terminates completed — structural here, since program counters only
//! advance and `p5` rules out stuck states).
//!
//! **Recovery model** (`check_recovery_worlds`): since ISSUE 10 the
//! masterless modes accept fault plans, so the failure path is modeled
//! too. For every kill placement — every victim × every collective
//! entry, mirroring `fault_gate` which only fires kills at collective
//! boundaries — the victim's program is truncated at its death and
//! each survivor gains a nondeterministic *abort* transition: once the
//! victim is dead, a survivor blocked on an empty receive window of
//! the aborted collective may abandon it and jump to its recovery
//! program (the membership round to the lowest-surviving-rank
//! coordinator on the `REPORT`/`AGREE` windows, the coordinator's two
//! reshard shipments per survivor, one re-stitched allreduce lowered
//! over the survivor positions, and the survivor-only closing
//! barrier). Interleaving freedom makes the abort fire at *every*
//! feasible hop of the aborted collective, including spuriously-early
//! timeouts the real clock would rarely produce. `p6` is weakened to
//! `p6'` exactly as in the implementation: messages stranded on the
//! aborted collective's windows are legal (real inboxes keep them
//! forever; fresh tag windows make them unmatchable), every other
//! window must drain.
//!
//! Fidelity is closed from the trace side by
//! [`replay_decentral_run`], which accepts the per-rank
//! [`CommEvent`] streams of *real* ring-/tree-mode training runs: all
//! collectives must carry the mode's op name, follow the
//! `DecentralProblem` phase grammar (an `f32` payload allreduce with
//! an optional `f64` metadata chaser — the gradient always carries
//! one, curvature products agree on the sample's frame count once
//! per draw — or a standalone `f64` allreduce), stay point-to-point
//! silent,
//! be byte-identical in shape across ranks (the SPMD invariant behind
//! the replicated-optimizer design), and end in exactly one barrier.
//! [`replay_decentral_faulted_run`] extends that grammar to real
//! killed runs: the victim's stream is a silent clean prefix, each
//! survivor shows the aborted collective (`ok: false`), recovery
//! point-to-point traffic on the `REPORT`/`AGREE`/`LOAD_DATA` tags,
//! and a resumed schedule rooted at the lowest survivor.

use crate::conformance::{RankReplay, RunReplay};
use crate::explorer::{Violation, P5, P6, P7};
use crate::mutate::MutationResult;
use pdnn_mpisim::CommEvent;
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Which masterless allreduce family a world runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DMode {
    Ring,
    Tree,
}

impl DMode {
    /// The `CommEvent::Coll` op name this mode's allreduces record.
    pub fn op_name(self) -> &'static str {
        match self {
            DMode::Ring => "allreduce_ring",
            DMode::Tree => "allreduce_tree",
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            DMode::Ring => "ring",
            DMode::Tree => "tree",
        }
    }
}

/// One blocking micro-step inside a collective. `coll` numbers the
/// collective within the replicated program (the fresh-tag-window
/// discipline of `with_collective`); `phase` is the sub-window
/// (`1`/`2` for the two halves of an allreduce, `0` for the barrier).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum MOp {
    Send { to: u8, coll: u8, phase: u8 },
    Recv { from: u8, coll: u8, phase: u8 },
}

/// Lower one ring allreduce (collective number `c`) for the rank at
/// position `pos` of the participant list `parts`: the reduce-scatter
/// ring on phase 1, the allgather ring on phase 2. Chunk indices
/// don't affect blocking so they are elided. Fault-free lowering
/// passes `parts = [0, 1, …, P−1]`; the re-stitched post-recovery
/// collectives pass the sorted survivor list, mirroring
/// `allreduce_ring_timed`'s `live_parts`.
fn lower_ring(c: u8, pos: usize, parts: &[usize], out: &mut Vec<MOp>) {
    let m = parts.len();
    if m < 2 {
        return;
    }
    let next = parts[(pos + 1) % m] as u8;
    let prev = parts[(pos + m - 1) % m] as u8;
    for phase in [1u8, 2u8] {
        for _step in 0..m - 1 {
            out.push(MOp::Send {
                to: next,
                coll: c,
                phase,
            });
            out.push(MOp::Recv {
                from: prev,
                coll: c,
                phase,
            });
        }
    }
}

/// Lower one tree allreduce over `parts`: binomial reduce to
/// `parts[0]` (phase 1) then binomial broadcast from `parts[0]`
/// (phase 2), with the same virtual-position mask walk as
/// `Comm::allreduce_tree` / `tree_exchange`.
fn lower_tree(c: u8, pos: usize, parts: &[usize], out: &mut Vec<MOp>) {
    let m = parts.len();
    if m < 2 {
        return;
    }
    let mut mask = 1usize;
    while mask < m {
        if pos & mask == 0 {
            let src = pos | mask;
            if src < m {
                out.push(MOp::Recv {
                    from: parts[src] as u8,
                    coll: c,
                    phase: 1,
                });
            }
        } else {
            let dst = pos & !mask;
            out.push(MOp::Send {
                to: parts[dst] as u8,
                coll: c,
                phase: 1,
            });
            break;
        }
        mask <<= 1;
    }
    let mut mask = 1usize;
    while mask < m {
        if pos & mask != 0 {
            let src = pos - mask;
            out.push(MOp::Recv {
                from: parts[src] as u8,
                coll: c,
                phase: 2,
            });
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if pos + mask < m {
            let dst = pos + mask;
            out.push(MOp::Send {
                to: parts[dst] as u8,
                coll: c,
                phase: 2,
            });
        }
        mask >>= 1;
    }
}

/// Lower the dissemination barrier closing the protocol, over the
/// positions of `parts`.
fn lower_barrier(c: u8, pos: usize, parts: &[usize], out: &mut Vec<MOp>) {
    let m = parts.len();
    let mut step = 1usize;
    while step < m {
        let dst = parts[(pos + step) % m] as u8;
        let src = parts[(pos + m - step) % m] as u8;
        out.push(MOp::Send {
            to: dst,
            coll: c,
            phase: 0,
        });
        out.push(MOp::Recv {
            from: src,
            coll: c,
            phase: 0,
        });
        step <<= 1;
    }
}

/// How many allreduces the canonical replicated program performs
/// before the closing barrier. The shape abstracts one HF iteration
/// of `DecentralProblem`: the gradient pair (`f32` vector + `f64`
/// metadata), one curvature pair, and the heldout metadata allreduce.
/// Further iterations repeat the same window pattern, so one
/// iteration plus the barrier covers every cross-collective
/// dependency the real program can exhibit.
const CANONICAL_ALLREDUCES: u8 = 5;

/// Build the per-rank micro-step programs for `size` ranks under
/// `mode`: the canonical allreduce schedule plus the closing barrier.
fn programs(mode: DMode, size: usize) -> Vec<Vec<MOp>> {
    let parts: Vec<usize> = (0..size).collect();
    (0..size)
        .map(|rank| {
            let mut ops = Vec::new();
            for c in 0..CANONICAL_ALLREDUCES {
                match mode {
                    DMode::Ring => lower_ring(c, rank, &parts, &mut ops),
                    DMode::Tree => lower_tree(c, rank, &parts, &mut ops),
                }
            }
            lower_barrier(CANONICAL_ALLREDUCES, rank, &parts, &mut ops);
            ops
        })
        .collect()
}

/// One explored micro-step state: per-rank program counters plus
/// in-flight message counts per directed channel and tag window.
#[derive(Clone, PartialEq, Eq, Hash)]
struct DState {
    pcs: Vec<u16>,
    /// `(src, dst, coll, phase)` → pending message count. `mpisim`
    /// receives match on `(source, tag)`, so counts per window are a
    /// faithful abstraction — payloads never affect blocking.
    chans: BTreeMap<(u8, u8, u8, u8), u8>,
}

/// What exploring one masterless world learned.
#[derive(Clone, Debug, Default)]
pub struct DecentralOutcome {
    pub states: usize,
    pub transitions: usize,
    pub terminals: usize,
    pub violations: Vec<Violation>,
}

/// Enumerate every interleaving of the per-rank programs, checking
/// `p5` (a state with no enabled micro-step must have every rank
/// completed) and `p6` (a completed terminal must have no in-flight
/// messages). `p7` follows structurally: program counters strictly
/// advance, so the state graph is acyclic and — absent `p5`
/// violations — every maximal path ends with all ranks done.
fn explore_programs(progs: &[Vec<MOp>]) -> DecentralOutcome {
    let size = progs.len();
    let init = DState {
        pcs: vec![0; size],
        chans: BTreeMap::new(),
    };
    let mut seen: HashSet<DState> = HashSet::new();
    seen.insert(init.clone());
    let mut frontier: VecDeque<DState> = VecDeque::from([init]);
    let mut out = DecentralOutcome::default();
    let mut violations: Vec<Violation> = Vec::new();
    while let Some(st) = frontier.pop_front() {
        out.states += 1;
        let mut enabled = 0usize;
        let mut blocked: Option<(usize, MOp)> = None;
        for (rank, prog) in progs.iter().enumerate() {
            let pc = st.pcs[rank] as usize;
            let Some(op) = prog.get(pc) else {
                continue;
            };
            let mut next = st.clone();
            next.pcs[rank] += 1;
            match *op {
                MOp::Send { to, coll, phase } => {
                    *next.chans.entry((rank as u8, to, coll, phase)).or_insert(0) += 1;
                }
                MOp::Recv { from, coll, phase } => {
                    let key = (from, rank as u8, coll, phase);
                    match next.chans.get_mut(&key) {
                        Some(n) if *n > 0 => {
                            *n -= 1;
                            if *n == 0 {
                                next.chans.remove(&key);
                            }
                        }
                        _ => {
                            if blocked.is_none() {
                                blocked = Some((rank, *op));
                            }
                            continue;
                        }
                    }
                }
            }
            enabled += 1;
            out.transitions += 1;
            if seen.insert(next.clone()) {
                frontier.push_back(next);
            }
        }
        if enabled > 0 {
            continue;
        }
        let done = st
            .pcs
            .iter()
            .zip(progs)
            .all(|(&pc, p)| pc as usize == p.len());
        if done {
            out.terminals += 1;
            if !st.chans.is_empty() {
                let pending: usize = st.chans.values().map(|&n| n as usize).sum();
                violations.push(Violation {
                    rule: P6,
                    detail: format!(
                        "{pending} message(s) still in flight at a completed \
                         terminal of the {size}-rank masterless world"
                    ),
                });
            }
        } else if let Some((rank, op)) = blocked {
            let what = match op {
                MOp::Recv { from, coll, phase } => {
                    format!("recv(from {from}, coll {coll}, window {phase})")
                }
                // Sends never block in mpisim; a wedged rank is
                // always waiting on a receive.
                MOp::Send { .. } => "send".to_string(),
            };
            violations.push(Violation {
                rule: P5,
                detail: format!(
                    "deadlock in the {size}-rank masterless world: rank {rank} \
                     wedged at {what}"
                ),
            });
        }
    }
    violations.sort();
    violations.dedup();
    out.violations = violations;
    out
}

/// One model-checked masterless world for the report.
pub struct DecentralWorld {
    pub mode: DMode,
    pub ranks: usize,
    /// `(victim, collective-entry)` kill placements folded into
    /// `outcome` — `0` for the fault-free worlds.
    pub kill_placements: usize,
    pub outcome: DecentralOutcome,
}

/// The checked masterless worlds: both modes at 2, 3, and 4 ranks.
pub fn check_worlds() -> Vec<DecentralWorld> {
    let mut out = Vec::new();
    for mode in [DMode::Ring, DMode::Tree] {
        for ranks in [2usize, 3, 4] {
            out.push(DecentralWorld {
                mode,
                ranks,
                kill_placements: 0,
                outcome: explore_programs(&programs(mode, ranks)),
            });
        }
    }
    out
}

/// Verdict per property for one world, for the report renderer.
pub fn verdicts(outcome: &DecentralOutcome) -> [(&'static str, bool); 3] {
    let p5_ok = !outcome.violations.iter().any(|v| v.rule == P5);
    let p6_ok = !outcome.violations.iter().any(|v| v.rule == P6);
    // Termination is structural (acyclic state graph) + completion is
    // exactly the absence of wedged states.
    [(P5, p5_ok), (P6, p6_ok), (P7, p5_ok)]
}

// ---------------------------------------------------------------------------
// Recovery model: kill a rank, abort the collective, re-stitch
// ---------------------------------------------------------------------------

/// How many collective-entry kill windows each recovery world
/// enumerates: the victim can die entering collective `0` (before any
/// clean allreduce completes) or collective `1` (after one). Later
/// entries repeat the same window pattern, so two placements cover
/// every cross-collective dependency the failure path can exhibit —
/// and within the aborted collective itself, interleaving freedom
/// drives the survivors' abort transition through every feasible hop.
const KILL_WINDOWS: u8 = 2;

/// Collective numbers for the recovery sub-protocol's tag windows,
/// kept disjoint from the clean schedule. `REC_MEMBER` phase 1/2 are
/// the `TAG_RECOVER_REPORT`/`TAG_RECOVER_AGREE` membership round,
/// `REC_SHARD` the coordinator's two `TAG_LOAD_DATA` shipments per
/// survivor, `REC_RESUME`/`REC_BARRIER` the re-stitched collectives.
const REC_MEMBER: u8 = 100;
const REC_SHARD: u8 = 101;
const REC_RESUME: u8 = 102;
const REC_BARRIER: u8 = 103;

/// One kill placement lowered to micro-step programs: the truncated
/// `main` programs (the victim's ends at its death; survivors' end
/// with the full aborted collective, which they must escape via the
/// abort transition) and the per-survivor `recovery` programs.
struct RecoveryScenario {
    main: Vec<Vec<MOp>>,
    recovery: Vec<Vec<MOp>>,
    victim: usize,
    /// The collective the victim died entering — the one whose
    /// stranded messages `p6'` tolerates.
    aborted_coll: u8,
}

/// Lower the kill placement `(victim, kill_at)` for `size` ranks
/// under `mode`, mirroring `DecentralProblem::recover`: membership
/// round to the lowest survivor, two reshard shipments per survivor,
/// one re-issued allreduce over the survivor list, survivor barrier.
fn recovery_scenario(mode: DMode, size: usize, victim: usize, kill_at: u8) -> RecoveryScenario {
    let parts: Vec<usize> = (0..size).collect();
    let main: Vec<Vec<MOp>> = (0..size)
        .map(|rank| {
            let mut ops = Vec::new();
            // The kill fires at `fault_gate`, i.e. at collective
            // entry: the victim completes `kill_at` collectives and
            // emits nothing for the aborted one.
            let colls = if rank == victim { kill_at } else { kill_at + 1 };
            for c in 0..colls {
                match mode {
                    DMode::Ring => lower_ring(c, rank, &parts, &mut ops),
                    DMode::Tree => lower_tree(c, rank, &parts, &mut ops),
                }
            }
            ops
        })
        .collect();
    let live: Vec<usize> = (0..size).filter(|&r| r != victim).collect();
    let coord = live[0];
    let recovery: Vec<Vec<MOp>> = (0..size)
        .map(|rank| {
            let mut ops = Vec::new();
            if rank == victim {
                return ops;
            }
            if rank == coord {
                for &w in live.iter().filter(|&&w| w != coord) {
                    ops.push(MOp::Recv {
                        from: w as u8,
                        coll: REC_MEMBER,
                        phase: 1,
                    });
                }
                for &w in live.iter().filter(|&&w| w != coord) {
                    ops.push(MOp::Send {
                        to: w as u8,
                        coll: REC_MEMBER,
                        phase: 2,
                    });
                }
                for &w in live.iter().filter(|&&w| w != coord) {
                    for _shipment in 0..2 {
                        ops.push(MOp::Send {
                            to: w as u8,
                            coll: REC_SHARD,
                            phase: 1,
                        });
                    }
                }
            } else {
                ops.push(MOp::Send {
                    to: coord as u8,
                    coll: REC_MEMBER,
                    phase: 1,
                });
                ops.push(MOp::Recv {
                    from: coord as u8,
                    coll: REC_MEMBER,
                    phase: 2,
                });
                for _shipment in 0..2 {
                    ops.push(MOp::Recv {
                        from: coord as u8,
                        coll: REC_SHARD,
                        phase: 1,
                    });
                }
            }
            // pdnn-lint: allow(l3-no-unwrap): this program is only built for a survivor, which is in `live` by the membership agreement above; a miss is a checker bug worth a loud stop
            let pos = live.iter().position(|&w| w == rank).unwrap();
            match mode {
                DMode::Ring => lower_ring(REC_RESUME, pos, &live, &mut ops),
                DMode::Tree => lower_tree(REC_RESUME, pos, &live, &mut ops),
            }
            lower_barrier(REC_BARRIER, pos, &live, &mut ops);
            ops
        })
        .collect();
    RecoveryScenario {
        main,
        recovery,
        victim,
        aborted_coll: kill_at,
    }
}

/// Micro-step state of a recovery world: `recovered[r]` switches rank
/// `r` from its main program to its recovery program (the victim
/// never switches — its main program simply ends).
#[derive(Clone, PartialEq, Eq, Hash)]
struct RState {
    pcs: Vec<u16>,
    recovered: Vec<bool>,
    chans: BTreeMap<(u8, u8, u8, u8), u8>,
}

/// Enumerate every interleaving of one kill placement. On top of the
/// send/recv semantics of [`explore_programs`], a survivor blocked on
/// an *empty* receive window of the aborted collective may take the
/// abort transition once the victim is dead — modeling
/// `CommError::{Timeout, RankDead}` surfacing from a timed hop,
/// including spuriously-early timeouts (the window being empty is
/// exactly mpisim's condition for a timeout to fire at all). `p6` is
/// checked as `p6'`: stranded messages are legal only on the aborted
/// collective's windows.
fn explore_recovery(sc: &RecoveryScenario) -> DecentralOutcome {
    let size = sc.main.len();
    let init = RState {
        pcs: vec![0; size],
        recovered: vec![false; size],
        chans: BTreeMap::new(),
    };
    let mut seen: HashSet<RState> = HashSet::new();
    seen.insert(init.clone());
    let mut frontier: VecDeque<RState> = VecDeque::from([init]);
    let mut out = DecentralOutcome::default();
    let mut violations: Vec<Violation> = Vec::new();
    while let Some(st) = frontier.pop_front() {
        out.states += 1;
        let victim_dead = st.pcs[sc.victim] as usize == sc.main[sc.victim].len();
        let mut enabled = 0usize;
        let mut blocked: Option<(usize, MOp)> = None;
        for rank in 0..size {
            let prog = if st.recovered[rank] {
                &sc.recovery[rank]
            } else {
                &sc.main[rank]
            };
            let Some(op) = prog.get(st.pcs[rank] as usize) else {
                continue;
            };
            let mut push = |next: RState, out: &mut DecentralOutcome| {
                out.transitions += 1;
                if seen.insert(next.clone()) {
                    frontier.push_back(next);
                }
            };
            match *op {
                MOp::Send { to, coll, phase } => {
                    let mut next = st.clone();
                    next.pcs[rank] += 1;
                    *next.chans.entry((rank as u8, to, coll, phase)).or_insert(0) += 1;
                    enabled += 1;
                    push(next, &mut out);
                }
                MOp::Recv { from, coll, phase } => {
                    let key = (from, rank as u8, coll, phase);
                    let has_msg = st.chans.get(&key).copied().unwrap_or(0) > 0;
                    if has_msg {
                        let mut next = st.clone();
                        next.pcs[rank] += 1;
                        if let Some(n) = next.chans.get_mut(&key) {
                            *n -= 1;
                            if *n == 0 {
                                next.chans.remove(&key);
                            }
                        }
                        enabled += 1;
                        push(next, &mut out);
                    } else if !st.recovered[rank]
                        && rank != sc.victim
                        && coll == sc.aborted_coll
                        && victim_dead
                    {
                        // Timed-hop failure: abandon the collective
                        // and enter the recovery program.
                        let mut next = st.clone();
                        next.recovered[rank] = true;
                        next.pcs[rank] = 0;
                        enabled += 1;
                        push(next, &mut out);
                    } else if blocked.is_none() {
                        blocked = Some((rank, *op));
                    }
                }
            }
        }
        if enabled > 0 {
            continue;
        }
        let done = (0..size).all(|r| {
            if r == sc.victim {
                st.pcs[r] as usize == sc.main[r].len()
            } else {
                st.recovered[r] && st.pcs[r] as usize == sc.recovery[r].len()
            }
        });
        if done {
            out.terminals += 1;
            // p6': messages stranded on the aborted collective's
            // windows stay in real inboxes forever (their tag windows
            // are never reused); every other window must drain.
            let illegal: usize = st
                .chans
                .iter()
                .filter(|((_, _, coll, _), _)| *coll != sc.aborted_coll)
                .map(|(_, &n)| n as usize)
                .sum();
            if illegal > 0 {
                violations.push(Violation {
                    rule: P6,
                    detail: format!(
                        "{illegal} message(s) outside the aborted collective still \
                         in flight at a completed terminal of the {size}-rank world"
                    ),
                });
            }
        } else if let Some((rank, op)) = blocked {
            let what = match op {
                MOp::Recv { from, coll, phase } => {
                    format!("recv(from {from}, coll {coll}, window {phase})")
                }
                MOp::Send { .. } => "send".to_string(),
            };
            violations.push(Violation {
                rule: P5,
                detail: format!(
                    "deadlock in the {size}-rank recovery world: rank {rank} wedged at {what}"
                ),
            });
        } else {
            // A survivor ran off the end of the killed collective
            // without aborting — it can never join recovery, so the
            // run cannot complete.
            violations.push(Violation {
                rule: P5,
                detail: format!(
                    "a survivor of the {size}-rank recovery world completed the \
                     killed collective and never entered recovery"
                ),
            });
        }
    }
    violations.sort();
    violations.dedup();
    out.violations = violations;
    out
}

/// The checked recovery worlds: both modes at 2, 3, and 4 ranks, one
/// kill budget, every `(victim, collective-entry)` placement. Each
/// world aggregates its placements' state counts and violations.
pub fn check_recovery_worlds() -> Vec<DecentralWorld> {
    let mut out = Vec::new();
    for mode in [DMode::Ring, DMode::Tree] {
        for ranks in [2usize, 3, 4] {
            let mut agg = DecentralOutcome::default();
            let mut placements = 0usize;
            for victim in 0..ranks {
                for kill_at in 0..KILL_WINDOWS {
                    let sc = recovery_scenario(mode, ranks, victim, kill_at);
                    let o = explore_recovery(&sc);
                    agg.states += o.states;
                    agg.transitions += o.transitions;
                    agg.terminals += o.terminals;
                    for mut v in o.violations {
                        v.detail = format!(
                            "victim {victim} killed entering collective {kill_at}: {}",
                            v.detail
                        );
                        agg.violations.push(v);
                    }
                    placements += 1;
                }
            }
            out.push(DecentralWorld {
                mode,
                ranks,
                kill_placements: placements,
                outcome: agg,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Mutation self-test
// ---------------------------------------------------------------------------

/// One seeded masterless-protocol bug, applied to the generated
/// 3-rank micro-step programs.
struct DMutation {
    name: &'static str,
    expected_rule: &'static str,
    summary: &'static str,
    mode: DMode,
    apply: fn(&mut Vec<Vec<MOp>>),
}

const MUT_RANKS: usize = 3;

fn decentral_mutations() -> Vec<DMutation> {
    vec![
        DMutation {
            name: "ring-wrong-neighbor",
            expected_rule: P5,
            summary: "one rank's reduce-scatter hops send upstream instead of downstream",
            mode: DMode::Ring,
            apply: |progs| {
                for op in progs[1].iter_mut() {
                    if let MOp::Send {
                        to,
                        coll: 0,
                        phase: 1,
                    } = op
                    {
                        // prev(1) instead of next(1) on the 3-ring.
                        *to = 0;
                    }
                }
            },
        },
        DMutation {
            name: "ring-skipped-hop",
            expected_rule: P5,
            summary: "one rank skips its first allgather forward, starving its successor",
            mode: DMode::Ring,
            apply: |progs| {
                if let Some(i) = progs[1].iter().position(|o| {
                    matches!(
                        o,
                        MOp::Send {
                            coll: 0,
                            phase: 2,
                            ..
                        }
                    )
                }) {
                    progs[1].remove(i);
                }
            },
        },
        DMutation {
            name: "ring-extra-step",
            expected_rule: P5,
            summary: "one rank runs an extra reduce-scatter hop nobody pairs with",
            mode: DMode::Ring,
            apply: |progs| {
                if let Some(i) = progs[0].iter().rposition(|o| {
                    matches!(
                        o,
                        MOp::Recv {
                            coll: 0,
                            phase: 1,
                            ..
                        }
                    )
                }) {
                    progs[0].insert(
                        i + 1,
                        MOp::Send {
                            to: 1,
                            coll: 0,
                            phase: 1,
                        },
                    );
                    progs[0].insert(
                        i + 2,
                        MOp::Recv {
                            from: 2,
                            coll: 0,
                            phase: 1,
                        },
                    );
                }
            },
        },
        DMutation {
            name: "ring-seq-skew",
            expected_rule: P5,
            summary: "one rank skips a whole collective, desynchronizing tag windows",
            mode: DMode::Ring,
            apply: |progs| {
                progs[2].retain(|o| {
                    !matches!(o, MOp::Send { coll: 0, .. } | MOp::Recv { coll: 0, .. })
                });
            },
        },
        DMutation {
            name: "ring-barrier-dropped",
            expected_rule: P5,
            summary: "one rank exits without joining the closing dissemination barrier",
            mode: DMode::Ring,
            apply: |progs| {
                let c = CANONICAL_ALLREDUCES;
                progs[0].retain(|o| match o {
                    MOp::Send { coll, .. } | MOp::Recv { coll, .. } => *coll != c,
                });
            },
        },
        DMutation {
            name: "ring-stray-final-send",
            expected_rule: P6,
            summary: "one rank emits a trailing message nobody ever receives",
            mode: DMode::Ring,
            apply: |progs| {
                progs[0].push(MOp::Send {
                    to: 1,
                    coll: CANONICAL_ALLREDUCES,
                    phase: 2,
                });
            },
        },
        DMutation {
            name: "tree-wrong-root",
            expected_rule: P6,
            summary: "one rank broadcasts as if it were the root, stranding the real root's sends",
            mode: DMode::Tree,
            apply: |progs| {
                // Rank 1 runs the broadcast half of collective 0 as the
                // vrank-0 root of a root-1 tree (sends to ranks 0 and
                // 2) instead of receiving from rank 0. Every rank
                // still completes — the real root's message to rank 1
                // and both stray sends are left in flight.
                if let Some(i) = progs[1].iter().position(|o| {
                    matches!(
                        o,
                        MOp::Recv {
                            coll: 0,
                            phase: 2,
                            ..
                        }
                    )
                }) {
                    progs[1].splice(
                        i..i + 1,
                        [
                            MOp::Send {
                                to: 0,
                                coll: 0,
                                phase: 2,
                            },
                            MOp::Send {
                                to: 2,
                                coll: 0,
                                phase: 2,
                            },
                        ],
                    );
                }
            },
        },
    ]
}

/// One seeded recovery-protocol bug, applied to the per-rank recovery
/// programs of the fixed 4-rank ring scenario (victim 1 killed
/// entering collective 1 → survivors `{0, 2, 3}`, coordinator 0).
struct DRecoveryMutation {
    name: &'static str,
    expected_rule: &'static str,
    summary: &'static str,
    apply: fn(&mut RecoveryScenario),
}

const REC_MUT_RANKS: usize = 4;
const REC_MUT_VICTIM: usize = 1;

fn recovery_mutations() -> Vec<DRecoveryMutation> {
    vec![
        DRecoveryMutation {
            name: "recovery-wrong-coordinator",
            expected_rule: P5,
            summary: "one survivor reports to a mid-ring peer instead of the lowest live rank",
            apply: |sc| {
                for op in sc.recovery[3].iter_mut() {
                    if let MOp::Send {
                        to,
                        coll: REC_MEMBER,
                        phase: 1,
                    } = op
                    {
                        *to = 2;
                    }
                }
            },
        },
        DRecoveryMutation {
            name: "recovery-skipped-report",
            expected_rule: P5,
            summary: "one survivor joins recovery without reporting, starving the coordinator",
            apply: |sc| {
                sc.recovery[2].retain(|o| {
                    !matches!(
                        o,
                        MOp::Send {
                            coll: REC_MEMBER,
                            phase: 1,
                            ..
                        }
                    )
                });
            },
        },
        DRecoveryMutation {
            name: "recovery-missing-agree",
            expected_rule: P5,
            summary: "the coordinator never sends one survivor the agreed membership",
            apply: |sc| {
                sc.recovery[0].retain(|o| {
                    !matches!(
                        o,
                        MOp::Send {
                            to: 3,
                            coll: REC_MEMBER,
                            phase: 2,
                        }
                    )
                });
            },
        },
        DRecoveryMutation {
            name: "reshard-to-dead",
            expected_rule: P5,
            summary: "the coordinator ships an orphaned shard to the dead rank",
            apply: |sc| {
                for op in sc.recovery[0].iter_mut() {
                    if let MOp::Send {
                        to: to @ 2,
                        coll: REC_SHARD,
                        ..
                    } = op
                    {
                        *to = REC_MUT_VICTIM as u8;
                        break;
                    }
                }
            },
        },
        DRecoveryMutation {
            name: "recovery-no-restitch",
            expected_rule: P5,
            summary: "one survivor re-enters the old full ring, waiting on its dead neighbor",
            apply: |sc| {
                // Rank 2's re-stitched ring neighbors are {0, 3}; the
                // old 4-ring has it receiving from the dead rank 1.
                let old_parts: Vec<usize> = (0..REC_MUT_RANKS).collect();
                let mut old_ring = Vec::new();
                lower_ring(REC_RESUME, 2, &old_parts, &mut old_ring);
                let prog = &mut sc.recovery[2];
                let at = prog
                    .iter()
                    .position(|o| {
                        matches!(
                            o,
                            MOp::Send {
                                coll: REC_RESUME,
                                ..
                            }
                        )
                    })
                    // pdnn-lint: allow(l3-no-unwrap): every survivor's recovery program carries a resumed-schedule segment; a silently unapplied mutation would surface as an uncaught mutation, so stop loudly here instead
                    .unwrap();
                let end = at
                    + prog[at..]
                        .iter()
                        .take_while(|o| {
                            matches!(
                                o,
                                MOp::Send {
                                    coll: REC_RESUME,
                                    ..
                                } | MOp::Recv {
                                    coll: REC_RESUME,
                                    ..
                                }
                            )
                        })
                        .count();
                prog.splice(at..end, old_ring);
            },
        },
    ]
}

/// Explore every masterless mutant: the fault-free battery on the
/// 3-rank world plus the recovery battery on the 4-rank kill
/// scenario. The results join the master-protocol battery in the
/// report and the `verify.sh` caught-them-all gate.
pub fn run_decentral_mutations() -> Vec<MutationResult> {
    let mut results: Vec<MutationResult> = decentral_mutations()
        .into_iter()
        .map(|m| {
            let mut progs = programs(m.mode, MUT_RANKS);
            (m.apply)(&mut progs);
            let out = explore_programs(&progs);
            let mut fired: Vec<&'static str> = out.violations.iter().map(|v| v.rule).collect();
            fired.dedup();
            MutationResult {
                name: m.name,
                expected_rule: m.expected_rule,
                summary: m.summary,
                caught: fired.contains(&m.expected_rule),
                fired_rules: fired,
            }
        })
        .collect();
    for m in recovery_mutations() {
        let mut sc = recovery_scenario(DMode::Ring, REC_MUT_RANKS, REC_MUT_VICTIM, 1);
        (m.apply)(&mut sc);
        let out = explore_recovery(&sc);
        let mut fired: Vec<&'static str> = out.violations.iter().map(|v| v.rule).collect();
        fired.dedup();
        results.push(MutationResult {
            name: m.name,
            expected_rule: m.expected_rule,
            summary: m.summary,
            caught: fired.contains(&m.expected_rule),
            fired_rules: fired,
        });
    }
    results
}

// ---------------------------------------------------------------------------
// Trace conformance
// ---------------------------------------------------------------------------

/// Shape of one collective event for the SPMD cross-rank check.
type CollShape = (&'static str, &'static str, usize);

fn coll_shape(ev: &CommEvent) -> Option<CollShape> {
    match ev {
        CommEvent::Coll { op, kind, len, .. } => Some((op, kind, *len)),
        _ => None,
    }
}

/// Replay one masterless rank's stream against the `DecentralProblem`
/// phase grammar: `(f32-allreduce f64-allreduce? | f64-allreduce)*
/// barrier`, with every allreduce carrying the mode's op name. The
/// f64 metadata chaser is optional per f32 payload: the gradient pair
/// always carries one, but curvature products agree on the sample's
/// frame count once per draw and skip the chaser afterwards
/// (`DecentralProblem::sample_frames_total`).
fn replay_decentral_rank(mode: DMode, rank: usize, events: &[CommEvent]) -> RankReplay {
    let total = events.len();
    let want = mode.op_name();
    let fail = |pos: usize, msg: String| RankReplay {
        rank,
        consumed: pos,
        total,
        completed: false,
        accepted: false,
        error: Some(format!("event {pos}: {msg}")),
    };
    let mut pos = 0usize;
    let mut allreduces = 0usize;
    while pos < total {
        let (op, kind) = match &events[pos] {
            CommEvent::Coll {
                op,
                kind,
                root: 0,
                ok: true,
                ..
            } => (*op, *kind),
            other => {
                let what = match other {
                    CommEvent::Coll { op, root, .. } => {
                        format!("collective {op} with root {root} or a failed verdict")
                    }
                    CommEvent::Send { to, tag, .. } => format!("p2p send(to {to}, tag {tag})"),
                    CommEvent::Recv { from, tag, .. } => {
                        format!("p2p recv(from {from}, tag {tag})")
                    }
                };
                return fail(pos, format!("masterless stream contains {what}"));
            }
        };
        match (op, kind) {
            ("barrier", _) => {
                if pos + 1 != total {
                    return fail(
                        pos,
                        format!("{} event(s) after the closing barrier", total - pos - 1),
                    );
                }
                if allreduces == 0 {
                    return fail(pos, "barrier before any allreduce".to_string());
                }
                return RankReplay {
                    rank,
                    consumed: total,
                    total,
                    completed: true,
                    accepted: true,
                    error: None,
                };
            }
            (o, "F32") | (o, "F64") if o == want => {
                allreduces += 1;
                pos += 1;
            }
            (o, k) => {
                return fail(
                    pos,
                    format!("expected {want} or barrier, saw {o} ({k} payload)"),
                )
            }
        }
    }
    fail(pos, "stream ended without the closing barrier".to_string())
}

/// Replay a whole masterless run. On top of the per-rank grammar,
/// enforces the SPMD invariant: every rank's collective sequence must
/// be shape-identical (op, payload kind, element count) to rank 0's —
/// the property the replicated-optimizer design rests on.
pub fn replay_decentral_run(mode: DMode, rank_events: &[&[CommEvent]]) -> RunReplay {
    let mut ranks = Vec::new();
    let mut unmapped = 0usize;
    let mut p2p_events = 0usize;
    let mut coll_events = 0usize;
    let shape0: Vec<CollShape> = rank_events
        .first()
        .map(|evs| evs.iter().filter_map(coll_shape).collect())
        .unwrap_or_default();
    for (rank, events) in rank_events.iter().enumerate() {
        for ev in events.iter() {
            match ev {
                CommEvent::Coll { .. } => coll_events += 1,
                _ => p2p_events += 1,
            }
        }
        let mut r = replay_decentral_rank(mode, rank, events);
        if r.accepted {
            let shape: Vec<CollShape> = events.iter().filter_map(coll_shape).collect();
            if shape != shape0 {
                let at = shape
                    .iter()
                    .zip(&shape0)
                    .position(|(a, b)| a != b)
                    .unwrap_or(shape.len().min(shape0.len()));
                r.accepted = false;
                r.completed = false;
                r.consumed = at;
                r.error = Some(format!(
                    "SPMD divergence: collective {at} differs in shape from rank 0"
                ));
            }
        }
        unmapped += r.total - r.consumed;
        ranks.push(r);
    }
    let accepted = !ranks.is_empty() && ranks.iter().all(|r| r.accepted && r.completed);
    RunReplay {
        ranks,
        unmapped,
        accepted,
        p2p_events,
        coll_events,
    }
}

/// The recovery sub-protocol's point-to-point tags, mirroring
/// `crates/core/src/distributed.rs`: shard shipment, membership
/// report, membership agreement.
const TAG_LOAD_DATA: u64 = 17;
const TAG_RECOVER_REPORT: u64 = 18;
const TAG_RECOVER_AGREE: u64 = 19;

/// Replay one rank of a *killed* masterless run. The victim's stream
/// is a silent clean prefix (the kill fires at `fault_gate`, before
/// any event for the fatal collective is recorded). A survivor's
/// stream is the clean prefix, the aborted collective (`ok: false`),
/// recovery point-to-point traffic on the report/agree/shard tags,
/// and the resumed schedule — re-stitched over the survivors, so
/// rooted at `post_root` (the lowest survivor) — closed by the
/// survivor barrier.
fn replay_decentral_faulted_rank(
    mode: DMode,
    rank: usize,
    events: &[CommEvent],
    is_victim: bool,
    post_root: usize,
) -> RankReplay {
    let total = events.len();
    let want = mode.op_name();
    let fail = |pos: usize, msg: String| RankReplay {
        rank,
        consumed: pos,
        total,
        completed: false,
        accepted: false,
        error: Some(format!("event {pos}: {msg}")),
    };
    let accept = |consumed: usize| RankReplay {
        rank,
        consumed,
        total,
        completed: true,
        accepted: true,
        error: None,
    };
    // `root` is the expected root of healthy collectives: 0 until the
    // first abort, the lowest survivor afterwards.
    let mut root = 0usize;
    let mut aborted = false;
    let mut pos = 0usize;
    while pos < total {
        match &events[pos] {
            // A failed collective of this mode: the moment a timed
            // hop surfaced the death. Only survivors see it. The
            // failure may span several consecutive collectives — once
            // the peer is known dead, every further entry fails fast
            // until the error reaches the recovery arm (e.g. the f64
            // chaser of a killed f32 gradient exchange) — after which
            // recovery p2p follows.
            CommEvent::Coll { op, ok: false, .. } if *op == want && !is_victim => {
                if aborted {
                    return fail(pos, "second aborted collective in one stream".to_string());
                }
                aborted = true;
                root = post_root;
                pos += 1;
                while matches!(
                    events.get(pos),
                    Some(CommEvent::Coll { op, ok: false, .. }) if *op == want
                ) {
                    pos += 1;
                }
                // Recovery traffic: membership round and reshard
                // shipments, the only p2p a masterless stream may
                // ever contain.
                while let Some(ev @ (CommEvent::Send { tag, .. } | CommEvent::Recv { tag, .. })) =
                    events.get(pos)
                {
                    if !matches!(*tag, TAG_LOAD_DATA | TAG_RECOVER_REPORT | TAG_RECOVER_AGREE) {
                        return fail(
                            pos,
                            format!("non-recovery p2p event during recovery: {ev:?}"),
                        );
                    }
                    pos += 1;
                }
            }
            CommEvent::Coll {
                op: "barrier",
                root: r,
                ok: true,
                ..
            } => {
                if is_victim {
                    return fail(pos, "the victim's stream reaches the barrier".to_string());
                }
                if !aborted {
                    return fail(
                        pos,
                        "survivor stream has a barrier but no aborted collective".to_string(),
                    );
                }
                if *r != root {
                    return fail(pos, format!("barrier rooted at {r}, expected {root}"));
                }
                if pos + 1 != total {
                    return fail(
                        pos,
                        format!("{} event(s) after the closing barrier", total - pos - 1),
                    );
                }
                return accept(total);
            }
            CommEvent::Coll {
                op,
                kind,
                root: r,
                ok: true,
                ..
            } if *op == want && *r == root => {
                match *kind {
                    // Payload allreduce or (optional) f64 metadata
                    // chaser: a following aborted collective or the
                    // victim's silent end of stream are handled by the
                    // outer loop's other arms.
                    "F32" | "F64" => pos += 1,
                    other => return fail(pos, format!("{op} carries unexpected {other} payload")),
                }
            }
            other => {
                return fail(
                    pos,
                    format!("unexpected event in a killed masterless stream: {other:?}"),
                )
            }
        }
    }
    if is_victim {
        // The whole stream was clean collectives: the silent death.
        return accept(total);
    }
    fail(
        pos,
        if aborted {
            "survivor stream ended without the closing barrier".to_string()
        } else {
            "survivor stream shows neither an aborted collective nor a barrier".to_string()
        },
    )
}

/// Replay a whole *killed* masterless run: per-rank faulted grammar
/// plus the SPMD invariants of the recovery design — every survivor's
/// collective shape sequence is identical, and each victim's stream
/// is a shape-prefix of it (the victim ran the same replicated
/// program until its death at a collective entry).
pub fn replay_decentral_faulted_run(
    mode: DMode,
    rank_events: &[&[CommEvent]],
    dead_ranks: &[usize],
) -> RunReplay {
    let post_root = (0..rank_events.len())
        .find(|r| !dead_ranks.contains(r))
        .unwrap_or(0);
    let shape0: Vec<CollShape> = rank_events
        .iter()
        .enumerate()
        .find(|(r, _)| !dead_ranks.contains(r))
        .map(|(_, evs)| evs.iter().filter_map(coll_shape).collect())
        .unwrap_or_default();
    let mut ranks = Vec::new();
    let mut unmapped = 0usize;
    let mut p2p_events = 0usize;
    let mut coll_events = 0usize;
    for (rank, events) in rank_events.iter().enumerate() {
        for ev in events.iter() {
            match ev {
                CommEvent::Coll { .. } => coll_events += 1,
                _ => p2p_events += 1,
            }
        }
        let is_victim = dead_ranks.contains(&rank);
        let mut r = replay_decentral_faulted_rank(mode, rank, events, is_victim, post_root);
        if r.accepted {
            let shape: Vec<CollShape> = events.iter().filter_map(coll_shape).collect();
            let ok = if is_victim {
                shape0.starts_with(&shape) && shape.len() < shape0.len()
            } else {
                shape == shape0
            };
            if !ok {
                let at = shape
                    .iter()
                    .zip(&shape0)
                    .position(|(a, b)| a != b)
                    .unwrap_or(shape.len().min(shape0.len()));
                r.accepted = false;
                r.completed = false;
                r.consumed = at;
                r.error = Some(format!(
                    "SPMD divergence: collective {at} differs in shape from the \
                     first survivor"
                ));
            }
        }
        unmapped += r.total - r.consumed;
        ranks.push(r);
    }
    let accepted = !ranks.is_empty() && ranks.iter().all(|r| r.accepted && r.completed);
    RunReplay {
        ranks,
        unmapped,
        accepted,
        p2p_events,
        coll_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_are_clean_on_small_worlds() {
        for w in check_worlds() {
            assert!(
                w.outcome.violations.is_empty(),
                "{} mode, {} ranks: {:?}",
                w.mode.label(),
                w.ranks,
                w.outcome.violations
            );
            assert!(w.outcome.states > 1);
            assert!(
                w.outcome.terminals >= 1,
                "{} mode, {} ranks never completed",
                w.mode.label(),
                w.ranks
            );
        }
    }

    #[test]
    fn micro_programs_conserve_messages_pairwise() {
        // Every (src, dst, coll, window) send has exactly one matching
        // recv — the static invariant behind the p6 verdict.
        for mode in [DMode::Ring, DMode::Tree] {
            for size in [2usize, 3, 4, 5, 8] {
                let progs = programs(mode, size);
                let mut balance: BTreeMap<(u8, u8, u8, u8), i64> = BTreeMap::new();
                for (rank, prog) in progs.iter().enumerate() {
                    for op in prog {
                        match *op {
                            MOp::Send { to, coll, phase } => {
                                *balance.entry((rank as u8, to, coll, phase)).or_default() += 1;
                            }
                            MOp::Recv { from, coll, phase } => {
                                *balance.entry((from, rank as u8, coll, phase)).or_default() -= 1;
                            }
                        }
                    }
                }
                assert!(
                    balance.values().all(|&v| v == 0),
                    "{} mode, {size} ranks: unbalanced channels {balance:?}",
                    mode.label()
                );
            }
        }
    }

    #[test]
    fn ring_programs_match_the_implementation_hop_count() {
        // 2·(P−1) hops per allreduce per rank (reduce-scatter +
        // allgather), each hop one send and one recv.
        for size in [2usize, 3, 4, 8] {
            let progs = programs(DMode::Ring, size);
            let barrier_ops = 2 * (usize::BITS - (size - 1).leading_zeros()) as usize;
            for prog in &progs {
                assert_eq!(
                    prog.len(),
                    CANONICAL_ALLREDUCES as usize * 4 * (size - 1) + barrier_ops
                );
            }
        }
    }

    #[test]
    fn recovery_worlds_are_clean_at_every_kill_placement() {
        for w in check_recovery_worlds() {
            assert!(
                w.outcome.violations.is_empty(),
                "{} mode, {} ranks: {:?}",
                w.mode.label(),
                w.ranks,
                w.outcome.violations
            );
            assert_eq!(
                w.kill_placements,
                w.ranks * KILL_WINDOWS as usize,
                "{} mode, {} ranks: not every (victim, entry) placement explored",
                w.mode.label(),
                w.ranks
            );
            assert!(
                w.outcome.terminals >= w.kill_placements,
                "{} mode, {} ranks: some placement never recovered to completion",
                w.mode.label(),
                w.ranks
            );
        }
    }

    #[test]
    fn survivors_abort_at_every_feasible_hop() {
        // With victim 1 dead from the first collective on the 4-ring,
        // the abort transition fires from many distinct survivor
        // positions: the interleaving count must strictly exceed the
        // single-abort-point lower bound (one terminal per placement
        // would mean a deterministic abort schedule).
        let sc = recovery_scenario(DMode::Ring, 4, 1, 0);
        let out = explore_recovery(&sc);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(
            out.terminals > 1,
            "only {} terminal(s): abort nondeterminism collapsed",
            out.terminals
        );
    }

    #[test]
    fn every_decentral_mutation_is_caught() {
        let results = run_decentral_mutations();
        assert!(results.len() >= 12, "battery shrank to {}", results.len());
        for name in [
            "recovery-wrong-coordinator",
            "recovery-skipped-report",
            "recovery-missing-agree",
            "reshard-to-dead",
            "recovery-no-restitch",
        ] {
            assert!(
                results.iter().any(|r| r.name == name),
                "recovery mutation `{name}` missing from the battery"
            );
        }
        let missed: Vec<String> = results
            .iter()
            .filter(|r| !r.caught)
            .map(|r| {
                format!(
                    "{} (expected {}, fired {:?})",
                    r.name, r.expected_rule, r.fired_rules
                )
            })
            .collect();
        assert!(missed.is_empty(), "missed mutations: {missed:?}");
    }

    fn ar(mode: DMode, kind: &'static str, len: usize) -> CommEvent {
        CommEvent::Coll {
            op: mode.op_name(),
            root: 0,
            kind,
            len,
            first: None,
            ok: true,
        }
    }

    fn barrier() -> CommEvent {
        CommEvent::Coll {
            op: "barrier",
            root: 0,
            kind: "Empty",
            len: 0,
            first: None,
            ok: true,
        }
    }

    #[test]
    fn a_well_formed_ring_stream_conforms() {
        let stream = vec![
            ar(DMode::Ring, "F32", 100),
            ar(DMode::Ring, "F64", 2),
            ar(DMode::Ring, "F64", 3),
            barrier(),
        ];
        let run = replay_decentral_run(DMode::Ring, &[&stream, &stream, &stream]);
        assert!(run.accepted, "{:?}", run.ranks[0].error);
        assert_eq!(run.unmapped, 0);
        assert_eq!(run.p2p_events, 0);
    }

    #[test]
    fn wrong_mode_and_p2p_and_divergence_are_rejected() {
        let good = vec![ar(DMode::Ring, "F64", 3), barrier()];
        // Tree ops in a ring-mode replay.
        let tree = vec![ar(DMode::Tree, "F64", 3), barrier()];
        let run = replay_decentral_run(DMode::Ring, &[&good, &tree]);
        assert!(!run.accepted);
        assert!(run.ranks[1]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("allreduce_tree"));
        // A stray p2p event.
        let p2p = vec![
            CommEvent::Send {
                to: 1,
                tag: 9,
                kind: "F32",
                len: 4,
            },
            barrier(),
        ];
        let run = replay_decentral_run(DMode::Ring, &[&good, &p2p]);
        assert!(!run.accepted);
        assert_eq!(run.p2p_events, 1);
        // Shape-divergent but individually grammatical streams.
        let other = vec![ar(DMode::Ring, "F64", 4), barrier()];
        let run = replay_decentral_run(DMode::Ring, &[&good, &other]);
        assert!(!run.accepted);
        assert!(run.ranks[1].error.as_deref().unwrap_or("").contains("SPMD"));
    }

    #[test]
    fn truncated_and_trailing_streams_are_rejected() {
        let no_barrier = vec![ar(DMode::Ring, "F64", 3)];
        let run = replay_decentral_run(DMode::Ring, &[&no_barrier]);
        assert!(!run.accepted);
        let trailing = vec![
            ar(DMode::Ring, "F64", 3),
            barrier(),
            ar(DMode::Ring, "F64", 3),
        ];
        let run = replay_decentral_run(DMode::Ring, &[&trailing]);
        assert!(!run.accepted);
        assert!(run.unmapped > 0);
        // An f32 allreduce with no f64 chaser is legal (curvature
        // products reuse the sample's agreed frame count), but a
        // rooted collective in a masterless stream is not.
        let bare = vec![ar(DMode::Ring, "F32", 100), barrier()];
        let run = replay_decentral_run(DMode::Ring, &[&bare]);
        assert!(run.accepted, "{:?}", run.ranks[0].error);
        let rooted = vec![
            CommEvent::Coll {
                op: DMode::Ring.op_name(),
                root: 1,
                kind: "F32",
                len: 100,
                first: None,
                ok: true,
            },
            barrier(),
        ];
        let run = replay_decentral_run(DMode::Ring, &[&rooted]);
        assert!(!run.accepted);
    }

    fn arf(mode: DMode, kind: &'static str, len: usize, root: usize, ok: bool) -> CommEvent {
        CommEvent::Coll {
            op: mode.op_name(),
            root,
            kind,
            len,
            first: None,
            ok,
        }
    }

    fn barrier_at(root: usize) -> CommEvent {
        CommEvent::Coll {
            op: "barrier",
            root,
            kind: "Empty",
            len: 0,
            first: None,
            ok: true,
        }
    }

    fn p2p_send(to: usize, tag: u64) -> CommEvent {
        CommEvent::Send {
            to,
            tag,
            kind: "U64",
            len: 1,
        }
    }

    fn p2p_recv(from: usize, tag: u64) -> CommEvent {
        CommEvent::Recv {
            from,
            tag,
            kind: "U64",
            len: 1,
        }
    }

    /// A killed 3-rank ring with victim 0: streams the faulted
    /// grammar must accept — silent victim prefix, aborted collective
    /// on the survivors, recovery p2p on tags 17/18/19, resumed
    /// schedule re-rooted at survivor 1.
    fn killed_ring_streams() -> (Vec<CommEvent>, Vec<CommEvent>, Vec<CommEvent>) {
        let m = DMode::Ring;
        let clean = [arf(m, "F32", 100, 0, true), arf(m, "F64", 2, 0, true)];
        let resumed = [
            arf(m, "F32", 100, 1, true),
            arf(m, "F64", 2, 1, true),
            barrier_at(1),
        ];
        let victim = clean.to_vec();
        // Survivor 1 is the new coordinator: collects rank 2's
        // report, agrees, ships the two reshard payloads.
        let mut coord = clean.to_vec();
        coord.push(arf(m, "F32", 100, 0, false));
        coord.extend([
            p2p_recv(2, TAG_RECOVER_REPORT),
            p2p_send(2, TAG_RECOVER_AGREE),
            p2p_send(2, TAG_LOAD_DATA),
            p2p_send(2, TAG_LOAD_DATA),
        ]);
        coord.extend(resumed.clone());
        let mut peer = clean.to_vec();
        peer.push(arf(m, "F32", 100, 0, false));
        peer.extend([
            p2p_send(1, TAG_RECOVER_REPORT),
            p2p_recv(1, TAG_RECOVER_AGREE),
            p2p_recv(1, TAG_LOAD_DATA),
            p2p_recv(1, TAG_LOAD_DATA),
        ]);
        peer.extend(resumed);
        (victim, coord, peer)
    }

    #[test]
    fn a_killed_ring_trace_conforms_with_zero_unmapped() {
        let (victim, coord, peer) = killed_ring_streams();
        let run = replay_decentral_faulted_run(DMode::Ring, &[&victim, &coord, &peer], &[0]);
        for r in &run.ranks {
            assert!(r.accepted, "rank {}: {:?}", r.rank, r.error);
        }
        assert!(run.accepted);
        assert_eq!(run.unmapped, 0);
        assert_eq!(run.p2p_events, 8);
    }

    #[test]
    fn faulted_grammar_rejects_malformed_recovery() {
        let (victim, coord, peer) = killed_ring_streams();
        // A non-recovery p2p tag inside the recovery window.
        let mut stray = coord.clone();
        stray[3] = p2p_recv(2, 9);
        let run = replay_decentral_faulted_run(DMode::Ring, &[&victim, &stray, &peer], &[0]);
        assert!(!run.accepted);
        assert!(run.ranks[1]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("non-recovery p2p"));
        // A survivor that never aborted yet reaches the barrier.
        let healthy: Vec<CommEvent> = victim.iter().cloned().chain([barrier_at(1)]).collect();
        let run = replay_decentral_faulted_run(DMode::Ring, &[&victim, &coord, &healthy], &[0]);
        assert!(!run.accepted);
        // The resumed schedule keeps the dead root.
        let mut stale_root = coord.clone();
        let n = stale_root.len();
        stale_root[n - 3] = arf(DMode::Ring, "F32", 100, 0, true);
        stale_root[n - 2] = arf(DMode::Ring, "F64", 2, 0, true);
        let run = replay_decentral_faulted_run(DMode::Ring, &[&victim, &stale_root, &peer], &[0]);
        assert!(!run.accepted);
        // The victim's stream must be a strict shape-prefix of the
        // survivors' — a diverging victim is an SPMD violation.
        let long_victim: Vec<CommEvent> = victim
            .iter()
            .cloned()
            .chain([arf(DMode::Ring, "F64", 7, 0, true)])
            .collect();
        let run = replay_decentral_faulted_run(DMode::Ring, &[&long_victim, &coord, &peer], &[0]);
        assert!(!run.accepted);
        assert!(run.ranks[0].error.as_deref().unwrap_or("").contains("SPMD"));
    }
}
