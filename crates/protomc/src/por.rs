//! Sleep-set partial-order reduction.
//!
//! The unreduced explorer ([`crate::explorer::explore`]) enumerates
//! every interleaving; most of them differ only in the order of
//! independent micro-steps (e.g. the master's fan-out send to worker
//! 1 commutes with worker 2's gradient send). Sleep sets (Godefroid)
//! prune those commuting re-orderings: after exploring transition `t`
//! from a state, every sibling explored later puts `t` to sleep in
//! its subtree for as long as the executed transitions stay
//! independent of `t` — the `t`-first orderings have already been
//! covered.
//!
//! Independence is footprint disjointness over {rank program
//! counters} ∪ {channels}: a send touches its own rank and the
//! outgoing channel; a receive touches its own rank, the channel,
//! and the *peer's* rank (a kill of the peer changes a drain's
//! outcome, so kills and receives from the victim must stay
//! dependent); a kill touches the victim's rank.
//!
//! State caching keeps the sleep sets sound across DAG re-visits: a
//! state is re-expanded unless an earlier expansion used a sleep set
//! no larger than the current one (that earlier visit covered a
//! superset of the behaviors). Every reachable *state* is still
//! visited, so the deadlock/terminal property checks see the same
//! verdicts as the full run — [`crate::run_check`] asserts that
//! agreement on every world it proves.

use crate::explorer::{
    apply, classify, independent, kill_site, transitions, ExploreOutcome, Footprint,
    State as ProtoState, TransId, Violation,
};
use crate::spec::ProtoSpec;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};

type Sleep = Vec<(TransId, Footprint)>;

struct Frame {
    state: ProtoState,
    /// Canonical encoding of `state` (edge-dedup key component).
    key: Vec<u8>,
    trans: Vec<(TransId, Footprint)>,
    idx: usize,
    sleep: Sleep,
    /// Siblings already fully explored from this state.
    done: Sleep,
    /// Transition (and footprint) that produced this frame, used to
    /// extend the parent's `done` set when the subtree finishes.
    via: Option<(TransId, Footprint)>,
}

fn sleep_ids(sleep: &Sleep) -> BTreeSet<TransId> {
    sleep.iter().map(|(id, _)| *id).collect()
}

/// Hash an explored edge (source state, transition) down to 64 bits
/// for the distinct-transition count. `DefaultHasher::new()` uses
/// fixed keys, so counts are deterministic across runs.
fn edge_key(state_key: &[u8], id: TransId) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    state_key.hash(&mut h);
    id.hash(&mut h);
    h.finish()
}

/// Sleep-set depth-first exploration. Verdict-equivalent to
/// [`crate::explorer::explore`] but with commuting interleavings
/// pruned; the caller compares both outcomes.
pub fn explore_reduced(spec: &ProtoSpec, workers: usize, budget: u8) -> ExploreOutcome {
    let init = ProtoState::init(spec, workers, budget);
    // Sleep-set footprints each distinct state has been expanded
    // under. A new visit is redundant iff some recorded set is a
    // subset of its sleep set.
    let mut visited: HashMap<Vec<u8>, Vec<BTreeSet<TransId>>> = HashMap::new();
    // Distinct (state, transition) edges explored. A state re-expanded
    // under an incomparable sleep set re-walks some edges; counting
    // raw steps would overstate the work relative to the full run's
    // once-per-edge enumeration.
    let mut edges: HashSet<u64> = HashSet::new();
    let mut terminals = 0usize;
    let mut violations = BTreeSet::new();
    let mut kill_sites = BTreeSet::new();

    let init_key = init.encode();
    visited.insert(init_key.clone(), vec![BTreeSet::new()]);
    let mut stack: Vec<Frame> = Vec::new();
    push_frame(
        spec,
        init,
        init_key,
        Vec::new(),
        None,
        true,
        &mut stack,
        &mut terminals,
        &mut violations,
    );

    while let Some(top) = stack.last_mut() {
        let next = loop {
            if top.idx >= top.trans.len() {
                break None;
            }
            let (id, fp) = top.trans[top.idx];
            top.idx += 1;
            if top.sleep.iter().any(|(z, _)| *z == id) {
                continue;
            }
            break Some((id, fp));
        };
        let (id, fp) = match next {
            Some(t) => t,
            None => {
                // Subtree finished: wake the parent and record this
                // transition as explored there.
                let via = top.via;
                stack.pop();
                if let (Some(parent), Some(v)) = (stack.last_mut(), via) {
                    parent.done.push(v);
                }
                continue;
            }
        };
        if id.kill {
            kill_sites.insert(kill_site(&top.state, id.rank));
        }
        edges.insert(edge_key(&top.key, id));
        let child = apply(spec, &top.state, id);
        // Transitions independent of `id` that were already explored
        // (or inherited asleep) stay asleep in the child.
        let mut child_sleep: Sleep = Vec::new();
        for (z, zfp) in top.sleep.iter().chain(top.done.iter()) {
            if independent(zfp, &fp) {
                child_sleep.push((*z, *zfp));
            }
        }
        let ids = sleep_ids(&child_sleep);
        let child_key = child.encode();
        let recorded = visited.entry(child_key.clone()).or_default();
        if recorded.iter().any(|r| r.is_subset(&ids)) {
            continue;
        }
        let first_visit = recorded.is_empty();
        recorded.retain(|r| !ids.is_subset(r));
        recorded.push(ids);
        push_frame(
            spec,
            child,
            child_key,
            child_sleep,
            Some((id, fp)),
            first_visit,
            &mut stack,
            &mut terminals,
            &mut violations,
        );
    }

    ExploreOutcome {
        states: visited.len(),
        transitions: edges.len(),
        terminals,
        kill_placements: kill_sites.len(),
        violations: violations.into_iter().collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn push_frame(
    spec: &ProtoSpec,
    state: ProtoState,
    key: Vec<u8>,
    sleep: Sleep,
    via: Option<(TransId, Footprint)>,
    first_visit: bool,
    stack: &mut Vec<Frame>,
    terminals: &mut usize,
    violations: &mut BTreeSet<Violation>,
) {
    let trans = transitions(spec, &state);
    let prog_enabled = trans.iter().any(|(id, _)| !id.kill);
    // Properties depend on the state alone; classify once per
    // distinct state so terminal counts match the full run.
    if first_visit && classify(spec, &state, prog_enabled, violations) {
        *terminals += 1;
    }
    stack.push(Frame {
        state,
        key,
        trans,
        idx: 0,
        sleep,
        done: Vec::new(),
        via,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn workspace_spec() -> ProtoSpec {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(std::path::Path::to_path_buf)
            .unwrap_or_default();
        let outcome = pdnn_protocheck::run_static(&root).expect("surfaces readable");
        spec::compile(&outcome.model).expect("model compiles")
    }

    #[test]
    fn reduced_run_agrees_with_full_run_and_prunes_transitions() {
        let spec = workspace_spec();
        for (workers, budget) in [(1usize, 0u8), (1, 1), (2, 1)] {
            let full = crate::explorer::explore(&spec, workers, budget);
            let reduced = explore_reduced(&spec, workers, budget);
            assert_eq!(
                full.violations, reduced.violations,
                "verdicts diverge on {workers} workers, budget {budget}"
            );
            assert_eq!(
                full.kill_placements, reduced.kill_placements,
                "kill coverage diverges on {workers} workers"
            );
            assert!(
                reduced.transitions <= full.transitions,
                "reduction added transitions on {workers} workers: {} > {}",
                reduced.transitions,
                full.transitions
            );
            // On a genuinely concurrent world the reduction must bite.
            if workers == 2 {
                assert!(
                    reduced.transitions < full.transitions,
                    "sleep sets pruned nothing on the 3-rank world"
                );
            }
        }
    }

    /// Terminal counting: the reduced run visits every distinct
    /// state the full run visits (sleep sets prune transitions, not
    /// states), so terminal counts must agree exactly.
    #[test]
    fn reduced_run_sees_every_terminal() {
        let spec = workspace_spec();
        let full = crate::explorer::explore(&spec, 2, 1);
        let reduced = explore_reduced(&spec, 2, 1);
        assert_eq!(full.terminals, reduced.terminals);
        assert_eq!(full.states, reduced.states);
    }
}
