//! Mutation self-test: seed protocol bugs into the compiled spec and
//! require the explorer to flag each with the expected rule.
//!
//! Each mutation is the abstract image of a realistic editing mistake
//! in `distributed.rs` (dropping a collective from one role, adding an
//! extra one, unbalancing the startup rendezvous, breaking a recovery
//! step). A mutation is *caught* when exploring the mutated spec on
//! the 3-rank world with fault budget 1 fires the rule the mutation
//! was designed to break; the clean spec must fire none (checked by
//! the explorer's own tests and the CLI gate).

use crate::explorer::{explore, P5, P6, P7};
use crate::spec::{AOp, APeer, ProtoSpec};

/// One seeded protocol bug.
pub struct Mutation {
    pub name: &'static str,
    pub expected_rule: &'static str,
    /// What the mutation does, for the report.
    pub summary: &'static str,
    apply: fn(&mut ProtoSpec),
}

/// Outcome of exploring one mutated spec.
pub struct MutationResult {
    pub name: &'static str,
    pub expected_rule: &'static str,
    pub summary: &'static str,
    pub caught: bool,
    /// Rules that actually fired on the mutant.
    pub fired_rules: Vec<&'static str>,
}

fn grad(spec: &ProtoSpec) -> usize {
    spec.commands
        .iter()
        .position(|c| c.name == "CMD_GRADIENT")
        .unwrap_or(0)
}

fn gn(spec: &ProtoSpec) -> usize {
    spec.commands
        .iter()
        .position(|c| c.name == "CMD_GN")
        .unwrap_or(0)
}

fn sample(spec: &ProtoSpec) -> usize {
    spec.commands
        .iter()
        .position(|c| c.name == "CMD_SAMPLE")
        .unwrap_or(0)
}

fn pop_last_matching(ops: &mut Vec<AOp>, pred: fn(&AOp) -> bool) {
    if let Some(i) = ops.iter().rposition(pred) {
        ops.remove(i);
    }
}

/// The full mutation battery (≥ 12 per the acceptance gate).
pub fn mutations() -> Vec<Mutation> {
    vec![
        Mutation {
            name: "worker-drops-gradient-reduce",
            expected_rule: P5,
            summary: "worker arm skips its half of a gradient reduction",
            apply: |s| {
                let g = grad(s);
                pop_last_matching(&mut s.commands[g].worker, |o| {
                    matches!(o, AOp::Reduce { .. })
                });
            },
        },
        Mutation {
            name: "master-extra-gn-reduce",
            expected_rule: P5,
            summary: "master drains one more GN reduction than workers send",
            apply: |s| {
                let g = gn(s);
                s.commands[g].master.push(AOp::Reduce {
                    root: 0,
                    kind: pdnn_protocheck::model::ElemKind::F32,
                });
            },
        },
        Mutation {
            name: "worker-drops-theta-recv",
            expected_rule: P5,
            summary: "worker arm skips the SET_THETA broadcast receive",
            apply: |s| {
                let t = s.set_theta;
                pop_last_matching(&mut s.commands[t].worker, |o| {
                    matches!(o, AOp::Bcast { .. })
                });
            },
        },
        Mutation {
            name: "master-skips-shutdown-barrier",
            expected_rule: P5,
            summary: "master exits without joining the teardown barrier",
            apply: |s| {
                let d = s.shutdown;
                pop_last_matching(&mut s.commands[d].master, |o| matches!(o, AOp::Barrier));
            },
        },
        Mutation {
            name: "startup-send-missing",
            expected_rule: P5,
            summary: "master sends one rendezvous message, workers expect two",
            apply: |s| s.startup_sends = s.startup_sends.saturating_sub(1),
        },
        Mutation {
            name: "worker-wrong-dispatch-root",
            expected_rule: P5,
            summary: "workers listen for command headers from rank 1, not 0",
            apply: |s| s.dispatch_root = 1,
        },
        Mutation {
            name: "startup-extra-send",
            expected_rule: P6,
            summary: "master sends a third rendezvous message nobody receives",
            apply: |s| s.startup_sends += 1,
        },
        Mutation {
            name: "loaddata-partial-recv",
            expected_rule: P6,
            summary: "worker consumes one of the two redistribution messages",
            apply: |s| {
                let l = s.load_data;
                pop_last_matching(&mut s.commands[l].worker, |o| matches!(o, AOp::Recv { .. }));
            },
        },
        Mutation {
            name: "sample-extra-p2p-send",
            expected_rule: P6,
            summary: "master sends an unsolicited tagged message during SAMPLE",
            apply: |s| {
                let c = sample(s);
                let tag = s.startup_tag;
                s.commands[c].master.push(AOp::Send {
                    to: APeer::EachWorker,
                    tag,
                    kind: pdnn_protocheck::model::ElemKind::U64,
                });
            },
        },
        Mutation {
            name: "recovery-extra-send",
            expected_rule: P6,
            summary: "redistribution sends three messages per worker, arm reads two",
            apply: |s| {
                let l = s.load_data;
                let tag = s.startup_tag;
                s.commands[l].master.push(AOp::Send {
                    to: APeer::EachWorker,
                    tag,
                    kind: pdnn_protocheck::model::ElemKind::U64,
                });
            },
        },
        Mutation {
            name: "recovery-skips-ack",
            expected_rule: P7,
            summary: "master never acknowledges the death; recovery loops forever",
            apply: |s| s.quirks.skip_ack = true,
        },
        Mutation {
            name: "recovery-skips-theta-restore",
            expected_rule: P7,
            summary: "recovery redistributes shards but never restores theta",
            apply: |s| s.quirks.skip_settheta = true,
        },
        Mutation {
            name: "recovery-skips-replay",
            expected_rule: P7,
            summary: "recovery shuts down instead of replaying the lost iteration",
            apply: |s| s.quirks.skip_replay = true,
        },
        Mutation {
            name: "fault-ignored",
            expected_rule: P7,
            summary: "master treats a surfaced worker death as success",
            apply: |s| s.quirks.ignore_fault = true,
        },
    ]
}

/// Explore every mutant on the 3-rank world with fault budget 1.
pub fn run_mutations(spec: &ProtoSpec) -> Vec<MutationResult> {
    mutations()
        .into_iter()
        .map(|m| {
            let mut mutant = spec.clone();
            (m.apply)(&mut mutant);
            let out = explore(&mutant, 2, 1);
            let mut fired: Vec<&'static str> = out.violations.iter().map(|v| v.rule).collect();
            fired.dedup();
            MutationResult {
                name: m.name,
                expected_rule: m.expected_rule,
                summary: m.summary,
                caught: fired.contains(&m.expected_rule),
                fired_rules: fired,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn every_seeded_mutation_is_caught() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(std::path::Path::to_path_buf)
            .unwrap_or_default();
        let outcome = pdnn_protocheck::run_static(&root).expect("surfaces readable");
        let spec = spec::compile(&outcome.model).expect("model compiles");
        let results = run_mutations(&spec);
        assert!(results.len() >= 12, "battery shrank to {}", results.len());
        let missed: Vec<String> = results
            .iter()
            .filter(|r| !r.caught)
            .map(|r| {
                format!(
                    "{} (expected {}, fired {:?})",
                    r.name, r.expected_rule, r.fired_rules
                )
            })
            .collect();
        assert!(missed.is_empty(), "missed mutations: {missed:?}");
    }
}
