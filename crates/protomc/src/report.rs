//! `results/protomc_report.json` — the machine-readable acceptance
//! artifact, hand-rolled JSON via the shared `pdnn_lint::report`
//! scaffolding (the workspace is dependency-free; no serde).
//!
//! Top-level shape (stable; verify.sh greps it):
//!
//! ```json
//! {
//!   "tool": "pdnn-protomc",
//!   "findings": 0,
//!   "reduction_ok": true,
//!   "violations": [],
//!   "worlds": [{"ranks": 3, "fault_budget": 1, "states_full": 0,
//!               "transitions_full": 0, "states_reduced": 0,
//!               "transitions_reduced": 0, "reduction_ratio": 0.0,
//!               "terminals": 0, "kill_placements": 0,
//!               "verdicts": {"p5-deadlock-free": "proved"}, "agrees": true}],
//!   "decentral": {"findings": 0, "worlds": [{"mode": "ring", "ranks": 3,
//!               "kill_placements": 0, "states": 0, "transitions": 0,
//!               "terminals": 0,
//!               "verdicts": {"p5-deadlock-free": "proved"}}]},
//!   "mutation_selftest": {"mutations": 21, "caught": 21, "results": []},
//!   "conformance": {"unmapped": 0, "runs": []}
//! }
//! ```

use crate::conformance::RunReplay;
use crate::decentral::{self, DecentralWorld};
use crate::explorer::{P5, P6, P7};
use crate::mutate::MutationResult;
use crate::{CheckOutcome, WorldResult};
use pdnn_lint::report::{json_escape, push_findings, write_results};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One named conformance run for the report.
pub struct NamedRun {
    pub name: String,
    pub dead_ranks: Vec<usize>,
    pub replay: RunReplay,
}

/// Everything one CLI invocation learned.
pub struct Report<'a> {
    pub check: Option<&'a CheckOutcome>,
    /// Masterless (ring/tree) world results, checked alongside the
    /// master-protocol worlds.
    pub decentral: Option<&'a [DecentralWorld]>,
    pub mutation_results: Option<&'a [MutationResult]>,
    pub conformance_runs: Option<&'a [NamedRun]>,
}

fn push_world(out: &mut String, w: &WorldResult) {
    let ratio = if w.full.transitions == 0 {
        1.0
    } else {
        w.reduced.transitions as f64 / w.full.transitions as f64
    };
    let _ = write!(
        out,
        "{{\"ranks\": {}, \"fault_budget\": {}, \"states_full\": {}, \
         \"transitions_full\": {}, \"states_reduced\": {}, \"transitions_reduced\": {}, \
         \"reduction_ratio\": {:.4}, \"terminals\": {}, \"kill_placements\": {}",
        w.ranks,
        w.budget,
        w.full.states,
        w.full.transitions,
        w.reduced.states,
        w.reduced.transitions,
        ratio,
        w.full.terminals,
        w.full.kill_placements,
    );
    out.push_str(", \"verdicts\": {");
    for (i, rule) in [P5, P6, P7].iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let verdict = if w.full.violations.iter().any(|v| v.rule == *rule) {
            "violated"
        } else {
            "proved"
        };
        let _ = write!(out, "\"{rule}\": \"{verdict}\"");
    }
    let _ = write!(out, "}}, \"agrees\": {}}}", w.agrees);
}

fn push_decentral(out: &mut String, worlds: &[DecentralWorld]) {
    let findings: usize = worlds.iter().map(|w| w.outcome.violations.len()).sum();
    let _ = write!(out, "{{\"findings\": {findings}, \"worlds\": [");
    for (i, w) in worlds.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"mode\": \"{}\", \"ranks\": {}, \"kill_placements\": {}, \"states\": {}, \
             \"transitions\": {}, \"terminals\": {}",
            w.mode.label(),
            w.ranks,
            w.kill_placements,
            w.outcome.states,
            w.outcome.transitions,
            w.outcome.terminals
        );
        out.push_str(", \"verdicts\": {");
        for (j, (rule, ok)) in decentral::verdicts(&w.outcome).iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let verdict = if *ok { "proved" } else { "violated" };
            let _ = write!(out, "\"{rule}\": \"{verdict}\"");
        }
        out.push_str("}}");
    }
    out.push_str("]}");
}

fn push_mutations(out: &mut String, results: &[MutationResult]) {
    let caught = results.iter().filter(|r| r.caught).count();
    let _ = write!(
        out,
        "{{\"mutations\": {}, \"caught\": {caught}, \"results\": [",
        results.len()
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"expected\": \"{}\", \"caught\": {}, \"fired\": [",
            json_escape(r.name),
            json_escape(r.expected_rule),
            r.caught
        );
        for (j, rule) in r.fired_rules.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", json_escape(rule));
        }
        let _ = write!(out, "], \"summary\": \"{}\"}}", json_escape(r.summary));
    }
    out.push_str("]}");
}

fn push_conformance(out: &mut String, runs: &[NamedRun]) {
    let unmapped: usize = runs.iter().map(|r| r.replay.unmapped).sum();
    let accepted = runs.iter().filter(|r| r.replay.accepted).count();
    let _ = write!(
        out,
        "{{\"unmapped\": {unmapped}, \"accepted\": {accepted}, \"runs\": ["
    );
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let events: usize = run.replay.ranks.iter().map(|r| r.total).sum();
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"accepted\": {}, \"ranks\": {}, \"events\": {events}, \
             \"coll_events\": {}, \"p2p_events\": {}, \"unmapped\": {}, \"dead_ranks\": [",
            json_escape(&run.name),
            run.replay.accepted,
            run.replay.ranks.len(),
            run.replay.coll_events,
            run.replay.p2p_events,
            run.replay.unmapped
        );
        for (j, d) in run.dead_ranks.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{d}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

/// Render the whole report (trailing newline included).
pub fn render(rep: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"tool\": \"pdnn-protomc\",\n");
    let findings = rep.check.map(|c| c.findings.len()).unwrap_or(0);
    let _ = writeln!(s, "  \"findings\": {findings},");
    let reduction_ok = rep
        .check
        .map(|c| c.worlds.iter().all(|w| w.agrees))
        .unwrap_or(true);
    let _ = writeln!(s, "  \"reduction_ok\": {reduction_ok},");
    s.push_str("  \"violations\": ");
    match rep.check {
        Some(c) => push_findings(&mut s, &c.findings),
        None => s.push_str("[]"),
    }
    s.push_str(",\n  \"worlds\": [");
    if let Some(c) = rep.check {
        for (i, w) in c.worlds.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            push_world(&mut s, w);
        }
    }
    s.push_str("],\n  \"decentral\": ");
    match rep.decentral {
        Some(worlds) => push_decentral(&mut s, worlds),
        None => s.push_str("null"),
    }
    s.push_str(",\n  \"mutation_selftest\": ");
    match rep.mutation_results {
        Some(results) => push_mutations(&mut s, results),
        None => s.push_str("null"),
    }
    s.push_str(",\n  \"conformance\": ");
    match rep.conformance_runs {
        Some(runs) => push_conformance(&mut s, runs),
        None => s.push_str("null"),
    }
    s.push_str("\n}\n");
    s
}

/// Write the rendered report to `<root>/results/protomc_report.json`.
pub fn write(root: &Path, rep: &Report) -> io::Result<()> {
    write_results(root, "protomc_report.json", &render(rep))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_keeps_the_gate_greppable_shape() {
        let r = render(&Report {
            check: None,
            decentral: None,
            mutation_results: None,
            conformance_runs: None,
        });
        assert!(r.contains("\"tool\": \"pdnn-protomc\""), "{r}");
        assert!(r.contains("\"findings\": 0,"), "{r}");
        assert!(r.contains("\"decentral\": null"), "{r}");
        assert!(r.contains("\"mutation_selftest\": null"), "{r}");
    }

    #[test]
    fn decentral_section_keeps_the_greppable_shape() {
        let worlds = crate::decentral::check_worlds();
        let r = render(&Report {
            check: None,
            decentral: Some(&worlds),
            mutation_results: None,
            conformance_runs: None,
        });
        assert!(r.contains("\"decentral\": {\"findings\": 0,"), "{r}");
        assert!(r.contains("\"mode\": \"ring\""), "{r}");
        assert!(r.contains("\"mode\": \"tree\""), "{r}");
    }
}
