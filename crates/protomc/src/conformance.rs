//! Trace conformance: replay recorded [`CommEvent`] streams from real
//! training runs through the abstract protocol automata.
//!
//! The model checker's guarantees are only as good as the model's
//! fidelity to `distributed.rs`. This module closes that gap from the
//! other side: every comm event a real run records (per rank, in
//! program order) must be accepted by the same [`ProtoSpec`] the
//! explorer proves properties about. The replayer is positional —
//! startup rendezvous first, then repeatedly: one header broadcast
//! carrying an opcode, dispatched to that command's op sequence —
//! so a run that repeats commands (CG re-issues `GN`, the line search
//! re-issues `HELDOUT`) or interleaves recovery commands after a
//! fault conforms exactly as the protocol allows, with no fixed
//! iteration schedule assumed.
//!
//! Fan-out fidelity: the master's per-worker p2p bursts (startup,
//! shard redistribution) shrink with the believed-live worker count,
//! so runs of consecutive `Send`/`Recv` ops against `EachWorker` are
//! matched greedily and must divide evenly into the per-worker op
//! count. A rank killed mid-run conforms iff its stream is a clean
//! prefix; every surviving rank must reach protocol completion
//! (shutdown barrier, stream exhausted).

use crate::spec::{AOp, APeer, CmdSpec, ProtoSpec};
use pdnn_mpisim::CommEvent;

/// Replay verdict for one rank's stream.
#[derive(Clone, Debug)]
pub struct RankReplay {
    pub rank: usize,
    /// Events consumed before the replay stopped.
    pub consumed: usize,
    pub total: usize,
    /// Reached the end of the protocol (shutdown command accepted).
    pub completed: bool,
    /// This rank's stream conforms (see module docs for dead ranks).
    pub accepted: bool,
    /// First mismatch, if any.
    pub error: Option<String>,
}

/// Replay verdict for one whole run.
#[derive(Clone, Debug)]
pub struct RunReplay {
    pub ranks: Vec<RankReplay>,
    /// Events left unconsumed across all ranks (gate: 0).
    pub unmapped: usize,
    pub accepted: bool,
    pub p2p_events: usize,
    pub coll_events: usize,
}

enum Step {
    /// Consumed events up to `pos`; protocol position continues.
    Ok(usize),
    /// Stream ended cleanly mid-protocol at `pos`.
    End(usize),
    /// Mismatch at `pos`.
    Err(usize, String),
}

fn describe(ev: &CommEvent) -> String {
    match ev {
        CommEvent::Send { to, tag, .. } => format!("send(to {to}, tag {tag})"),
        CommEvent::Recv { from, tag, .. } => format!("recv(from {from}, tag {tag})"),
        CommEvent::Coll {
            op, root, first, ..
        } => format!("coll({op}, root {root}, first {first:?})"),
    }
}

/// Match one collective event against the expected op name and root.
fn expect_coll(events: &[CommEvent], pos: usize, want_op: &str, want_root: usize) -> Step {
    match events.get(pos) {
        None => Step::End(pos),
        Some(CommEvent::Coll { op, root, .. }) if *op == want_op && *root == want_root => {
            Step::Ok(pos + 1)
        }
        Some(other) => Step::Err(
            pos,
            format!(
                "expected {want_op}(root {want_root}), saw {}",
                describe(other)
            ),
        ),
    }
}

fn is_send(ev: &CommEvent, want_tag: u64) -> bool {
    matches!(ev, CommEvent::Send { tag, .. } if *tag == want_tag)
}

fn is_recv(ev: &CommEvent, want_tag: u64, want_from: Option<usize>) -> bool {
    matches!(ev, CommEvent::Recv { from, tag, .. }
        if *tag == want_tag && want_from.map(|f| f == *from).unwrap_or(true))
}

/// Consume a greedy burst of matching p2p events for a run of `n_ops`
/// consecutive identical p2p ops. `per_worker` (an `EachWorker` peer
/// in the run) relaxes the count from exactly `n_ops` to any positive
/// multiple of it: the live-worker fan-out width is not part of the
/// abstract spec.
fn expect_p2p_burst(
    events: &[CommEvent],
    mut pos: usize,
    n_ops: usize,
    per_worker: bool,
    matches_ev: impl Fn(&CommEvent) -> bool,
    what: &str,
) -> Step {
    let mut count = 0usize;
    while let Some(ev) = events.get(pos) {
        if !matches_ev(ev) {
            break;
        }
        pos += 1;
        count += 1;
    }
    let fits = if per_worker {
        count > 0 && count.is_multiple_of(n_ops)
    } else {
        count == n_ops
    };
    if fits {
        Step::Ok(pos)
    } else if events.get(pos).is_none() && (count < n_ops || per_worker) {
        // Ran out of events mid-burst: clean prefix.
        Step::End(pos)
    } else {
        Step::Err(
            pos,
            format!(
                "p2p burst mismatch for {what}: consumed {count} event(s) against {n_ops} op(s){}",
                if per_worker { " (per worker)" } else { "" }
            ),
        )
    }
}

/// Key for grouping consecutive identical p2p ops into one burst.
fn p2p_run_key(op: &AOp) -> Option<(bool, u64, bool)> {
    match op {
        AOp::Send { to, tag, .. } => Some((true, *tag, matches!(to, APeer::EachWorker))),
        AOp::Recv { from, tag, .. } => Some((false, *tag, matches!(from, APeer::EachWorker))),
        _ => None,
    }
}

/// Replay one command body for one role.
fn replay_ops(ops: &[AOp], events: &[CommEvent], mut pos: usize) -> Step {
    let mut i = 0usize;
    while i < ops.len() {
        match &ops[i] {
            AOp::Bcast { root, .. } => {
                match expect_coll(events, pos, "bcast", *root) {
                    Step::Ok(p) => pos = p,
                    other => return other,
                }
                i += 1;
            }
            AOp::Reduce { root, .. } => {
                match expect_coll(events, pos, "reduce", *root) {
                    Step::Ok(p) => pos = p,
                    other => return other,
                }
                i += 1;
            }
            AOp::Barrier => {
                match expect_coll(events, pos, "barrier", 0) {
                    Step::Ok(p) => pos = p,
                    other => return other,
                }
                i += 1;
            }
            op @ (AOp::Send { .. } | AOp::Recv { .. }) => {
                let key = p2p_run_key(op);
                let mut n = 1usize;
                while i + n < ops.len() && p2p_run_key(&ops[i + n]) == key {
                    n += 1;
                }
                let (is_send_run, tag, per_worker) = match key {
                    Some(k) => k,
                    None => return Step::Err(pos, "unclassifiable p2p op".to_string()),
                };
                let from = match op {
                    AOp::Recv {
                        from: APeer::Rank(r),
                        ..
                    } => Some(*r),
                    _ => None,
                };
                let step = if is_send_run {
                    expect_p2p_burst(
                        events,
                        pos,
                        n,
                        per_worker,
                        |ev| is_send(ev, tag),
                        &format!("send tag {tag}"),
                    )
                } else {
                    expect_p2p_burst(
                        events,
                        pos,
                        n,
                        per_worker,
                        |ev| is_recv(ev, tag, from),
                        &format!("recv tag {tag}"),
                    )
                };
                match step {
                    Step::Ok(p) => pos = p,
                    other => return other,
                }
                i += n;
            }
        }
    }
    Step::Ok(pos)
}

fn command_for_header<'a>(
    spec: &'a ProtoSpec,
    ev: &CommEvent,
) -> Result<Option<&'a CmdSpec>, String> {
    match ev {
        CommEvent::Coll {
            op: "bcast",
            root,
            first: Some(v),
            ..
        } if *root == spec.dispatch_root => match spec.command_by_opcode(*v) {
            Some(ci) => Ok(Some(&spec.commands[ci])),
            None => Err(format!("header broadcast with unknown opcode {v}")),
        },
        _ => Ok(None),
    }
}

/// Replay one rank's stream. `workers` is the run's worker count
/// (fixes the master's startup burst width).
fn replay_rank(spec: &ProtoSpec, rank: usize, workers: usize, events: &[CommEvent]) -> RankReplay {
    let is_master = rank == 0;
    let total = events.len();
    let fail = |pos: usize, msg: String| RankReplay {
        rank,
        consumed: pos,
        total,
        completed: false,
        accepted: false,
        error: Some(format!("event {pos}: {msg}")),
    };
    let prefix = |pos: usize| RankReplay {
        rank,
        consumed: pos,
        total,
        completed: false,
        accepted: true,
        error: None,
    };

    // Startup rendezvous.
    let mut pos = 0usize;
    let startup = if is_master {
        spec.startup_sends * workers
    } else {
        spec.startup_recvs
    };
    for _ in 0..startup {
        match events.get(pos) {
            None => return prefix(pos),
            Some(ev) => {
                let ok = if is_master {
                    is_send(ev, spec.startup_tag)
                } else {
                    is_recv(ev, spec.startup_tag, Some(spec.dispatch_root))
                };
                if !ok {
                    return fail(
                        pos,
                        format!("expected rendezvous p2p, saw {}", describe(ev)),
                    );
                }
                pos += 1;
            }
        }
    }

    // Command loop: header broadcast, dispatch, body.
    loop {
        let header = match events.get(pos) {
            None => return prefix(pos),
            Some(ev) => ev,
        };
        let cmd = match command_for_header(spec, header) {
            Ok(Some(cmd)) => cmd,
            Ok(None) => {
                return fail(
                    pos,
                    format!("expected a command header, saw {}", describe(header)),
                )
            }
            Err(msg) => return fail(pos, msg),
        };
        pos += 1;
        let body = if is_master { &cmd.master } else { &cmd.worker };
        match replay_ops(body, events, pos) {
            Step::Ok(p) => pos = p,
            Step::End(p) => return prefix(p),
            Step::Err(p, msg) => return fail(p, format!("in {}: {msg}", cmd.name)),
        }
        if cmd.name == "CMD_SHUTDOWN" {
            return if pos == total {
                RankReplay {
                    rank,
                    consumed: pos,
                    total,
                    completed: true,
                    accepted: true,
                    error: None,
                }
            } else {
                fail(
                    pos,
                    format!("{} trailing event(s) after shutdown", total - pos),
                )
            };
        }
    }
}

/// Replay a whole run: `rank_events[0]` is the master's stream,
/// `rank_events[1..]` the workers'. `dead_ranks` lists ranks whose
/// streams are allowed (and expected) to end mid-protocol.
pub fn replay_run(
    spec: &ProtoSpec,
    rank_events: &[&[CommEvent]],
    dead_ranks: &[usize],
) -> RunReplay {
    let workers = rank_events.len().saturating_sub(1);
    let mut ranks = Vec::new();
    let mut unmapped = 0usize;
    let mut p2p_events = 0usize;
    let mut coll_events = 0usize;
    for (rank, events) in rank_events.iter().enumerate() {
        for ev in events.iter() {
            match ev {
                CommEvent::Coll { .. } => coll_events += 1,
                _ => p2p_events += 1,
            }
        }
        let mut r = replay_rank(spec, rank, workers, events);
        if r.accepted && !r.completed && !dead_ranks.contains(&rank) {
            // A clean prefix is only acceptable for a killed rank.
            r.accepted = false;
            r.error = Some(format!(
                "stream ended mid-protocol at event {} but rank {rank} is alive",
                r.consumed
            ));
        }
        unmapped += r.total - r.consumed;
        ranks.push(r);
    }
    let accepted = ranks.iter().all(|r| r.accepted);
    RunReplay {
        ranks,
        unmapped,
        accepted,
        p2p_events,
        coll_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn workspace_spec() -> ProtoSpec {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(std::path::Path::to_path_buf)
            .unwrap_or_default();
        let outcome = pdnn_protocheck::run_static(&root).expect("surfaces readable");
        spec::compile(&outcome.model).expect("model compiles")
    }

    fn header(opcode: u64) -> CommEvent {
        CommEvent::Coll {
            op: "bcast",
            root: 0,
            kind: "U64",
            len: 2,
            first: Some(opcode),
            ok: true,
        }
    }

    #[test]
    fn an_empty_stream_is_a_prefix_only_for_dead_ranks() {
        let spec = workspace_spec();
        let empty: &[CommEvent] = &[];
        let run = replay_run(&spec, &[empty, empty], &[]);
        assert!(!run.accepted, "alive ranks with empty streams conformed");
        let run = replay_run(&spec, &[empty, empty], &[0, 1]);
        assert!(run.accepted);
        assert_eq!(run.unmapped, 0);
    }

    #[test]
    fn a_wrong_first_event_is_rejected_with_position() {
        let spec = workspace_spec();
        // A header broadcast where the rendezvous send should be.
        let master = vec![header(1)];
        let worker: &[CommEvent] = &[];
        let run = replay_run(&spec, &[&master, worker], &[1]);
        assert!(!run.accepted);
        assert_eq!(run.unmapped, 1);
        let err = run.ranks[0].error.clone().unwrap_or_default();
        assert!(err.contains("event 0"), "{err}");
    }

    #[test]
    fn an_unknown_opcode_is_rejected() {
        let spec = workspace_spec();
        let mut master = Vec::new();
        for _ in 0..spec.startup_sends {
            master.push(CommEvent::Send {
                to: 1,
                tag: spec.startup_tag,
                kind: "U64",
                len: 1,
            });
        }
        master.push(header(999));
        let worker: &[CommEvent] = &[];
        let run = replay_run(&spec, &[&master, worker], &[1]);
        assert!(!run.accepted);
        let err = run.ranks[0].error.clone().unwrap_or_default();
        assert!(err.contains("unknown opcode 999"), "{err}");
    }
}
