//! `pdnn-protomc`: explicit-state model checking and trace
//! conformance for the distributed HF training protocol.
//!
//! `pdnn-protocheck` extracts the master/worker protocol from
//! `crates/core/src/distributed.rs` and checks it *structurally*
//! (matched collective sequences, tag discipline). This crate checks
//! it *behaviorally*: [`spec::compile`] lowers the extracted model
//! into executable per-role automata, and the explorer walks every
//! interleaving of their micro-steps for small worlds (2–4 ranks)
//! under a bounded fault budget (0 or 1 injected worker kill at every
//! feasible collective boundary), proving three global properties —
//!
//! * `p5-deadlock-free` — no reachable state wedges a live rank;
//! * `p6-no-lost-message` — no undelivered message between two live
//!   ranks at exit;
//! * `p7-recovery-termination` — every surfaced mid-training death
//!   ends in one completed recovery (ack → redistribute → θ-restore
//!   → replay) and a clean shutdown, or a no-survivor abort.
//!
//! Two independent defenses keep the verdicts honest:
//!
//! * **Reduction cross-check.** Every world is explored twice — full
//!   breadth-first enumeration and sleep-set partial-order reduction
//!   ([`por`]) — and [`run_check`] requires identical verdicts.
//! * **Trace conformance.** [`conformance`] replays per-rank
//!   [`pdnn_mpisim::CommEvent`] streams recorded by *real* training
//!   runs (fault-free and faulted) through the same automata, so the
//!   model provably speaks the language the implementation emits.
//!
//! A seeded mutation battery ([`mutate`]) injects ≥ 12 protocol bugs
//! and requires each to be caught by its expected rule. Violations
//! are reported as [`pdnn_lint::Finding`]s under the shared
//! `p5`/`p6`/`p7` rule ids registered in `pdnn_lint::rules`, and the
//! CLI writes `results/protomc_report.json` for the verify.sh gate.
//!
//! The masterless sync strategies (`--sync ring` / `--sync tree`)
//! have no command loop to extract, so [`decentral`] models them
//! directly: per-rank micro-step automata of the ring and binomial
//! tree allreduce algorithms, explored exhaustively on 2–4 rank
//! worlds, with their own mutation battery and a trace-conformance
//! replayer for real masterless training runs.

pub mod conformance;
pub mod decentral;
pub mod explorer;
pub mod mutate;
pub mod por;
pub mod report;
pub mod spec;

pub use explorer::{explore, ExploreOutcome, Violation, P5, P6, P7};
pub use por::explore_reduced;
pub use spec::{compile, mermaid, ProtoSpec};

use pdnn_lint::Finding;
use std::path::Path;

/// Both explorations of one world size.
pub struct WorldResult {
    /// Total ranks (workers + master).
    pub ranks: usize,
    /// Kill budget (0-kill runs are a subset of budget-1 exploration).
    pub budget: u8,
    pub full: ExploreOutcome,
    pub reduced: ExploreOutcome,
    /// Full and reduced runs reached the same verdicts.
    pub agrees: bool,
}

/// Every world's results plus the findings they imply.
pub struct CheckOutcome {
    pub worlds: Vec<WorldResult>,
    pub findings: Vec<Finding>,
}

impl CheckOutcome {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.worlds.iter().all(|w| w.agrees)
    }
}

/// Load the extracted protocol model from the workspace at `root` and
/// compile it into an executable spec. Returns the spec plus the
/// source anchor (path, line) findings should point at.
pub fn load_spec(root: &Path) -> Result<(ProtoSpec, String, usize), String> {
    let outcome = pdnn_protocheck::run_static(root)
        .map_err(|e| format!("cannot read protocol surfaces under {root:?}: {e}"))?;
    let anchor = &outcome.model.worker_match_site;
    let (path, line) = (anchor.path.clone(), anchor.line);
    let spec = spec::compile(&outcome.model)?;
    Ok((spec, path, line))
}

/// Model-check the spec on each `(workers, budget)` world, full and
/// reduced, converting violations into findings anchored at the
/// protocol dispatch site.
pub fn run_check(
    spec: &ProtoSpec,
    worlds: &[(usize, u8)],
    anchor_path: &str,
    anchor_line: usize,
) -> CheckOutcome {
    let mut out = CheckOutcome {
        worlds: Vec::new(),
        findings: Vec::new(),
    };
    for &(workers, budget) in worlds {
        let full = explore(spec, workers, budget);
        let reduced = explore_reduced(spec, workers, budget);
        let agrees = full.violations == reduced.violations
            && full.kill_placements == reduced.kill_placements
            && full.terminals == reduced.terminals;
        for v in &full.violations {
            out.findings.push(Finding {
                rule: v.rule,
                path: anchor_path.to_string(),
                line: anchor_line,
                col: 1,
                message: format!(
                    "[{}-rank world, fault budget {budget}] {}",
                    workers + 1,
                    v.detail
                ),
                snippet: String::new(),
            });
        }
        out.worlds.push(WorldResult {
            ranks: workers + 1,
            budget,
            full,
            reduced,
            agrees,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(std::path::Path::to_path_buf)
            .unwrap_or_default()
    }

    /// The headline tentpole claim, debug-test sized: the workspace
    /// protocol is deadlock-free, loses no messages, and terminates
    /// recovery on the 2- and 3-rank worlds with fault budget 1, with
    /// the reduced exploration agreeing everywhere. (The 4-rank world
    /// runs in release via the CLI / verify.sh gate.)
    #[test]
    fn workspace_protocol_is_clean_on_small_worlds() {
        let (spec, path, line) = load_spec(&workspace_root()).expect("spec loads");
        assert!(path.ends_with("distributed.rs"), "{path}");
        assert!(line > 0);
        let check = run_check(&spec, &[(1, 1), (2, 1)], &path, line);
        for w in &check.worlds {
            assert!(
                w.agrees,
                "reduction disagrees on the {}-rank world",
                w.ranks
            );
            assert!(
                w.reduced.transitions <= w.full.transitions,
                "{}-rank world: reduction added transitions",
                w.ranks
            );
        }
        assert!(
            check.findings.is_empty(),
            "clean tree produced findings: {:#?}",
            check
                .findings
                .iter()
                .map(|f| format!("{}: {}", f.rule, f.message))
                .collect::<Vec<_>>()
        );
        assert!(check.is_clean());
    }

    /// Violations must surface as findings under the shared lint rule
    /// ids so downstream report tooling treats all checkers uniformly.
    #[test]
    fn violations_become_findings_under_registered_rules() {
        let (mut spec, path, line) = load_spec(&workspace_root()).expect("spec loads");
        spec.quirks.skip_replay = true;
        let check = run_check(&spec, &[(2, 1)], &path, line);
        assert!(!check.is_clean());
        assert!(check.findings.iter().any(|f| f.rule == P7));
        for f in &check.findings {
            assert!(
                pdnn_lint::rules::known_rule(f.rule),
                "{} is not a registered rule id",
                f.rule
            );
            assert_eq!(f.path, path);
        }
    }
}
