//! Trace conformance against real training runs: the abstract
//! automata compiled from the extracted protocol model must accept
//! the comm-event streams a genuine 4-rank training job records —
//! fault-free and with an injected mid-gradient worker kill.

use pdnn_core::{
    train_distributed_deterministic, train_distributed_faulted, DistributedConfig, Objective,
    TrainOutput,
};
use pdnn_dnn::{Activation, Network};
use pdnn_mpisim::{CommEvent, FaultPlan};
use pdnn_protomc::{conformance, ProtoSpec};
use pdnn_speech::{Corpus, CorpusSpec};
use pdnn_util::Prng;
use std::time::Duration;

fn workspace_spec() -> ProtoSpec {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(std::path::Path::to_path_buf)
        .expect("workspace root exists");
    let outcome = pdnn_protocheck::run_static(&root).expect("surfaces readable");
    pdnn_protomc::compile(&outcome.model).expect("model compiles")
}

fn tiny_world() -> (Network, Corpus, DistributedConfig) {
    let corpus = Corpus::generate(CorpusSpec::tiny(23));
    let mut rng = Prng::new(11);
    let net0 = Network::new(
        &[corpus.spec().feature_dim, 10, corpus.spec().states],
        Activation::Sigmoid,
        &mut rng,
    );
    let mut config = DistributedConfig {
        workers: 3,
        ..DistributedConfig::default()
    };
    config.hf.max_iters = 3;
    (net0, corpus, config)
}

fn replay(spec: &ProtoSpec, out: &TrainOutput) -> conformance::RunReplay {
    let mut streams: Vec<&[CommEvent]> = vec![&out.master_events];
    streams.extend(out.worker_events.iter().map(|e| e.as_slice()));
    conformance::replay_run(spec, &streams, &out.dead_ranks)
}

#[test]
fn fault_free_four_rank_run_conforms() {
    let spec = workspace_spec();
    let (net0, corpus, config) = tiny_world();
    let out = train_distributed_deterministic(&net0, &corpus, &Objective::CrossEntropy, &config)
        .expect("fault-free training succeeds");
    assert!(out.dead_ranks.is_empty());

    let run = replay(&spec, &out);
    for r in &run.ranks {
        assert!(
            r.accepted && r.completed,
            "rank {} rejected: {:?} ({} of {} events consumed)",
            r.rank,
            r.error,
            r.consumed,
            r.total
        );
    }
    assert!(run.accepted);
    assert_eq!(
        run.unmapped, 0,
        "every recorded event must map to a model step"
    );
    assert!(run.coll_events > 0 && run.p2p_events > 0);
}

#[test]
fn faulted_four_rank_run_conforms_with_dead_rank_prefix() {
    let spec = workspace_spec();
    let (net0, corpus, config) = tiny_world();
    // Rank 2 dies entering the first GRADIENT (collective index 5; see
    // the collective-index map in core's fault_tolerance tests).
    let plan = FaultPlan::new(41)
        .kill(2, 5)
        .with_timeouts(Duration::from_millis(500), Duration::from_secs(30));
    let out = train_distributed_faulted(&net0, &corpus, &Objective::CrossEntropy, &config, &plan)
        .expect("faulted training recovers");
    assert_eq!(out.dead_ranks, vec![2], "fault injection must take");

    let run = replay(&spec, &out);
    assert!(run.accepted, "faulted run must conform as a whole");
    assert_eq!(run.unmapped, 0);
    for r in &run.ranks {
        assert!(r.accepted, "rank {} rejected: {:?}", r.rank, r.error);
        if r.rank == 2 {
            // The victim's stream is a clean prefix cut off by the kill.
            assert!(!r.completed, "dead rank cannot reach shutdown");
        } else {
            assert!(r.completed, "survivor rank {} must reach shutdown", r.rank);
        }
    }
}

#[test]
fn truncated_survivor_stream_is_rejected() {
    let spec = workspace_spec();
    let (net0, corpus, config) = tiny_world();
    let out = train_distributed_deterministic(&net0, &corpus, &Objective::CrossEntropy, &config)
        .expect("fault-free training succeeds");

    // Drop the tail of a live worker's stream: conformance must notice
    // the rank never reached shutdown.
    let cut = out.worker_events[0].len() - 3;
    let mut streams: Vec<&[CommEvent]> = vec![&out.master_events];
    streams.push(&out.worker_events[0][..cut]);
    streams.extend(out.worker_events[1..].iter().map(|e| e.as_slice()));
    let run = conformance::replay_run(&spec, &streams, &[]);
    assert!(!run.accepted, "truncated live stream must not conform");
    assert!(!run.ranks[1].accepted);
}
