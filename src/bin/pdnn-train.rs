//! `pdnn-train` — command-line distributed Hessian-free DNN training
//! on a synthetic speech corpus.
//!
//! ```sh
//! cargo run --release --bin pdnn-train -- \
//!     --utterances 200 --workers 4 --iters 8 \
//!     --objective ce --hidden 32 --save model.pdnn
//! cargo run --release --bin pdnn-train -- \
//!     --resume model.pdnn --objective sequence --iters 4
//! ```
//!
//! Flags (all optional):
//!   --utterances N     corpus size                      [160]
//!   --states N         HMM states / output classes      [6]
//!   --features N       acoustic feature dimension       [10]
//!   --noise X          emission noise stddev            [0.5]
//!   --hidden A,B,...   hidden layer widths              [24]
//!   --objective ce|sequence                             [ce]
//!   --workers N        0 = serial, else master+N workers [0]
//!   --sync master|ring|tree  distributed sync strategy  [master]
//!                      master: rank 0 coordinates via rooted
//!                      bcast/reduce (the paper's architecture);
//!                      ring/tree: masterless replicated optimizer
//!                      over symmetric allreduces (world = N peers)
//!   --codec none|f16|int8    wire compression for f32 collective
//!                      payloads                         [none]
//!   --threads N        GEMM threads per rank            [1]
//!   --backend NAME     GEMM microkernel ISA: auto|scalar|avx2|avx512|neon
//!                      (default auto; `PDNN_BACKEND` overrides)
//!   --iters N          HF iterations                    [10]
//!   --seed N           corpus/init seed                 [2024]
//!   --strategy lpt|rr|contiguous  utterance assignment  [lpt]
//!   --context N        stack ±N context frames (serial mode) [0]
//!   --stats            print corpus statistics before training
//!   --precondition     enable the Fisher CG preconditioner
//!   --save PATH        write a checkpoint after training
//!   --resume PATH      initialize from a checkpoint

use pdnn::core::config::Preconditioner;
use pdnn::core::{
    train_distributed, DistributedConfig, DnnProblem, HfConfig, HfOptimizer, IterStats, Objective,
    SyncStrategy,
};
use pdnn::dnn::{load_network, save_network, Activation, Network};
use pdnn::mpisim::WireCodec;
use pdnn::obs::{InMemoryRecorder, Recorder, Value};
use pdnn::speech::{stack_context, Corpus, CorpusSpec, Strategy};
use pdnn::tensor::{BackendConfig, GemmContext, BACKEND_ENV};
use pdnn::util::Prng;
use std::process::ExitCode;
use std::sync::Arc;

fn arg_value(key: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == key {
            return args.next();
        }
    }
    None
}

fn arg_num<T: std::str::FromStr>(key: &str, default: T) -> T {
    arg_value(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_flag(key: &str) -> bool {
    std::env::args().skip(1).any(|a| a == key)
}

fn print_stats(stats: &[IterStats]) {
    println!("iter  train loss  heldout loss  accuracy  cg  alpha  accepted");
    for s in stats {
        println!(
            "{:>4}  {:>10.4}  {:>12.4}  {:>8.3}  {:>3}  {:>5.2}  {}",
            s.iter,
            s.train_loss,
            s.heldout_after,
            if s.heldout_accuracy.is_nan() {
                0.0
            } else {
                s.heldout_accuracy
            },
            s.cg_iters,
            s.alpha,
            s.accepted
        );
    }
}

fn main() -> ExitCode {
    let utterances: usize = arg_num("--utterances", 160);
    let states: usize = arg_num("--states", 6);
    let features: usize = arg_num("--features", 10);
    let noise: f64 = arg_num("--noise", 0.5);
    let workers: usize = arg_num("--workers", 0);
    let threads: usize = arg_num("--threads", 1);
    let iters: usize = arg_num("--iters", 10);
    if iters == 0 {
        eprintln!("--iters must be at least 1");
        return ExitCode::FAILURE;
    }
    let seed: u64 = arg_num("--seed", 2024);

    // Resolve the compute backend before any GemmContext exists. The
    // builder validates the name and rejects ISAs this machine lacks;
    // exporting the validated choice through PDNN_BACKEND makes every
    // rank's context (distributed workers build their own) dispatch
    // the same microkernels. Numerically this is a no-op: every
    // backend is bit-identical to forced scalar (gemm::backend docs).
    let requested = arg_value("--backend").unwrap_or_else(|| "auto".into());
    let backend = {
        let backend_cfg = match BackendConfig::builder().select_name(&requested).build() {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("invalid --backend {requested}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if backend_cfg.selection().is_some() {
            // A forced flag beats a stale environment: propagate it.
            std::env::set_var(
                BACKEND_ENV,
                backend_cfg.selection().map_or("auto", |i| i.name()),
            );
        }
        match backend_cfg.resolve() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{BACKEND_ENV}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!(
        "compute backend: requested {requested}, dispatching {} microkernels",
        backend.isa()
    );
    let context: usize = arg_num("--context", 0);
    let sync = match SyncStrategy::parse(&arg_value("--sync").unwrap_or_else(|| "master".into())) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid --sync: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wire_codec = match WireCodec::parse(&arg_value("--codec").unwrap_or_else(|| "none".into()))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid --codec: {e}");
            return ExitCode::FAILURE;
        }
    };
    let objective_name = arg_value("--objective").unwrap_or_else(|| "ce".into());
    let strategy = match arg_value("--strategy").as_deref() {
        None | Some("lpt") => Strategy::SortedBalanced,
        Some("rr") => Strategy::RoundRobin,
        Some("contiguous") => Strategy::Contiguous,
        Some(other) => {
            eprintln!("unknown --strategy {other} (use lpt|rr|contiguous)");
            return ExitCode::FAILURE;
        }
    };

    let corpus = Corpus::generate(CorpusSpec {
        states,
        feature_dim: features,
        utterances,
        emission_noise: noise,
        seed,
        ..CorpusSpec::tiny(seed)
    });
    println!(
        "corpus: {} utterances, {} frames, {} states",
        corpus.utterances().len(),
        corpus.total_frames(),
        states
    );
    if arg_flag("--stats") {
        print!("{}", corpus.stats().table().render());
    }

    let objective = match objective_name.as_str() {
        "ce" => Objective::CrossEntropy,
        "sequence" | "seq" => Objective::Sequence(corpus.denominator_graph()),
        other => {
            eprintln!("unknown --objective {other} (use ce|sequence)");
            return ExitCode::FAILURE;
        }
    };

    // Context stacking widens the input features.
    let input_dim = features * (2 * context + 1);
    let net0: Network<f32> = match arg_value("--resume") {
        Some(path) => match load_network(&path) {
            Ok(net) => {
                if net.input_dim() != input_dim || net.output_dim() != states {
                    eprintln!(
                        "checkpoint shape {:?} does not match --features {features} (context {context}) / --states {states}",
                        net.dims()
                    );
                    return ExitCode::FAILURE;
                }
                println!("resumed from {path} ({} parameters)", net.num_params());
                net
            }
            Err(e) => {
                eprintln!("failed to load {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let hidden: Vec<usize> = arg_value("--hidden")
                .map(|s| s.split(',').filter_map(|t| t.parse().ok()).collect())
                .unwrap_or_else(|| vec![24]);
            let mut dims = vec![input_dim];
            dims.extend(hidden);
            dims.push(states);
            let mut rng = Prng::new(seed ^ 0xABCD);
            let net = Network::new(&dims, Activation::Sigmoid, &mut rng);
            println!(
                "fresh network: dims {:?}, {} parameters",
                net.dims(),
                net.num_params()
            );
            net
        }
    };

    let mut hf_builder = HfConfig::small_task().into_builder().max_iters(iters);
    if arg_flag("--precondition") {
        hf_builder = hf_builder.preconditioner(Preconditioner::EmpiricalFisher { exponent: 0.75 });
        println!("CG preconditioner: empirical Fisher, ξ = 0.75");
    }
    let hf = hf_builder.build().expect("invalid HF configuration");

    let trained = if workers == 0 {
        if sync != SyncStrategy::Master || wire_codec != WireCodec::None {
            eprintln!("--sync/--codec apply to distributed runs only (use --workers N)");
            return ExitCode::FAILURE;
        }
        println!("mode: serial\n");
        let (train_ids, held_ids) = corpus.split_heldout(0.2);
        let ctx = if threads > 1 {
            GemmContext::threaded(threads)
        } else {
            GemmContext::sequential()
        }
        .with_backend(backend);
        let train_shard = stack_context(&corpus.shard(&train_ids), context);
        let held_shard = stack_context(&corpus.shard(&held_ids), context);
        let recorder = Arc::new(InMemoryRecorder::new());
        recorder.event(
            "compute_backend",
            vec![
                ("requested".into(), Value::Str(requested.clone())),
                ("dispatched".into(), Value::Str(backend.isa().name().into())),
            ],
        );
        let mut problem =
            DnnProblem::new(net0, ctx, train_shard, held_shard, objective).with_recorder(recorder);
        let stats = HfOptimizer::new(hf).train(&mut problem);
        print_stats(&stats);
        problem.into_network()
    } else {
        if context > 0 {
            eprintln!("--context is only supported in serial mode (workers = 0)");
            return ExitCode::FAILURE;
        }
        match sync {
            SyncStrategy::Master => {
                println!("mode: 1 master + {workers} workers ({threads} threads/rank)")
            }
            other => println!(
                "mode: {workers} peer ranks, {} allreduce sync ({threads} threads/rank)",
                other.name()
            ),
        }
        if wire_codec != WireCodec::None {
            println!(
                "wire codec: {} on f32 collective payloads",
                wire_codec.name()
            );
        }
        println!();
        let config = DistributedConfig {
            workers,
            sync,
            wire_codec,
            hf,
            strategy,
            heldout_frac: 0.2,
            threads_per_rank: threads,
            ..DistributedConfig::default()
        };
        let out = match train_distributed(&net0, &corpus, &objective, &config) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("distributed training failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        print_stats(&out.stats);
        println!("\nmaster phases:\n{}", out.master_phases.report());
        out.network
    };

    if let Some(path) = arg_value("--save") {
        match save_network(&trained, &path) {
            Ok(()) => println!("\ncheckpoint written to {path}"),
            Err(e) => {
                eprintln!("failed to save {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
