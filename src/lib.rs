//! # pdnn — Parallel Deep Neural Network Training (Blue Gene/Q reproduction)
//!
//! Facade crate re-exporting the whole workspace. See the individual
//! crates for detail:
//!
//! * [`core`] (`pdnn-core`) — distributed Hessian-free optimization,
//!   the paper's primary contribution.
//! * [`dnn`] — feed-forward networks, losses, gradients, Gauss–Newton
//!   curvature products.
//! * [`tensor`] — blocked/packed multi-threaded GEMM and BLAS-1.
//! * [`speech`] — synthetic speech-like corpus and load balancing.
//! * [`mpisim`] — in-process MPI-style runtime (ranks as threads).
//! * [`bgq`] — Blue Gene/Q machine model (torus, cores, counters).
//! * [`perfmodel`] — calibrated scaling model regenerating the paper's
//!   figures and tables.
//! * [`baselines`] — serial and synchronous-parallel SGD.
//! * [`obs`] (`pdnn-obs`) — unified telemetry: recorder API, span
//!   timelines, comm statistics, JSONL export, terminal rendering.
//! * [`util`] — deterministic RNG, stats, reporting.

pub use pdnn_baselines as baselines;
pub use pdnn_bgq as bgq;
pub use pdnn_core as core;
pub use pdnn_dnn as dnn;
pub use pdnn_mpisim as mpisim;
pub use pdnn_obs as obs;
pub use pdnn_perfmodel as perfmodel;
pub use pdnn_speech as speech;
pub use pdnn_tensor as tensor;
pub use pdnn_util as util;
